//! End-to-end pipeline tests: dataset generation → algorithm → objective
//! verification, mirroring each experiment family in miniature, plus
//! consistency checks between the incremental solution state and naive
//! recomputation across algorithm runs.

use max_sum_diversification::core::hassin::{hassin_edge_greedy, hassin_matching};
use max_sum_diversification::core::solution::SolutionState;
use max_sum_diversification::data::clustered::ClusteredConfig;
use max_sum_diversification::data::synthetic::SyntheticConfig;
use max_sum_diversification::data::LetorConfig;
use max_sum_diversification::prelude::*;

#[test]
fn synthetic_pipeline_mini_table1() {
    // OPT ≥ B, OPT ≥ A, both within factor 2, across a p-sweep.
    let problem = SyntheticConfig::paper(25).generate(3);
    for p in [3usize, 5, 7] {
        let a = greedy_a(&problem, p, GreedyAConfig::default());
        let b = greedy_b(&problem, p, GreedyBConfig::default());
        let opt = exact_max_diversification(&problem, p);
        let (va, vb) = (problem.objective(&a), problem.objective(&b));
        assert!(opt.objective >= va - 1e-9 && opt.objective >= vb - 1e-9);
        assert!(2.0 * va >= opt.objective - 1e-9);
        assert!(2.0 * vb >= opt.objective - 1e-9);
    }
}

#[test]
fn letor_pipeline_mini_table4() {
    let query = LetorConfig {
        docs_per_query: 100,
        feature_dim: 16,
        topics: 5,
        lambda: 0.2,
    }
    .generate(21, 0);
    let (problem, doc_ids) = query.top_k(25);
    assert_eq!(doc_ids.len(), 25);
    for p in [3usize, 5] {
        let a = greedy_a(&problem, p, GreedyAConfig::default());
        let b = greedy_b(&problem, p, GreedyBConfig::default());
        let ls = local_search_refine(&problem, &b, LocalSearchConfig::default());
        let opt = exact_max_diversification(&problem, p);
        assert!(ls.objective >= problem.objective(&b) - 1e-9);
        assert!(opt.objective >= ls.objective - 1e-9);
        assert!(2.0 * problem.objective(&a) >= opt.objective - 1e-9);
    }
}

#[test]
fn dispersion_algorithms_agree_on_guarantees() {
    let instance = ClusteredConfig {
        n: 30,
        clusters: 4,
        dim: 2,
        spread: 0.3,
        lambda: 1.0,
    }
    .generate(9);
    let metric = instance.problem.metric();
    for p in [2usize, 4, 6] {
        let vertex = max_sum_dispersion_greedy(metric, p);
        let edge = hassin_edge_greedy(metric, p);
        let matching = hassin_matching(metric, p);
        for s in [&vertex, &edge, &matching] {
            assert_eq!(s.len(), p);
            let mut d = (*s).clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), p);
        }
        // The matching algorithm's matched weight dominates the edge
        // greedy's (it solves that subproblem exactly).
        let pair_weight =
            |s: &[ElementId]| -> f64 { s.chunks(2).map(|c| metric.distance(c[0], c[1])).sum() };
        if p % 2 == 0 {
            assert!(pair_weight(&matching) >= pair_weight(&edge) - 1e-9);
        }
    }
}

#[test]
fn solution_state_stays_consistent_across_algorithms() {
    // Run greedy + local search, then verify the cached dispersion and all
    // gains against naive recomputation.
    let problem = SyntheticConfig::paper(30).generate(11);
    let greedy = greedy_b(&problem, 8, GreedyBConfig::default());
    let ls = local_search_refine(&problem, &greedy, LocalSearchConfig::default());
    let state = SolutionState::from_set(problem.metric(), &ls.set);
    assert!((state.dispersion() - problem.metric().dispersion(&ls.set)).abs() < 1e-9);
    for u in 0..30u32 {
        let expected: f64 = ls
            .set
            .iter()
            .filter(|&&v| v != u)
            .map(|&v| problem.metric().distance(u, v))
            .sum();
        assert!((state.distance_gain(u) - expected).abs() < 1e-9);
    }
}

#[test]
fn mmr_and_greedy_b_agree_when_diversity_is_ignored() {
    // With MMR trade_off = 1 and λ = 0, both rank purely by
    // relevance/weight.
    let problem = SyntheticConfig { n: 15, lambda: 0.0 }.generate(13);
    let relevance: Vec<f64> = problem.quality().weights().to_vec();
    let mmr = mmr_select(
        problem.metric(),
        &relevance,
        5,
        MmrConfig { trade_off: 1.0 },
    );
    let greedy = greedy_b(&problem, 5, GreedyBConfig::default());
    let mut m = mmr.clone();
    let mut g = greedy.clone();
    m.sort_unstable();
    g.sort_unstable();
    assert_eq!(m, g, "both must select the top-5 by weight");
}

#[test]
fn dynamic_pipeline_mini_fig1() {
    // Generate → greedy → perturb stream → single updates → ratio check.
    let problem = SyntheticConfig { n: 20, lambda: 0.2 }.generate(17);
    let init = greedy_b(&problem, 5, GreedyBConfig::default());
    let mut dynamic = DynamicInstance::new(problem, &init);
    let perturbations = [
        Perturbation::SetWeight { u: 3, value: 0.9 },
        Perturbation::SetDistance {
            u: 1,
            v: 7,
            value: 1.8,
        },
        Perturbation::SetWeight { u: 11, value: 0.05 },
        Perturbation::SetDistance {
            u: 0,
            v: 19,
            value: 1.05,
        },
    ];
    for &pert in &perturbations {
        dynamic.apply(pert);
        dynamic.oblivious_update();
        let opt = exact_max_diversification(dynamic.problem(), 5);
        assert!(3.0 * dynamic.objective() >= opt.objective - 1e-9);
        // Cached state must agree with direct evaluation.
        let direct = dynamic.problem().objective(dynamic.solution());
        assert!((dynamic.objective() - direct).abs() < 1e-9);
    }
}

#[test]
fn portfolio_style_constraint_stack_composes() {
    // Mixture quality + partition matroid truncated to a budget, as in the
    // portfolio example — full stack through the facade.
    let n = 12;
    let weights: Vec<f64> = (0..n).map(|i| 0.5 + (i % 4) as f64).collect();
    let quality = MixtureFunction::new(n)
        .with(
            1.0,
            ConcaveOverModular::new(weights.clone(), ConcaveShape::Sqrt),
        )
        .with(0.5, ModularFunction::new(weights));
    let metric = DistanceMatrix::from_fn(n, |u, v| 1.0 + f64::from(u.abs_diff(v)) / 12.0);
    let problem = DiversificationProblem::new(metric, quality, 0.3);
    let blocks: Vec<u32> = (0..n as u32).map(|u| u % 3).collect();
    let matroid = TruncatedMatroid::new(PartitionMatroid::new(blocks.clone(), vec![2, 2, 2]), 4);
    let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    assert!(r.set.len() <= 4);
    assert!(matroid.is_independent(&r.set));
    let mut per_block = [0usize; 3];
    for &e in &r.set {
        per_block[blocks[e as usize] as usize] += 1;
    }
    assert!(per_block.iter().all(|&c| c <= 2));
}
