//! Degenerate-instance and failure-injection tests: every algorithm must
//! behave sensibly on the boundary of its domain — empty and singleton
//! ground sets, all-zero metrics, zero λ, zero quality, saturated
//! constraints — and reject invalid inputs loudly rather than silently
//! corrupting results.

use max_sum_diversification::core::streaming::stream_diversify;
use max_sum_diversification::prelude::*;
use max_sum_diversification::submodular::ZeroFunction;

fn trivial(n: usize) -> DiversificationProblem<DistanceMatrix, ModularFunction> {
    DiversificationProblem::new(
        DistanceMatrix::zeros(n),
        ModularFunction::uniform(n, 1.0),
        0.5,
    )
}

#[test]
fn singleton_ground_set() {
    let p = trivial(1);
    assert_eq!(greedy_b(&p, 1, GreedyBConfig::default()), vec![0]);
    assert_eq!(greedy_a(&p, 1, GreedyAConfig::default()), vec![0]);
    assert_eq!(exact_max_diversification(&p, 1).set, vec![0]);
    let ls = local_search_matroid(&p, &UniformMatroid::new(1, 1), LocalSearchConfig::default());
    assert_eq!(ls.set, vec![0]);
    assert_eq!(
        mmr_select(p.metric(), &[1.0], 1, MmrConfig::default()),
        vec![0]
    );
}

#[test]
fn all_zero_metric_reduces_to_quality_selection() {
    // With d ≡ 0 the objective is pure f; greedy must take the heaviest
    // elements.
    let metric = DistanceMatrix::zeros(6);
    let quality = ModularFunction::new(vec![0.1, 0.9, 0.5, 0.3, 0.8, 0.2]);
    let p = DiversificationProblem::new(metric, quality, 1.0);
    let mut s = greedy_b(&p, 3, GreedyBConfig::default());
    s.sort_unstable();
    assert_eq!(s, vec![1, 2, 4]);
    let opt = exact_max_diversification(&p, 3);
    assert!((p.objective(&s) - opt.objective).abs() < 1e-12);
}

#[test]
fn zero_lambda_and_zero_quality_simultaneously() {
    // φ ≡ 0: any feasible set is optimal; algorithms must terminate and
    // return the right cardinality.
    let metric = DistanceMatrix::zeros(5);
    let p = DiversificationProblem::new(&metric, ZeroFunction::new(5), 0.0);
    let g = greedy_b(&p, 3, GreedyBConfig::default());
    assert_eq!(g.len(), 3);
    let ls = local_search_refine(&p, &g, LocalSearchConfig::default());
    assert!(ls.converged);
    assert_eq!(ls.objective, 0.0);
}

#[test]
fn local_search_terminates_on_symmetric_ties() {
    // A fully symmetric instance: every swap is exactly neutral, so the
    // search must converge immediately rather than cycling.
    let metric = DistanceMatrix::from_fn(8, |_, _| 1.0);
    let quality = ModularFunction::uniform(8, 1.0);
    let p = DiversificationProblem::new(metric, quality, 0.7);
    let r = local_search_refine(&p, &[0, 1, 2], LocalSearchConfig::default());
    assert!(r.converged);
    assert_eq!(r.swaps, 0, "neutral swaps must not be taken");
}

#[test]
fn matroid_with_loops_everywhere_yields_empty_solution() {
    // Every element is a loop (zero capacity): the only independent set
    // is ∅.
    let problem = trivial(4);
    let matroid = PartitionMatroid::new(vec![0, 0, 0, 0], vec![0]);
    let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    assert!(r.set.is_empty());
    assert_eq!(r.objective, 0.0);
}

#[test]
fn streaming_with_capacity_above_stream_length() {
    let p = trivial(3);
    let s = stream_diversify(&p, &[2, 0], 10);
    let mut got = s.clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 2]);
}

#[test]
fn dynamic_instance_with_p_equal_n() {
    // Solution = whole ground set: no outside element exists, so the
    // update rule must be a clean no-op.
    let problem = trivial(4);
    let mut d = DynamicInstance::new(problem, &[0, 1, 2, 3]);
    d.apply(Perturbation::SetWeight { u: 2, value: 9.0 });
    let out = d.oblivious_update();
    assert_eq!(out.swap, None);
    assert_eq!(d.solution().len(), 4);
}

#[test]
fn hassin_algorithms_on_two_elements() {
    let metric = DistanceMatrix::from_fn(2, |_, _| 3.0);
    assert_eq!(hassin_edge_greedy(&metric, 2).len(), 2);
    assert_eq!(hassin_matching(&metric, 2).len(), 2);
    assert_eq!(hassin_edge_greedy(&metric, 1).len(), 1);
}

#[test]
#[should_panic(expected = "non-negative")]
fn negative_weight_rejected_at_construction() {
    let _ = ModularFunction::new(vec![1.0, -2.0]);
}

#[test]
#[should_panic(expected = "lambda must be finite and non-negative")]
fn nan_lambda_rejected() {
    let _ = DiversificationProblem::new(
        DistanceMatrix::zeros(2),
        ModularFunction::uniform(2, 1.0),
        f64::NAN,
    );
}

#[test]
#[should_panic(expected = "distance must be finite and non-negative")]
fn dynamic_rejects_negative_distance_perturbation() {
    let mut d = DynamicInstance::new(trivial(3), &[0, 1]);
    d.apply(Perturbation::SetDistance {
        u: 0,
        v: 2,
        value: -1.0,
    });
}

#[test]
fn exact_solver_on_uniform_instances_picks_any_p_set() {
    // Fully symmetric instance: every size-p set has the same value; the
    // solver must return one of them with the common objective.
    let metric = DistanceMatrix::from_fn(6, |_, _| 2.0);
    let quality = ModularFunction::uniform(6, 1.0);
    let p = DiversificationProblem::new(metric, quality, 0.5);
    let r = exact_max_diversification(&p, 3);
    assert_eq!(r.set.len(), 3);
    // f = 3, d(S) = 3 pairs × 2 = 6 → φ = 3 + 3 = 6.
    assert!((r.objective - 6.0).abs() < 1e-12);
}

#[test]
fn mmr_handles_uniform_relevance() {
    let metric = DistanceMatrix::from_fn(5, |u, v| f64::from(u.abs_diff(v)));
    let s = mmr_select(&metric, &[0.5; 5], 3, MmrConfig::default());
    assert_eq!(s.len(), 3);
    let mut d = s.clone();
    d.sort_unstable();
    d.dedup();
    assert_eq!(d.len(), 3);
}
