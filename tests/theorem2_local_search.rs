//! Integration tests for Theorem 2: single-swap local search is a
//! 2-approximation under arbitrary matroid constraints.
//!
//! The optimum over a matroid's bases is computed by exhaustive
//! enumeration, so ground sets stay small; matroid variety is the point —
//! uniform, partition, transversal, graphic and truncated constraints are
//! all exercised, including on the appendix counterexample where greedy
//! fails.

use max_sum_diversification::core::counterexample::{matroid_constrained_greedy, AppendixInstance};
use max_sum_diversification::prelude::*;
use proptest::prelude::*;

/// Exhaustive optimum of `problem` over the independent sets of `matroid`.
fn matroid_opt<M: Matroid>(
    problem: &DiversificationProblem<DistanceMatrix, ModularFunction>,
    matroid: &M,
) -> f64 {
    let n = problem.ground_size();
    assert!(n <= 16, "exhaustive matroid optimum limited to 16 elements");
    let mut best = 0.0_f64;
    for mask in 0u32..(1 << n) {
        let set: Vec<ElementId> = (0..n as u32).filter(|&i| mask >> i & 1 == 1).collect();
        if matroid.is_independent(&set) {
            best = best.max(problem.objective(&set));
        }
    }
    best
}

fn instance(
    weights: Vec<f64>,
    raw: &[f64],
    lambda: f64,
) -> DiversificationProblem<DistanceMatrix, ModularFunction> {
    let n = weights.len();
    let mut it = raw.iter().copied().cycle();
    let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + it.next().unwrap_or(0.5));
    DiversificationProblem::new(metric, ModularFunction::new(weights), lambda)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_approx_under_uniform_matroid(
        weights in prop::collection::vec(0.0f64..1.0, 5..9),
        raw in prop::collection::vec(0.0f64..1.0, 36),
        rank in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let n = weights.len();
        let problem = instance(weights, &raw, lambda);
        let matroid = UniformMatroid::new(n, rank);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        prop_assert!(matroid.is_independent(&r.set));
        prop_assert!(2.0 * r.objective >= matroid_opt(&problem, &matroid) - 1e-9);
    }

    #[test]
    fn two_approx_under_partition_matroid(
        weights in prop::collection::vec(0.0f64..1.0, 6..10),
        raw in prop::collection::vec(0.0f64..1.0, 45),
        caps in prop::collection::vec(1u32..3, 3),
    ) {
        let n = weights.len();
        let blocks: Vec<u32> = (0..n as u32).map(|u| u % 3).collect();
        let matroid = PartitionMatroid::new(blocks, caps);
        let problem = instance(weights, &raw, 0.2);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        prop_assert!(matroid.is_independent(&r.set));
        prop_assert!(2.0 * r.objective >= matroid_opt(&problem, &matroid) - 1e-9);
    }

    #[test]
    fn two_approx_under_transversal_matroid(
        weights in prop::collection::vec(0.0f64..1.0, 6..9),
        raw in prop::collection::vec(0.0f64..1.0, 36),
        set_picks in prop::collection::vec(prop::collection::vec(0usize..8, 2..5), 3),
    ) {
        let n = weights.len();
        let sets: Vec<Vec<ElementId>> = set_picks
            .iter()
            .map(|s| s.iter().map(|&e| (e % n) as ElementId).collect())
            .collect();
        let matroid = TransversalMatroid::new(n, &sets);
        let problem = instance(weights, &raw, 0.2);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        prop_assert!(matroid.is_independent(&r.set));
        prop_assert!(2.0 * r.objective >= matroid_opt(&problem, &matroid) - 1e-9);
    }

    #[test]
    fn two_approx_under_truncated_partition(
        weights in prop::collection::vec(0.0f64..1.0, 6..10),
        raw in prop::collection::vec(0.0f64..1.0, 45),
        k in 1usize..4,
    ) {
        let n = weights.len();
        let blocks: Vec<u32> = (0..n as u32).map(|u| u % 2).collect();
        let matroid = TruncatedMatroid::new(PartitionMatroid::new(blocks, vec![2, 2]), k);
        let problem = instance(weights, &raw, 0.2);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        prop_assert!(matroid.is_independent(&r.set));
        prop_assert!(2.0 * r.objective >= matroid_opt(&problem, &matroid) - 1e-9);
    }
}

#[test]
fn two_approx_under_graphic_matroid() {
    // Ground set = edges of K4 (6 edges); independent sets = forests.
    let edges = vec![(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let matroid = GraphicMatroid::new(4, edges);
    for seed in 0..8u64 {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let weights: Vec<f64> = (0..6).map(|_| next()).collect();
        let metric = DistanceMatrix::from_fn(6, |_, _| 1.0 + next());
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.3);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        assert!(matroid.is_independent(&r.set));
        assert_eq!(r.set.len(), 3, "spanning trees of K4 have 3 edges");
        assert!(2.0 * r.objective >= matroid_opt(&problem, &matroid) - 1e-9);
    }
}

#[test]
fn appendix_contrast_greedy_unbounded_local_search_bounded() {
    // The paper's appendix: the greedy ratio grows with r, local search
    // stays within 2 — the motivating contrast for Section 5.
    let mut previous_ratio = 1.0;
    for r in [6usize, 12, 24, 48] {
        let inst = AppendixInstance::new(r, 2.0);
        let greedy = matroid_constrained_greedy(&inst);
        let greedy_ratio = inst.optimal_value() / inst.problem.objective(&greedy);
        assert!(
            greedy_ratio > previous_ratio,
            "greedy ratio must grow with r (r={r}: {greedy_ratio})"
        );
        previous_ratio = greedy_ratio;

        let ls = local_search_matroid(&inst.problem, &inst.matroid, LocalSearchConfig::default());
        assert!(
            2.0 * ls.objective >= inst.optimal_value() - 1e-9,
            "local search must stay within 2 at r={r}"
        );
    }
    assert!(
        previous_ratio > 5.0,
        "ratio should be clearly unbounded by r=48"
    );
}

#[test]
fn local_search_result_is_a_basis() {
    // Theorem 2's S is a basis (φ is monotone, so maximal sets dominate).
    let problem = instance(vec![0.4, 0.9, 0.1, 0.7, 0.3, 0.6], &[0.2, 0.8, 0.5], 0.2);
    let matroid = PartitionMatroid::new(vec![0, 0, 0, 1, 1, 1], vec![2, 1]);
    let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    assert_eq!(r.set.len(), 3, "must be a basis (rank 3)");
}
