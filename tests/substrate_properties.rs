//! Cross-crate property tests for the substrates: every generated metric
//! is a metric, every quality function is normalized monotone submodular,
//! every matroid satisfies the axioms — i.e. the hypotheses of Theorems 1
//! and 2 actually hold for everything the library can feed them.

use max_sum_diversification::data::synthetic::SyntheticConfig;
use max_sum_diversification::data::LetorConfig;
use max_sum_diversification::matroid::audit::MatroidAudit;
use max_sum_diversification::prelude::*;
use max_sum_diversification::submodular::audit::FunctionAudit;
use max_sum_diversification::submodular::ZeroFunction;
use msd_metric::MetricAudit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_instances_are_metric(seed in 0u64..10_000, n in 3usize..12) {
        let problem = SyntheticConfig::paper(n).generate(seed);
        MetricAudit::check(problem.metric()).assert_metric();
    }

    #[test]
    fn coverage_functions_are_monotone_submodular(
        n in 2usize..7,
        picks in prop::collection::vec(prop::collection::vec(0u32..5, 0..4), 7),
        weights in prop::collection::vec(0.0f64..3.0, 5),
    ) {
        let covers: Vec<Vec<u32>> = (0..n).map(|i| picks[i % picks.len()].clone()).collect();
        let f = CoverageFunction::new(covers, weights);
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }

    #[test]
    fn facility_location_is_monotone_submodular(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 5), 4),
        weights in prop::collection::vec(0.0f64..2.0, 4),
    ) {
        let f = FacilityLocationFunction::new(rows, weights);
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }

    #[test]
    fn mixtures_are_monotone_submodular(
        w1 in prop::collection::vec(0.0f64..1.0, 5),
        w2 in prop::collection::vec(0.0f64..1.0, 5),
        c1 in 0.0f64..2.0,
        c2 in 0.0f64..2.0,
    ) {
        let f = MixtureFunction::new(5)
            .with(c1, ModularFunction::new(w1))
            .with(c2, ConcaveOverModular::new(w2, ConcaveShape::Log1p));
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }

    #[test]
    fn random_partition_matroids_satisfy_axioms(
        blocks in prop::collection::vec(0u32..3, 4..9),
        caps in prop::collection::vec(0u32..4, 3),
    ) {
        let m = PartitionMatroid::new(blocks, caps);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }

    #[test]
    fn random_transversal_matroids_satisfy_axioms(
        n in 3usize..8,
        picks in prop::collection::vec(prop::collection::vec(0usize..8, 1..4), 1..4),
    ) {
        let sets: Vec<Vec<ElementId>> = picks
            .iter()
            .map(|s| s.iter().map(|&e| (e % n) as ElementId).collect())
            .collect();
        let m = TransversalMatroid::new(n, &sets);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }

    #[test]
    fn random_graphic_matroids_satisfy_axioms(
        edges in prop::collection::vec((0u32..5, 0u32..5), 2..8),
    ) {
        let m = GraphicMatroid::new(5, edges);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }

    #[test]
    fn truncations_preserve_matroid_axioms(
        blocks in prop::collection::vec(0u32..2, 4..8),
        k in 0usize..4,
    ) {
        let inner = PartitionMatroid::new(blocks, vec![2, 2]);
        MatroidAudit::exhaustive(&TruncatedMatroid::new(inner, k)).assert_matroid();
    }
}

#[test]
fn letor_quality_is_modular_and_grades_bounded() {
    let query = LetorConfig {
        docs_per_query: 30,
        feature_dim: 8,
        topics: 3,
        lambda: 0.2,
    }
    .generate(5, 0);
    let (problem, _) = query.top_k(12);
    // Modular quality over grades 0..=5.
    for u in 0..12u32 {
        let w = problem.quality().weight(u);
        assert!((0.0..=5.0).contains(&w));
        assert_eq!(w.fract(), 0.0, "grades are integers");
    }
    FunctionAudit::sampled(problem.quality(), 100, {
        let mut x = 3u64;
        move |k| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) % k as u64) as usize
        }
    })
    .assert_monotone_submodular();
}

#[test]
fn zero_function_turns_diversification_into_dispersion() {
    let metric = DistanceMatrix::from_fn(8, |u, v| 1.0 + f64::from(u + v) / 20.0);
    let problem = DiversificationProblem::new(&metric, ZeroFunction::new(8), 1.0);
    for p in 1..=4usize {
        let s = greedy_b(&problem, p, GreedyBConfig::default());
        let direct = max_sum_dispersion_greedy(&metric, p);
        assert_eq!(s, direct);
        assert!((problem.objective(&s) - metric.dispersion(&s)).abs() < 1e-12);
    }
}
