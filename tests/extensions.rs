//! Integration tests for the extension features built on top of the
//! paper's core results: streaming selection, knapsack constraints,
//! double-swap dynamic updates, log-det quality, laminar matroids and
//! graph metrics — exercised together, across crates.

use max_sum_diversification::core::knapsack::{knapsack_diversify, KnapsackConfig};
use max_sum_diversification::core::streaming::stream_diversify;
use max_sum_diversification::data::synthetic::SyntheticConfig;
use max_sum_diversification::prelude::*;
use proptest::prelude::*;

#[test]
fn graph_metric_feeds_the_full_pipeline() {
    // Location theory end-to-end: network → shortest-path metric →
    // dispersion greedy → guarantee check.
    let mut g = WeightedGraph::new(8);
    for (u, v, w) in [
        (0u32, 1u32, 2.0),
        (1, 2, 1.0),
        (2, 3, 3.0),
        (3, 4, 1.0),
        (4, 5, 2.0),
        (5, 6, 1.5),
        (6, 7, 2.5),
        (0, 7, 4.0),
        (2, 6, 2.0),
    ] {
        g.add_edge(u, v, w);
    }
    let metric = g.shortest_path_metric().expect("connected");
    let weights: Vec<f64> = (0..8).map(|i| 0.1 * i as f64).collect();
    let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.5);
    let s = greedy_b(&problem, 3, GreedyBConfig::default());
    let opt = exact_max_diversification(&problem, 3);
    assert!(2.0 * problem.objective(&s) >= opt.objective - 1e-9);
}

#[test]
fn logdet_quality_composes_with_greedy_and_local_search() {
    // DPP-style quality over embeddings + a metric over the same
    // embeddings: both algorithms respect the Theorem 1/2 bounds.
    let features: Vec<Vec<f64>> = (0..7)
        .map(|i| {
            let a = (i as f64) * 0.8;
            vec![a.cos(), a.sin(), 0.3]
        })
        .collect();
    let quality = LogDetFunction::from_gram(&features);
    let pts: Vec<Point> = features.iter().map(|f| Point::new(f.clone())).collect();
    let metric = DistanceMatrix::from_points(&pts, |a, b| a.euclidean(b));
    let problem = DiversificationProblem::new(metric, quality, 0.4);
    let greedy = greedy_b(&problem, 3, GreedyBConfig::default());
    let opt = exact_max_diversification(&problem, 3);
    assert!(2.0 * problem.objective(&greedy) >= opt.objective - 1e-9);

    let ls = local_search_matroid(
        &problem,
        &UniformMatroid::new(7, 3),
        LocalSearchConfig::default(),
    );
    assert!(2.0 * ls.objective >= opt.objective - 1e-9);
}

#[test]
fn laminar_constraints_work_with_local_search() {
    let problem = SyntheticConfig::paper(9).generate(3);
    let matroid = LaminarMatroid::partition_with_global_cap(
        9,
        &[vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]],
        &[2, 2, 2],
        4,
    );
    let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    assert!(matroid.is_independent(&r.set));
    assert_eq!(r.set.len(), 4, "the global cap binds");
    // Exhaustive optimum over the laminar matroid.
    let mut opt = 0.0_f64;
    for mask in 0u32..512 {
        let set: Vec<ElementId> = (0..9).filter(|&i| mask >> i & 1 == 1).collect();
        if matroid.is_independent(&set) {
            opt = opt.max(problem.objective(&set));
        }
    }
    assert!(2.0 * r.objective >= opt - 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming result + LS polish restores the 2-approximation,
    /// regardless of arrival order.
    #[test]
    fn streaming_plus_polish_is_2_approx(
        seed in 0u64..500,
        perm_seed in 0u64..100,
        p in 1usize..4,
    ) {
        let problem = SyntheticConfig::paper(8).generate(seed);
        // Deterministic permutation of arrival order.
        let mut order: Vec<ElementId> = (0..8).collect();
        let mut x = perm_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..order.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let streamed = stream_diversify(&problem, &order, p);
        let polished = local_search_refine(&problem, &streamed, LocalSearchConfig::default());
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * polished.objective >= opt.objective - 1e-9);
    }

    /// The knapsack heuristic is feasible and matches the exact optimum
    /// within factor 2 on exhaustively-checkable instances.
    #[test]
    fn knapsack_heuristic_feasible_and_competitive(
        seed in 0u64..500,
        budget in 1.5f64..5.0,
    ) {
        let problem = SyntheticConfig::paper(8).generate(seed);
        let costs: Vec<f64> = (0..8).map(|i| 0.5 + (i % 3) as f64 * 0.75).collect();
        let r = knapsack_diversify(&problem, &costs, budget, KnapsackConfig::default());
        prop_assert!(r.cost <= budget + 1e-12);
        // Exact optimum by enumeration.
        let mut opt = 0.0_f64;
        for mask in 0u32..256 {
            let set: Vec<ElementId> = (0..8).filter(|&i| mask >> i & 1 == 1).collect();
            let cost: f64 = set.iter().map(|&u| costs[u as usize]).sum();
            if cost <= budget {
                opt = opt.max(problem.objective(&set));
            }
        }
        prop_assert!(2.0 * r.objective >= opt - 1e-9, "{} vs {}", r.objective, opt);
    }

    /// Double-swap dynamic maintenance never does worse than the
    /// provable single-swap ratio bound.
    #[test]
    fn double_swap_maintains_ratio_3(
        seed in 0u64..300,
        u in 0u32..10,
        value in 0.0f64..2.0,
    ) {
        let p = 4;
        let problem = SyntheticConfig::paper(10).generate(seed);
        let init = greedy_b(&problem, p, GreedyBConfig::default());
        let mut d = DynamicInstance::new(problem, &init);
        d.apply(Perturbation::SetWeight { u, value });
        d.oblivious_update_double();
        let opt = exact_max_diversification(d.problem(), p);
        prop_assert!(3.0 * d.objective() >= opt.objective - 1e-9);
    }
}

#[test]
fn gollapudi_sharma_reduction_metric_reproduces_greedy_a() {
    // Dispersion edge-greedy on the reduction metric = Greedy A's core
    // loop (compositional check of the §4 reduction discussion).
    let problem = SyntheticConfig::paper(20).generate(8);
    let weights = problem.quality().weights().to_vec();
    let reduced = max_sum_diversification::metric::GollapudiSharmaMetric::new(
        problem.metric().clone(),
        weights,
        problem.lambda(),
    );
    let p = 6; // even, so no arbitrary-last-vertex divergence
    let via_reduction = hassin_edge_greedy(&reduced, p);
    let direct = greedy_a(&problem, p, GreedyAConfig::default());
    let mut a = via_reduction.clone();
    let mut b = direct.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "reduction pipeline must reproduce Greedy A");
}
