//! Integration tests for Theorem 1: Greedy B is a 2-approximation for
//! max-sum diversification with monotone submodular quality functions
//! under a cardinality constraint.
//!
//! Property-based: random instances (modular, coverage and
//! concave-over-modular qualities; synthetic and geometric metrics) are
//! solved both greedily and exactly, and the ratio is checked.

use max_sum_diversification::prelude::*;
use proptest::prelude::*;

/// Builds a random metric from `[1, 2]`-valued distances (always metric).
fn one_two_metric(n: usize, raw: &[f64]) -> DistanceMatrix {
    let mut it = raw.iter().copied().cycle();
    DistanceMatrix::from_fn(n, |_, _| 1.0 + it.next().unwrap_or(0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_b_is_2_approx_modular(
        weights in prop::collection::vec(0.0f64..1.0, 4..9),
        raw in prop::collection::vec(0.0f64..1.0, 36),
        p in 1usize..5,
        lambda in 0.0f64..1.0,
    ) {
        let n = weights.len();
        let metric = one_two_metric(n, &raw);
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), lambda);
        let greedy = greedy_b(&problem, p, GreedyBConfig::default());
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * problem.objective(&greedy) >= opt.objective - 1e-9);
    }

    #[test]
    fn greedy_b_is_2_approx_coverage(
        n in 4usize..8,
        topic_seeds in prop::collection::vec(0usize..4, 8),
        topic_weights in prop::collection::vec(0.0f64..2.0, 4),
        raw in prop::collection::vec(0.0f64..1.0, 28),
        p in 1usize..4,
    ) {
        // Each element covers one or two of 4 topics.
        let covers: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let a = topic_seeds[i % topic_seeds.len()] as u32;
                let b = topic_seeds[(i + 3) % topic_seeds.len()] as u32;
                vec![a, b]
            })
            .collect();
        let quality = CoverageFunction::new(covers, topic_weights);
        let metric = one_two_metric(n, &raw);
        let problem = DiversificationProblem::new(metric, quality, 0.2);
        let greedy = greedy_b(&problem, p, GreedyBConfig::default());
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * problem.objective(&greedy) >= opt.objective - 1e-9);
    }

    #[test]
    fn greedy_b_is_2_approx_concave_over_modular(
        weights in prop::collection::vec(0.0f64..3.0, 5..8),
        raw in prop::collection::vec(0.0f64..1.0, 28),
        p in 1usize..5,
    ) {
        let n = weights.len();
        let quality = ConcaveOverModular::new(weights, ConcaveShape::Sqrt);
        let metric = one_two_metric(n, &raw);
        let problem = DiversificationProblem::new(metric, quality, 0.3);
        let greedy = greedy_b(&problem, p, GreedyBConfig::default());
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * problem.objective(&greedy) >= opt.objective - 1e-9);
    }

    #[test]
    fn improved_greedy_is_also_2_approx(
        weights in prop::collection::vec(0.0f64..1.0, 5..8),
        raw in prop::collection::vec(0.0f64..1.0, 28),
        p in 2usize..5,
    ) {
        let n = weights.len();
        let metric = one_two_metric(n, &raw);
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2);
        let greedy = greedy_b(&problem, p, GreedyBConfig { best_pair_start: true });
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * problem.objective(&greedy) >= opt.objective - 1e-9);
    }

    #[test]
    fn greedy_a_is_2_approx_modular(
        weights in prop::collection::vec(0.0f64..1.0, 5..9),
        raw in prop::collection::vec(0.0f64..1.0, 36),
        p in 2usize..5,
    ) {
        let n = weights.len();
        let metric = one_two_metric(n, &raw);
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2);
        let greedy = greedy_a(&problem, p, GreedyAConfig::default());
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * problem.objective(&greedy) >= opt.objective - 1e-9);
    }

    #[test]
    fn dispersion_greedy_is_2_approx(
        raw in prop::collection::vec(0.0f64..1.0, 36),
        n in 5usize..9,
        p in 2usize..5,
    ) {
        let metric = one_two_metric(n, &raw);
        let greedy = max_sum_dispersion_greedy(&metric, p);
        let problem = DiversificationProblem::new(
            &metric,
            max_sum_diversification::submodular::ZeroFunction::new(n),
            1.0,
        );
        let opt = exact_max_diversification(&problem, p);
        prop_assert!(2.0 * metric.dispersion(&greedy) >= opt.objective - 1e-9);
    }
}

#[test]
fn greedy_solutions_are_valid_sets() {
    // Deterministic sweep: distinct elements, correct cardinality, stable
    // output.
    for n in [1usize, 2, 5, 12] {
        let metric = DistanceMatrix::from_fn(n, |u, v| 1.0 + f64::from(u + v) / 10.0);
        let weights: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2);
        for p in 0..=n {
            let s = greedy_b(&problem, p, GreedyBConfig::default());
            assert_eq!(s.len(), p);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), p, "duplicates for n={n} p={p}");
            assert_eq!(s, greedy_b(&problem, p, GreedyBConfig::default()));
        }
    }
}
