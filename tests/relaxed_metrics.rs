//! Integration tests for the relaxed-metric regime (paper conclusion;
//! Sydow, ISMIS 2014; Abbasi-Zadeh & Ghadiri 2015).
//!
//! For a distance satisfying only the α-relaxed triangle inequality
//! `α·(d(x,y) + d(y,z)) ≥ d(x,z)`:
//!
//! * the edge-greedy dispersion algorithm is a (tight) `2α`-approximation
//!   under a cardinality constraint (Sydow);
//! * the local search is a `2α²`-approximation under a matroid constraint
//!   (Abbasi-Zadeh & Ghadiri).
//!
//! These tests draw *arbitrary* symmetric distances (no triangle
//! inequality imposed), measure α with `relaxation_parameter`, and verify
//! the bounds empirically.

use max_sum_diversification::prelude::*;
use msd_metric::relaxation_parameter;
use proptest::prelude::*;

/// Brute-force max-sum dispersion optimum.
fn opt_dispersion(metric: &DistanceMatrix, p: usize) -> f64 {
    let n = metric.len();
    let mut best = 0.0_f64;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != p {
            continue;
        }
        let set: Vec<ElementId> = (0..n as u32).filter(|&i| mask >> i & 1 == 1).collect();
        best = best.max(metric.dispersion(&set));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sydow's 2α bound for edge-greedy dispersion on arbitrary
    /// symmetric distances.
    #[test]
    fn edge_greedy_respects_the_two_alpha_bound(
        raw in prop::collection::vec(0.1f64..10.0, 28),
        p in 2usize..5,
    ) {
        let n = 8usize;
        let mut it = raw.into_iter().cycle();
        let metric = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let report = relaxation_parameter(&metric);
        prop_assume!(report.alpha.is_finite());
        let greedy = hassin_edge_greedy(&metric, p);
        let val = metric.dispersion(&greedy);
        let opt = opt_dispersion(&metric, p);
        prop_assert!(
            report.cardinality_ratio() * val >= opt - 1e-9,
            "alpha={} val={val} opt={opt}",
            report.alpha
        );
    }

    /// The vertex greedy (Greedy B with f ≡ 0) also stays within 2α
    /// empirically on arbitrary symmetric distances.
    #[test]
    fn vertex_greedy_respects_the_two_alpha_bound(
        raw in prop::collection::vec(0.1f64..10.0, 28),
        p in 2usize..5,
    ) {
        let n = 8usize;
        let mut it = raw.into_iter().cycle();
        let metric = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let report = relaxation_parameter(&metric);
        prop_assume!(report.alpha.is_finite());
        let greedy = max_sum_dispersion_greedy(&metric, p);
        let val = metric.dispersion(&greedy);
        let opt = opt_dispersion(&metric, p);
        prop_assert!(report.cardinality_ratio() * val >= opt - 1e-9);
    }

    /// Abbasi-Zadeh–Ghadiri: local search within 2α² under a matroid on
    /// relaxed metrics (checked with a modular quality term too).
    #[test]
    fn local_search_respects_the_two_alpha_squared_bound(
        raw in prop::collection::vec(0.1f64..10.0, 28),
        weights in prop::collection::vec(0.0f64..1.0, 8),
        rank in 2usize..4,
    ) {
        let n = 8usize;
        let mut it = raw.into_iter().cycle();
        let metric = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let report = relaxation_parameter(&metric);
        prop_assume!(report.alpha.is_finite());
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.5);
        let matroid = UniformMatroid::new(n, rank);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        // Exhaustive optimum at the fixed rank.
        let mut opt = 0.0_f64;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != rank {
                continue;
            }
            let set: Vec<ElementId> = (0..n as u32).filter(|&i| mask >> i & 1 == 1).collect();
            opt = opt.max(problem.objective(&set));
        }
        prop_assert!(report.matroid_ratio() * r.objective >= opt - 1e-9);
    }
}

#[test]
fn alpha_one_recovers_the_plain_bounds() {
    // On an exact metric the relaxed bounds specialize to the paper's 2.
    let metric = DistanceMatrix::from_fn(6, |u, v| 1.0 + f64::from(u + v) / 10.0);
    let report = relaxation_parameter(&metric);
    assert!(report.is_exact_metric());
    assert_eq!(report.cardinality_ratio(), 2.0);
    assert_eq!(report.matroid_ratio(), 2.0);
}
