//! Integration tests for Section 6: the oblivious single-swap update rule
//! maintains a 3-approximation under the paper's perturbation
//! preconditions (Theorems 3–6, Corollaries 3–4).

use max_sum_diversification::core::dynamic::weight_decrease_update_bound;
use max_sum_diversification::data::synthetic::SyntheticConfig;
use max_sum_diversification::prelude::*;
use proptest::prelude::*;

fn start(seed: u64, n: usize, p: usize, lambda: f64) -> DynamicInstance {
    let problem = SyntheticConfig { n, lambda }.generate(seed);
    let init = greedy_b(&problem, p, GreedyBConfig::default());
    DynamicInstance::new(problem, &init)
}

fn current_opt(d: &DynamicInstance, p: usize) -> f64 {
    exact_max_diversification(d.problem(), p).objective
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 3 (type I): any weight increase + one update → ratio 3.
    #[test]
    fn weight_increase_single_update(
        seed in 0u64..1000,
        u in 0u32..10,
        value in 0.0f64..5.0,
    ) {
        let p = 4;
        let mut d = start(seed, 10, p, 0.2);
        let old = d.problem().quality().weight(u);
        prop_assume!(value > old);
        d.apply(Perturbation::SetWeight { u, value });
        d.oblivious_update();
        prop_assert!(3.0 * d.objective() >= current_opt(&d, p) - 1e-9);
    }

    /// Theorem 4 (type II): a weight decrease with δ ≤ w/(p−2) + one
    /// update → ratio 3.
    #[test]
    fn small_weight_decrease_single_update(
        seed in 0u64..1000,
        pick in 0usize..4,
        frac in 0.0f64..1.0,
    ) {
        let p = 4;
        let mut d = start(seed, 10, p, 0.2);
        let u = d.solution()[pick % d.solution().len()];
        let w = d.objective();
        let old = d.problem().quality().weight(u);
        let delta = (w / (p as f64 - 2.0)).min(old) * frac;
        d.apply(Perturbation::SetWeight { u, value: old - delta });
        d.oblivious_update();
        prop_assert!(3.0 * d.objective() >= current_opt(&d, p) - 1e-9);
    }

    /// Theorem 4 general case: δ arbitrary, ⌈log_{(p−2)/(p−3)} w/(w−δ)⌉
    /// updates.
    #[test]
    fn large_weight_decrease_bounded_updates(
        seed in 0u64..1000,
        pick in 0usize..5,
        frac in 0.1f64..0.95,
    ) {
        let p = 5;
        let mut d = start(seed, 10, p, 0.2);
        let u = d.solution()[pick % d.solution().len()];
        let w = d.objective();
        let old = d.problem().quality().weight(u);
        let delta = old * frac;
        prop_assume!(delta < w);
        d.apply(Perturbation::SetWeight { u, value: old - delta });
        let bound = weight_decrease_update_bound(w, delta, p);
        for _ in 0..bound {
            d.oblivious_update();
        }
        prop_assert!(3.0 * d.objective() >= current_opt(&d, p) - 1e-9);
    }

    /// Theorem 5 (type III) and Theorem 6 (type IV): distance changes
    /// within the metric-preserving range [1, 2] + one update → ratio 3.
    #[test]
    fn distance_change_single_update(
        seed in 0u64..1000,
        u in 0u32..10,
        v in 0u32..10,
        value in 1.0f64..2.0,
    ) {
        prop_assume!(u != v);
        let p = 4;
        let mut d = start(seed, 10, p, 0.2);
        d.apply(Perturbation::SetDistance { u, v, value });
        d.oblivious_update();
        prop_assert!(3.0 * d.objective() >= current_opt(&d, p) - 1e-9);
    }

    /// Corollary 3: p ≤ 3 maintains ratio 3 for ANY perturbation.
    #[test]
    fn small_p_tolerates_any_perturbation(
        seed in 0u64..1000,
        u in 0u32..8,
        value in 0.0f64..1.0,
    ) {
        let p = 3;
        let mut d = start(seed, 8, p, 0.2);
        // Arbitrary weight change (may be a huge decrease).
        d.apply(Perturbation::SetWeight { u, value });
        d.oblivious_update();
        prop_assert!(3.0 * d.objective() >= current_opt(&d, p) - 1e-9);
    }
}

#[test]
fn long_perturbation_streams_keep_ratio_far_below_3() {
    // The Figure 1 observation: over long mixed streams the maintained
    // ratio stays near 1 (paper's worst observation ≈ 1.11).
    let p = 4;
    let mut worst = 1.0_f64;
    for seed in 0..5u64 {
        let mut d = start(seed + 77, 12, p, 0.2);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        for step in 0..30 {
            if step % 2 == 0 {
                let u = (next() * 12.0) as u32 % 12;
                d.apply(Perturbation::SetWeight { u, value: next() });
            } else {
                let u = (next() * 12.0) as u32 % 12;
                let mut v = (next() * 12.0) as u32 % 12;
                if v == u {
                    v = (v + 1) % 12;
                }
                d.apply(Perturbation::SetDistance {
                    u,
                    v,
                    value: 1.0 + next(),
                });
            }
            d.oblivious_update();
            let ratio = current_opt(&d, p) / d.objective();
            worst = worst.max(ratio);
        }
    }
    assert!(
        worst < 1.5,
        "long-stream worst ratio should stay near 1, got {worst}"
    );
}

#[test]
fn classification_covers_all_four_paper_types() {
    use max_sum_diversification::core::dynamic::PerturbationType;
    let d = start(1, 8, 3, 0.2);
    let w0 = d.problem().quality().weight(0);
    let d01 = d.problem().metric().distance(0, 1);
    assert_eq!(
        d.classify(Perturbation::SetWeight {
            u: 0,
            value: w0 + 1.0
        }),
        PerturbationType::WeightIncrease
    );
    assert_eq!(
        d.classify(Perturbation::SetWeight {
            u: 0,
            value: w0 * 0.5
        }),
        PerturbationType::WeightDecrease
    );
    assert_eq!(
        d.classify(Perturbation::SetDistance {
            u: 0,
            v: 1,
            value: d01 + 0.01
        }),
        PerturbationType::DistanceIncrease
    );
    assert_eq!(
        d.classify(Perturbation::SetDistance {
            u: 0,
            v: 1,
            value: d01 - 0.01
        }),
        PerturbationType::DistanceDecrease
    );
}
