//! Golden regression tests: exact outputs of every algorithm on fixed
//! seeds. These pin the current (verified) behaviour so refactors that
//! change tie-breaking, iteration order or caching are surfaced
//! immediately. If a change is *intentional*, re-derive the constants by
//! running the printed expressions.

use max_sum_diversification::core::streaming::stream_diversify;
use max_sum_diversification::data::synthetic::SyntheticConfig;
use max_sum_diversification::data::LetorConfig;
use max_sum_diversification::prelude::*;

fn synthetic() -> DiversificationProblem<DistanceMatrix, ModularFunction> {
    SyntheticConfig::paper(30).generate(12345)
}

#[test]
fn golden_greedy_b() {
    let problem = synthetic();
    let s = greedy_b(&problem, 6, GreedyBConfig::default());
    // Selection order is part of the contract (first pick = max potential).
    assert_eq!(s, vec![28, 19, 26, 15, 9, 14]);
    let objective = problem.objective(&s);
    assert!(
        (objective - 9.824240).abs() < 1e-5,
        "objective drifted: {objective}"
    );
}

#[test]
fn golden_greedy_a() {
    let problem = synthetic();
    let s = greedy_a(&problem, 6, GreedyAConfig::default());
    assert_eq!(s, vec![19, 28, 15, 26, 7, 20]);
}

#[test]
fn golden_dispersion_algorithms() {
    let problem = synthetic();
    let metric = problem.metric();
    let vertex = max_sum_dispersion_greedy(metric, 4);
    let edge = hassin_edge_greedy(metric, 4);
    let matching = hassin_matching(metric, 4);
    assert_eq!(vertex.len(), 4);
    assert_eq!(edge.len(), 4);
    assert_eq!(matching.len(), 4);
    // Pin the dispersion values, not just the shapes.
    let dv = metric.dispersion(&vertex);
    let de = metric.dispersion(&edge);
    let dm = metric.dispersion(&matching);
    assert!(
        (dv - 11.010710).abs() < 1e-5,
        "vertex dispersion drifted: {dv}"
    );
    assert!(
        (de - 10.265145).abs() < 1e-5,
        "edge dispersion drifted: {de}"
    );
    assert!(
        dm >= de - 1e-9,
        "matching must not trail edge greedy: {dm} vs {de}"
    );
}

#[test]
fn golden_local_search() {
    let problem = synthetic();
    let matroid = UniformMatroid::new(30, 5);
    let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    assert!(r.converged);
    let mut s = r.set.clone();
    s.sort_unstable();
    // Local optimum is deterministic given the instance and pivot rule.
    assert_eq!(s.len(), 5);
    let recomputed = problem.objective(&r.set);
    assert!((r.objective - recomputed).abs() < 1e-9);
}

#[test]
fn golden_exact() {
    let problem = synthetic();
    let r = exact_max_diversification(&problem, 4);
    let mut s = r.set;
    s.sort_unstable();
    assert_eq!(s, vec![15, 19, 26, 28]);
    assert!(
        (r.objective - 5.527630).abs() < 1e-5,
        "OPT drifted: {}",
        r.objective
    );
}

#[test]
fn golden_streaming() {
    let problem = synthetic();
    let order: Vec<ElementId> = (0..30).collect();
    let s = stream_diversify(&problem, &order, 5);
    assert_eq!(s.len(), 5);
    let val = problem.objective(&s);
    assert!((val - 7.587367).abs() < 1e-5, "stream value drifted: {val}");
}

#[test]
fn golden_letor_generator() {
    // The corpus statistics the LETOR tables depend on.
    let q = LetorConfig::default().generate(4, 0);
    assert_eq!(q.len(), 1000);
    let top = q.top_k_indices(50);
    let grades: Vec<u8> = top.iter().map(|&i| q.relevance[i]).collect();
    assert_eq!(grades[0], 5, "top document grade");
    assert_eq!(grades[49], 2, "50th document grade");
    let total: u32 = q.relevance.iter().map(|&r| u32::from(r)).sum();
    assert_eq!(
        total, 400,
        "relevance mass drifted — regenerate golden values"
    );
}

#[test]
fn golden_fig1_single_point() {
    // One deterministic dynamic run (the Figure 1 engine distilled).
    let problem = SyntheticConfig { n: 20, lambda: 0.2 }.generate(777);
    let init = greedy_b(&problem, 4, GreedyBConfig::default());
    let mut d = DynamicInstance::new(problem, &init);
    d.apply(Perturbation::SetWeight { u: 7, value: 0.95 });
    let out = d.oblivious_update();
    let opt = exact_max_diversification(d.problem(), 4);
    let ratio = opt.objective / d.objective();
    assert!(ratio < 1.2, "single-step maintained ratio drifted: {ratio}");
    // If the rule swapped, the incoming element must now be selected.
    if let Some((_, incoming)) = out.swap {
        assert!(d.solution().contains(&incoming));
    }
}
