//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! Implements exactly the surface this workspace uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng`] with `seed_from_u64`,
//! [`rngs::StdRng`] (xoshiro256++ behind the scenes) and
//! [`seq::SliceRandom::shuffle`]. Deterministic across platforms.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` via splitmix64 expansion (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly "at standard" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                // Plain modulo mapping: the ranges this workspace samples
                // are tiny relative to 2^64, so modulo bias is far below
                // observable levels.
                let offset = rng.next_u64() % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (f64::sample(rng) as f32) * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

/// User-facing generator methods (blanket-implemented for all cores).
pub trait Rng: RngCore {
    /// Uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (not the upstream
    /// ChaCha12 — streams differ from real `rand`, but all workspace uses
    /// only require determinism under a seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state (the only invalid xoshiro state).
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-0.4..0.4);
            assert!((-0.4..0.4).contains(&f));
            let u: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
        assert!(v.choose(&mut rng).is_some());
    }
}
