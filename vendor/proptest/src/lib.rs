//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` inner attribute, range strategies
//! over the primitive numeric types, tuple strategies, nested
//! [`prop::collection::vec`] strategies, and the `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (stable across runs and
//! machines), there is no shrinking (the failure report includes the case
//! number and generated values are printed by the assertion message), and
//! rejected cases ([`prop_assume!`]) are simply skipped without a retry
//! budget.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Test-runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Result alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic per-test source of randomness.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner seeded from the test's name (deterministic).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable, platform-independent seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Uniform choice among boxed strategies (output of [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds from pre-boxed arms.
    pub fn from_arms(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        let idx = runner.rng().gen_range(0..self.arms.len());
        self.arms[idx].generate(runner)
    }
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::from_arms(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(runner),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Collection-size specification: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRunner};
    use rand::Rng as _;

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Namespace mirror (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Map, ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-harness macro. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..100, v in prop::collection::vec(0.0f64..1.0, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `fn` in the block into a looping `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut ran: u32 = 0;
            let mut case: u64 = 0;
            // Cap total draws so a too-strong prop_assume! cannot loop
            // forever: allow up to 10x rejections.
            while ran < cfg.cases && case < u64::from(cfg.cases) * 10 {
                case += 1;
                let outcome: $crate::TestCaseResult = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            n in 2usize..20,
            xs in prop::collection::vec(0.0f64..1.0, 3..10),
            pairs in prop::collection::vec((0u32..5, 0.0f64..2.0), 4),
        ) {
            prop_assert!((2..20).contains(&n));
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
            prop_assert_eq!(pairs.len(), 4);
            for (a, b) in pairs {
                prop_assert!(a < 5);
                prop_assert!((0.0..2.0).contains(&b));
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_runner() {
        let mut a = crate::TestRunner::deterministic("x");
        let mut b = crate::TestRunner::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
