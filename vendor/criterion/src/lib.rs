//! Offline stand-in for the `criterion` crate (API-compatible subset).
//!
//! Provides [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `bench_with_input` / `bench_function`, `Bencher::iter` /
//! `Bencher::iter_batched`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is adaptive wall-clock measurement
//! (warm-up, then enough iterations to fill a small measurement window)
//! reporting mean and standard deviation; recorded results are exposed via
//! [`Criterion::take_records`] so JSON-emitting benches can persist them.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier `function_name/parameter` for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare function id without a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self { name: s.clone() }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored: every batch is
/// one routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Per-iteration state of unknown size.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// `group/function/parameter` path.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Population standard deviation of the per-sample means (ns).
    pub stddev_ns: f64,
    /// Total measured iterations.
    pub iterations: u64,
}

/// Timing driver handed to the closures.
pub struct Bencher {
    samples: usize,
    target: Duration,
    record: Option<BenchRecord>,
    id: String,
}

impl Bencher {
    /// Measures `routine` adaptively.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: one call, timed.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));

        // Choose per-sample iteration count to fill target/samples.
        let per_sample = (self.target.as_nanos() / self.samples as u128 / once.as_nanos())
            .clamp(1, 1_000_000) as u64;
        let mut means = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let dt = t.elapsed();
            total_iters += per_sample;
            means.push(dt.as_nanos() as f64 / per_sample as f64);
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / means.len() as f64;
        self.record = Some(BenchRecord {
            id: self.id.clone(),
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            iterations: total_iters,
        });
    }

    /// Measures `routine` over fresh inputs from `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let t0 = Instant::now();
        let input = setup();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (self.target.as_nanos() / self.samples as u128 / once.as_nanos())
            .clamp(1, 100_000) as u64;
        let mut means = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let dt = t.elapsed();
            total_iters += per_sample;
            means.push(dt.as_nanos() as f64 / per_sample as f64);
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / means.len() as f64;
        self.record = Some(BenchRecord {
            id: self.id.clone(),
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            iterations: total_iters,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    target: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target = d;
        self
    }

    /// Throughput hint (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), input, f);
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), &(), move |b, ()| f(b));
        self
    }

    fn run<I: ?Sized>(&mut self, id: BenchmarkId, input: &I, mut f: impl FnMut(&mut Bencher, &I)) {
        let full = format!("{}/{}", self.name, id.name);
        let mut bencher = Bencher {
            samples: self.samples,
            target: self.target,
            record: None,
            id: full.clone(),
        };
        f(&mut bencher, input);
        match bencher.record.take() {
            Some(r) => {
                println!(
                    "bench {:<48} {:>12.1} ns/iter (± {:.1}, {} iters)",
                    r.id, r.mean_ns, r.stddev_ns, r.iterations
                );
                self.criterion.records.push(r);
            }
            None => println!("bench {full:<48} (no measurement recorded)"),
        }
    }

    /// Ends the group (criterion-compatible no-op).
    pub fn finish(&mut self) {}
}

/// Throughput hint (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    records: Vec<BenchRecord>,
    samples: usize,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the default window small: these benches run in CI smoke
        // jobs; raise per-group via `measurement_time` when precision
        // matters.
        Self {
            records: Vec::new(),
            samples: 10,
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (samples, target) = (self.samples, self.target);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
            target,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Criterion-compatible configuration knob (applies to later groups).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Criterion-compatible configuration knob (applies to later groups).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target = d;
        self
    }

    /// Criterion-compatible finalizer (prints a summary count).
    pub fn final_summary(&mut self) {
        println!("completed {} benchmarks", self.records.len());
    }

    /// Drains all recorded measurements (for JSON emission).
    pub fn take_records(&mut self) -> Vec<BenchRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn records_measurements() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        let records = c.take_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "g/sum/100");
        assert!(records[0].mean_ns > 0.0);
        assert!(records[0].iterations >= 3);
        assert_eq!(records[1].id, "g/batched");
        assert!(c.take_records().is_empty());
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_compiles_and_runs() {
        benches();
    }
}
