//! Quickstart: the 60-second tour of the public API.
//!
//! Builds a small instance, runs Theorem 1's greedy, the matroid local
//! search and the exact solver, and prints the objective breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use max_sum_diversification::prelude::*;

fn main() {
    // 1. A ground set: 12 points on a circle, with quality decaying in the
    //    index (think: search results ranked by relevance).
    let n = 12usize;
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            Point::new(vec![angle.cos(), angle.sin()])
        })
        .collect();
    let metric = DistanceMatrix::from_points(&points, |a, b| a.euclidean(b));
    let quality = ModularFunction::new((0..n).map(|i| 1.0 / (1.0 + i as f64)).collect::<Vec<_>>());

    // 2. The max-sum diversification problem: φ(S) = f(S) + λ·Σ d(u,v).
    let problem = DiversificationProblem::new(metric, quality, 0.4);

    // 3. Theorem 1's greedy under a cardinality constraint.
    let p = 4;
    let greedy = greedy_b(&problem, p, GreedyBConfig::default());
    println!("greedy B picks      : {greedy:?}");
    println!(
        "  objective = {:.4} (quality {:.4} + λ·dispersion {:.4})",
        problem.objective(&greedy),
        problem.quality_value(&greedy),
        problem.lambda() * problem.dispersion(&greedy),
    );

    // 4. The same problem under a partition matroid: at most 2 picks from
    //    the "top half" ranks and 2 from the rest (Theorem 2 local search).
    let blocks: Vec<u32> = (0..n as u32).map(|u| if u < 6 { 0 } else { 1 }).collect();
    let matroid = PartitionMatroid::new(blocks, vec![2, 2]);
    let ls = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    println!("local search (matroid, ≤2 per block): {:?}", ls.set);
    println!("  objective = {:.4} after {} swaps", ls.objective, ls.swaps);

    // 5. Ground truth for this small instance.
    let opt = exact_max_diversification(&problem, p);
    println!("exact optimum       : {:?}", opt.set);
    println!(
        "  objective = {:.4}  → greedy is a {:.3}-approximation here (guarantee: 2)",
        opt.objective,
        opt.objective / problem.objective(&greedy),
    );
}
