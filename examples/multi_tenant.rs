//! Serving many users over one corpus — without cloning it per user.
//!
//! The paper frames max-sum diversification as a query-time problem:
//! many users query the *same* corpus with their own trade-off `λ` and
//! their own stream of distance/weight rewrites (personalization,
//! feedback, staleness corrections). A [`DynamicSession`] per user used
//! to mean a full metric clone per user — `k·O(n²)` resident memory.
//!
//! [`ServingFrontend`] shares the corpus instead: every tenant session
//! reads one immutable `Arc<DistanceMatrix>` through a private
//! copy-on-write overlay, so a tenant's rewrites land in its own sparse
//! side table — never the shared base, never another tenant — and the
//! fleet costs `O(n²) + k·O(Δ)` where `Δ` is the handful of pairs a
//! tenant actually rewrote. Perturbations submitted between a tenant's
//! queries coalesce into a single batch repair at the next query.
//!
//! The run drives three tenants with conflicting rewrites of the same
//! document pair and prints each tenant's maintained selection, the
//! per-tenant overlay sizes, and proof the shared base never moved.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use max_sum_diversification::prelude::*;

/// Deterministic pseudo-random stream (keeps the example dependency-free
/// and its output reproducible).
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

const N: usize = 400;
const P: usize = 8;

fn main() {
    // One shared corpus: 400 documents, distances in [1, 2).
    let mut rng = XorShift(0xD1CE);
    let base = Arc::new(DistanceMatrix::from_fn(N, |_, _| 1.0 + rng.next_f64()));
    let quality = ModularFunction::new((0..N).map(|_| rng.next_f64()).collect::<Vec<_>>());

    // Every tenant starts from Greedy B's solution for its own λ.
    let mut frontend = ServingFrontend::new(Arc::clone(&base));
    let mut tenants = Vec::new();
    for &lambda in &[0.1, 0.3, 1.0] {
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, lambda);
        let init = greedy_b(&problem, P, GreedyBConfig::default());
        tenants.push((frontend.register_tenant(&quality, lambda, &init), lambda));
    }

    let probe = (3u32, 7u32);
    let original = base.distance(probe.0, probe.1);
    println!(
        "shared base: n = {N}, d({}, {}) = {original:.4}\n",
        probe.0, probe.1
    );

    // Conflicting rewrites of the same pair: each tenant sees its own
    // value; the base and the other tenants never do.
    for (i, &(tenant, _)) in tenants.iter().enumerate() {
        frontend.submit(
            tenant,
            SessionPerturbation::SetDistance {
                u: probe.0,
                v: probe.1,
                value: 0.5 + i as f64,
            },
        );
        // Plus a private weight update per tenant.
        frontend.submit(
            tenant,
            SessionPerturbation::SetWeight {
                u: (40 * (i + 1)) as ElementId,
                value: 3.0,
            },
        );
    }

    for &(tenant, lambda) in &tenants {
        let response = frontend.query(tenant);
        let stats = frontend.stats(tenant);
        println!(
            "tenant {tenant} (λ = {lambda}): flushed {} perturbations in one batch, \
             {} swap(s), φ(S) = {:.3}",
            response.flushed, response.swaps, response.objective
        );
        println!("  selection: {:?}", response.solution);
        println!(
            "  overlay: {} rewritten pair(s); sees d({}, {}) = {:.4}",
            frontend.session(tenant).metric().override_count(),
            probe.0,
            probe.1,
            frontend.session(tenant).metric().distance(probe.0, probe.1),
        );
        println!(
            "  stats: {} queries, {} perturbations, {} batches",
            stats.queries, stats.perturbations, stats.batches
        );
    }

    assert_eq!(base.distance(probe.0, probe.1), original);
    println!(
        "\nshared base unchanged: d({}, {}) = {:.4}",
        probe.0,
        probe.1,
        base.distance(probe.0, probe.1)
    );
    let triangle = N * (N - 1) / 2 * 8;
    println!(
        "resident metric memory: shared ≈ {} KiB + overlays; \
         per-tenant clones would be ≈ {} KiB",
        triangle / 1024,
        3 * triangle / 1024
    );
}
