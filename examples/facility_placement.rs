//! Facility dispersion — the location-theory root of the problem
//! (Section 3): place `p` facilities among candidate sites so that
//! proximity is *undesirable* (franchise outlets, hazardous plants).
//!
//! Pure max-sum dispersion is the `f ≡ 0` special case (Corollary 1), so
//! this example runs the Ravi–Rosenkrantz–Tayi vertex greedy, the Hassin
//! edge greedy and the matching-based algorithm on clustered geography and
//! compares their dispersion.
//!
//! ```sh
//! cargo run --release --example facility_placement
//! ```

use max_sum_diversification::data::clustered::ClusteredConfig;
use max_sum_diversification::prelude::*;

fn main() {
    // 60 candidate sites in 6 towns (clusters) on a 10x10 map.
    let instance = ClusteredConfig {
        n: 60,
        clusters: 6,
        dim: 2,
        spread: 0.35,
        lambda: 1.0,
    }
    .generate(99);
    let metric = instance.problem.metric();
    let p = 6;

    let vertex_greedy = max_sum_dispersion_greedy(metric, p);
    let edge_greedy = hassin_edge_greedy(metric, p);
    let matching = hassin_matching(metric, p);

    println!("placing {p} facilities among {} sites in {} towns\n", 60, 6);
    println!(
        "{:<34} {:>11} {:>14}",
        "algorithm", "dispersion", "towns covered"
    );
    for (name, set) in [
        ("Ravi et al. vertex greedy (ratio 2)", &vertex_greedy),
        ("Hassin et al. edge greedy (ratio 2)", &edge_greedy),
        ("Hassin et al. matching (2 - 1/⌈p/2⌉)", &matching),
    ] {
        let mut towns: Vec<u32> = set.iter().map(|&u| instance.cluster[u as usize]).collect();
        towns.sort_unstable();
        towns.dedup();
        println!(
            "{:<34} {:>11.3} {:>14}",
            name,
            metric.dispersion(set),
            towns.len()
        );
    }

    println!("\nvertex-greedy sites:");
    for &u in &vertex_greedy {
        println!(
            "  site {:>2} in town {} at {:?}",
            u,
            instance.cluster[u as usize],
            instance.points[u as usize].coords()
        );
    }
}
