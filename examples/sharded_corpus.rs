//! Maintaining a diverse selection over a 200 000-document corpus —
//! past the `n²` memory wall.
//!
//! A dense [`DistanceMatrix`] at `n = 200 000` would need
//! `n(n-1)/2 ≈ 2·10¹⁰` doubles (~160 GB): the classic quadratic wall.
//! This example never materializes it. Documents live as embedding
//! points in an implicit [`PointMetric`] (cosine kernel, `O(n·dim)`
//! memory), and the selection is maintained by the persistent
//! [`ShardedEngine`]: the ground set is partitioned across shards, each
//! shard keeps a live `DynamicSession` (the paper's Section 6 dynamic
//! updates) across perturbation batches, and the two-round distributed
//! greedy's reduce is re-run **incrementally** — only when a shard's
//! proposal set changed or a perturbation touched the proposal union.
//!
//! The run prints per-round merge statistics: how many shards were
//! perturbed, how many turned *dirty* (proposal changed), whether the
//! reduce ran at all, and the reduce scope (union size — the entire
//! re-merge works on ~`machines·p` elements, never on `n`).
//!
//! ```sh
//! cargo run --release --example sharded_corpus
//! ```

use max_sum_diversification::prelude::*;

/// Deterministic pseudo-random stream (keeps the example dependency-free
/// and its output reproducible).
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
    fn next_range(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n
    }
}

fn main() {
    let n = 200_000;
    let dim = 8;
    let p = 24;
    let machines = 16;

    // Implicit embedding corpus: 200k documents, 8-dim, cosine distance.
    // Resident metric state is the coordinate table — 12.8 MB, vs the
    // ~160 GB a dense matrix would take.
    let mut rng = XorShift(0x5EED_CAFE);
    let coords: Vec<f64> = (0..n * dim).map(|_| rng.next_f64()).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let metric = PointMetric::from_flat(PointKernel::Cosine, n, dim, coords);
    let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.4);
    println!(
        "corpus: n = {n}, dim = {dim}; implicit metric resident state {:.1} MB \
         (dense matrix would be {:.0} GB)",
        (n * dim * 8) as f64 / 1e6,
        (n * (n - 1) / 2 * 8) as f64 / 1e9,
    );

    // Build: one-shot distributed greedy (map round per shard) plus one
    // persistent session per shard, then the first merge.
    let t0 = std::time::Instant::now();
    let mut engine = ShardedEngine::new(
        &problem,
        p,
        ShardedConfig {
            machines,
            scheme: PartitionScheme::RoundRobin,
            greedy: GreedyBConfig::default(),
            max_updates: 256,
        },
    );
    println!(
        "engine up in {:.2?}: {} shards, merged |S| = {}, objective {:.3}, reduce_won = {}\n",
        t0.elapsed(),
        engine.shards(),
        engine.solution().len(),
        engine.objective(),
        engine.reduce_won(),
    );

    // The perturbation stream interleaves two realistic regimes. *Hot*
    // rounds rewrite weights/distances of current proposals (rankings
    // shift, documents get re-scored) — these dirty shards and force
    // re-merges. *Background* rounds are bulk churn: re-scores and
    // similarity tweaks of rank-and-file documents too weak to displace
    // any proposal — the engine proves the merge redundant and skips the
    // reduce outright (the `skip` rows below do zero merge work).
    println!("round  perturbed  dirty  reduce  scope  swaps  objective");
    for round in 0..12 {
        let union = engine.union().to_vec();
        let hot_round = round % 3 == 0;
        let batch: Vec<SessionPerturbation> = (0..24)
            .map(|_| {
                if hot_round && !union.is_empty() && rng.next_range(2) == 0 {
                    let u = union[rng.next_range(union.len())];
                    if rng.next_range(2) == 0 {
                        SessionPerturbation::SetWeight {
                            u,
                            value: rng.next_f64(),
                        }
                    } else {
                        let mut v = rng.next_range(n) as ElementId;
                        while v == u {
                            v = rng.next_range(n) as ElementId;
                        }
                        SessionPerturbation::SetDistance {
                            u,
                            v,
                            value: 0.25 + rng.next_f64(),
                        }
                    }
                } else if rng.next_range(10) < 7 {
                    // Background re-score: weights low enough that no
                    // outsider overtakes a maintained proposal.
                    SessionPerturbation::SetWeight {
                        u: rng.next_range(n) as ElementId,
                        value: 0.3 * rng.next_f64(),
                    }
                } else {
                    // Background similarity tweak: pull a random pair
                    // *closer* — shrinking gains never breaks stability.
                    let u = rng.next_range(n) as ElementId;
                    let mut v = rng.next_range(n) as ElementId;
                    while v == u {
                        v = rng.next_range(n) as ElementId;
                    }
                    SessionPerturbation::SetDistance {
                        u,
                        v,
                        value: 0.01 + 0.04 * rng.next_f64(),
                    }
                }
            })
            .collect();
        let report = engine.apply_batch(&batch);
        println!(
            "{round:>5}  {:>9}  {:>5}  {:>6}  {:>5}  {:>5}  {:.3}",
            report.perturbed_shards,
            report.dirty_shards.len(),
            if report.reduce_ran { "ran" } else { "skip" },
            report.reduce_scope,
            report.swaps,
            report.objective,
        );
    }

    let stats = engine.stats();
    println!(
        "\nmerge stats: {} rounds, {} reduce runs (incl. build) — \
         {} rounds merged with zero reduce work; last scope {} of n = {n}",
        stats.rounds,
        stats.reduce_runs,
        stats.rounds - (stats.reduce_runs - 1),
        stats.last_reduce_scope,
    );
}
