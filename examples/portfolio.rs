//! Stock-portfolio selection — the paper's Section 1 finance scenario.
//!
//! "In the stock portfolio example, we might wish to have a balance of
//! stocks in terms of say risk and profit profiles (using some statistical
//! measure of distances) while using a submodular quality function to
//! reflect a user's submodular utility for profit and using a partition
//! matroid to insure that different sectors of the economy are well
//! represented."
//!
//! This example builds exactly that: stocks embedded by (risk, growth,
//! yield) statistics, a concave-over-modular utility (diminishing returns
//! on expected profit), a sector partition matroid truncated to a total
//! budget, and Theorem 2's local search.
//!
//! ```sh
//! cargo run --release --example portfolio
//! ```

use max_sum_diversification::matroid::TruncatedMatroid;
use max_sum_diversification::prelude::*;
use max_sum_diversification::submodular::mixture::MixtureFunction;

const SECTORS: [&str; 4] = ["tech", "energy", "health", "finance"];

fn main() {
    // 24 synthetic stocks, 6 per sector: (risk, growth, yield) profiles.
    let mut names = Vec::new();
    let mut profiles = Vec::new();
    let mut expected_profit = Vec::new();
    let mut sector_of = Vec::new();
    for (s, sector) in SECTORS.iter().enumerate() {
        for i in 0..6 {
            names.push(format!("{sector}-{i}"));
            // Deterministic but varied profiles.
            let risk = 0.2 + 0.13 * ((i + s) % 5) as f64;
            let growth = 0.1 + 0.17 * ((2 * i + s) % 5) as f64;
            let yield_ = 0.05 + 0.11 * ((i + 3 * s) % 5) as f64;
            profiles.push(Point::new(vec![risk, growth, yield_]));
            expected_profit.push(2.0 * growth + yield_);
            sector_of.push(s as u32);
        }
    }
    let n = names.len();

    // Distance: Euclidean between risk/return profiles.
    let metric = DistanceMatrix::from_points(&profiles, |a, b| a.euclidean(b));

    // Quality: diminishing-returns utility over expected profit, plus a
    // small modular term so individual profit still matters.
    let utility = MixtureFunction::new(n)
        .with(
            1.0,
            ConcaveOverModular::new(expected_profit.clone(), ConcaveShape::Sqrt),
        )
        .with(0.25, ModularFunction::new(expected_profit.clone()));

    let problem = DiversificationProblem::new(metric, utility, 0.8);

    // Constraint: at most 3 stocks per sector, at most 8 stocks overall.
    let sector_matroid = PartitionMatroid::new(sector_of.clone(), vec![3, 3, 3, 3]);
    let matroid = TruncatedMatroid::new(sector_matroid, 8);

    let result = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    println!(
        "portfolio (≤3 per sector, ≤8 total), φ = {:.4}\n",
        result.objective
    );
    let mut per_sector = vec![0usize; SECTORS.len()];
    for &e in &result.set {
        per_sector[sector_of[e as usize] as usize] += 1;
        println!(
            "  {:<10} profit={:.2}  profile={:?}",
            names[e as usize],
            expected_profit[e as usize],
            profiles[e as usize].coords(),
        );
    }
    println!();
    for (s, sector) in SECTORS.iter().enumerate() {
        println!("  {sector}: {} holdings", per_sector[s]);
    }
    assert!(
        per_sector.iter().all(|&c| c <= 3) && result.set.len() <= 8,
        "matroid constraint violated"
    );
    println!(
        "\nconverged after {} swaps (guarantee: within 2x of the best feasible portfolio)",
        result.swaps
    );
}
