//! Diverse depot placement on a live road network.
//!
//! The location-theory setting of the paper (Section 3): the metric is
//! *induced* by a network — here a road-like grid with highway shortcuts
//! — and the realistic perturbation is an **edge-weight change** (a road
//! gets congested, a highway reopens), which moves many shortest-path
//! distances at once.
//!
//! The example maintains a set of `p` depots maximizing quality +
//! λ·dispersion through a graph-backed `DynamicSession`: every traffic
//! update flows through `DynamicGraphMetric::set_edge`'s incremental
//! APSP repair (never a Floyd–Warshall rebuild), its changed pairs are
//! patched into the session's gain caches in O(Δ), and one oblivious
//! swap keeps the placement locally optimal.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use max_sum_diversification::data::graphs::road_like;
use max_sum_diversification::prelude::*;

fn main() {
    let n = 400;
    let p = 8;
    let graph = road_like(42, n);
    let metric = DynamicGraphMetric::from_graph(&graph).expect("road grids are connected");
    println!(
        "road network: {} junctions, {} road segments, APSP materialized",
        n,
        metric.num_edges()
    );

    // Depot quality: a deterministic "demand" score per junction.
    let weights: Vec<f64> = (0..n)
        .map(|i| 0.5 + 0.5 * ((i as f64 * 0.7173).sin().abs()))
        .collect();
    let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.05);
    let init = greedy_b(&problem, p, GreedyBConfig::default());
    let mut session = DynamicSession::new(&problem, &init);
    session.update_until_stable(4 * p);
    println!(
        "initial depots {:?}  objective {:.2}\n",
        session.solution(),
        session.objective()
    );

    // Rush hour: a burst of congestion updates on the depots' access
    // roads, ingested as one batch (at most one swap scan), then
    // stabilized.
    let edges = problem.metric().edges();
    let burst: Vec<GraphPerturbation> = edges
        .iter()
        .filter(|&&(u, v, _)| session.contains(u) || session.contains(v))
        .take(12)
        .map(|&(u, v, w)| GraphPerturbation::SetEdge {
            u,
            v,
            weight: w * 4.0,
        })
        .collect();
    let report = session
        .apply_graph_batch(&burst)
        .expect("congestion never disconnects");
    session.update_until_stable(4 * p);
    println!(
        "rush hour: {} edge updates ingested, scan extent {:?}, swap {:?}",
        report.ingested, report.scan, report.outcome.swap
    );
    println!(
        "depots now {:?}  objective {:.2}\n",
        session.solution(),
        session.objective()
    );

    // A highway reopens across the map: one big decrease, repaired
    // incrementally; the report tells exactly how many distances moved.
    let (hu, hv) = (3u32, (n - 7) as u32);
    let before = session.metric().matrix().mean_distance();
    let update = session
        .apply_graph(GraphPerturbation::SetEdge {
            u: hu,
            v: hv,
            weight: 0.25,
        })
        .expect("adding a road never disconnects");
    session.update_until_stable(4 * p);
    println!(
        "highway {hu}-{hv} opened: mean distance {:.3} -> {:.3}, scan {:?}",
        before,
        session.metric().matrix().mean_distance(),
        update.scan
    );
    println!(
        "final depots {:?}  objective {:.2}",
        session.solution(),
        session.objective()
    );
}
