//! Dynamic updates on a drifting news corpus — the Section 6 machinery in
//! an application loop.
//!
//! A front page of `p` stories is maintained while story weights (breaking
//! news rises, stale news decays) and pairwise distances (stories converge
//! as they cover the same event) change. Each change is followed by at
//! most one oblivious swap (Theorems 3–6 justify why one is enough), and
//! the page's quality is tracked against the exact optimum.
//!
//! ```sh
//! cargo run --release --example news_stream
//! ```

use max_sum_diversification::data::synthetic::SyntheticConfig;
use max_sum_diversification::prelude::*;

fn main() {
    let n = 40;
    let p = 5;
    let problem = SyntheticConfig { n, lambda: 0.3 }.generate(7);

    // Initial front page from Theorem 1's greedy (a 2-approximation).
    let initial = greedy_b(&problem, p, GreedyBConfig::default());
    let mut board = DynamicInstance::new(problem, &initial);
    println!(
        "initial front page: {:?} (φ = {:.3})\n",
        board.solution(),
        board.objective()
    );

    // A scripted evening of news. Each event is (description, perturbation).
    let events: Vec<(&str, Perturbation)> = vec![
        (
            "story 17 breaks out",
            Perturbation::SetWeight { u: 17, value: 0.99 },
        ),
        (
            "story 3 goes stale",
            Perturbation::SetWeight { u: 3, value: 0.05 },
        ),
        (
            "stories 17 & 21 converge",
            Perturbation::SetDistance {
                u: 17,
                v: 21,
                value: 1.02,
            },
        ),
        (
            "story 8 gets an exclusive",
            Perturbation::SetWeight { u: 8, value: 0.97 },
        ),
        (
            "stories 0 & 5 diverge",
            Perturbation::SetDistance {
                u: 0,
                v: 5,
                value: 1.98,
            },
        ),
        (
            "story 17 correction issued",
            Perturbation::SetWeight { u: 17, value: 0.40 },
        ),
    ];

    println!(
        "{:<28} {:>6} {:>9} {:>9} {:>7}",
        "event", "swap", "φ(S)", "OPT", "ratio"
    );
    for (desc, event) in events {
        board.apply(event);
        let outcome = board.oblivious_update();
        let opt = exact_max_diversification(board.problem(), p);
        let ratio = opt.objective / board.objective();
        let swap = match outcome.swap {
            Some((out, into)) => format!("{out}→{into}"),
            None => "-".to_string(),
        };
        println!(
            "{desc:<28} {swap:>6} {:>9.3} {:>9.3} {ratio:>7.3}",
            board.objective(),
            opt.objective,
        );
        assert!(ratio <= 3.0 + 1e-9, "maintained ratio must stay within 3");
    }
    println!("\nfinal front page: {:?}", board.solution());
    println!("(Theorems 3–6: one swap per bounded change keeps the page within 3x of optimal)");
}
