//! Budgeted ad slotting — the knapsack extension (conclusion's open
//! question) plus streaming arrival, on one instance.
//!
//! An ad exchange picks a diverse, high-quality slate of creatives under a
//! spend budget: each creative has a bid quality, a cost, and an embedding
//! whose pairwise distances measure audience overlap. Two regimes:
//!
//! 1. **offline knapsack** — the partial-enumeration greedy of
//!    `msd-core::knapsack`;
//! 2. **streaming** — creatives arrive one at a time and the slate is
//!    maintained with one swap per arrival, then polished with local
//!    search.
//!
//! ```sh
//! cargo run --release --example budgeted_ads
//! ```

use max_sum_diversification::core::knapsack::{knapsack_diversify, KnapsackConfig};
use max_sum_diversification::core::streaming::StreamingDiversifier;
use max_sum_diversification::prelude::*;

fn main() {
    // 30 creatives in 5 audience segments.
    let n = 30usize;
    let segments = 5usize;
    let mut embeddings = Vec::with_capacity(n);
    let mut quality = Vec::with_capacity(n);
    let mut costs = Vec::with_capacity(n);
    for i in 0..n {
        let seg = i % segments;
        let angle = 2.0 * std::f64::consts::PI * seg as f64 / segments as f64;
        let jitter = (i / segments) as f64 * 0.07;
        embeddings.push(Point::new(vec![angle.cos() + jitter, angle.sin() - jitter]));
        quality.push(0.4 + 0.6 * ((i * 7) % 10) as f64 / 10.0);
        costs.push(0.5 + ((i * 3) % 4) as f64 * 0.5);
    }
    let metric = DistanceMatrix::from_points(&embeddings, |a, b| a.euclidean(b));
    let problem = DiversificationProblem::new(metric, ModularFunction::new(quality), 0.6);
    let budget = 6.0;

    // Offline: knapsack partial-enumeration greedy.
    let offline = knapsack_diversify(&problem, &costs, budget, KnapsackConfig::default());
    println!("offline knapsack slate (budget {budget}):");
    print_slate(&problem, &costs, &offline.set);
    println!(
        "  φ = {:.3}, spend = {:.2}\n",
        offline.objective, offline.cost
    );

    // Streaming: fixed slate size chosen from the offline solve, one swap
    // per arriving creative, then LS polish.
    let p = offline.set.len().max(1);
    let mut stream = StreamingDiversifier::new(p);
    for e in 0..n as u32 {
        stream.offer(&problem, e);
    }
    let streamed = stream.finish();
    let polished = local_search_refine(&problem, &streamed, LocalSearchConfig::default());
    println!("streaming slate (p = {p}, one swap per arrival, then LS polish):");
    print_slate(&problem, &costs, &polished.set);
    println!(
        "  φ = {:.3}  (raw stream φ = {:.3})",
        polished.objective,
        problem.objective(&streamed)
    );
    println!(
        "\nnote: the streaming regime ignores costs (fixed slate size); the knapsack \
         regime ignores arrival order — together they bracket the online problem."
    );
}

fn print_slate(
    problem: &DiversificationProblem<DistanceMatrix, ModularFunction>,
    costs: &[f64],
    set: &[ElementId],
) {
    for &e in set {
        println!(
            "  creative {:>2}  quality={:.2} cost={:.2}",
            e,
            problem.quality().weight(e),
            costs[e as usize]
        );
    }
}
