//! Search-result diversification on a simulated LETOR query — the paper's
//! Section 7.2 scenario as an application.
//!
//! Reranks the top-50 documents of a query so the first page balances
//! relevance (graded 0–5) against redundancy (cosine distance between
//! feature vectors), comparing plain relevance ranking, MMR, Greedy A and
//! Greedy B.
//!
//! ```sh
//! cargo run --release --example search_results
//! ```

use max_sum_diversification::data::{LetorConfig, LetorQuery};
use max_sum_diversification::prelude::*;

fn main() {
    // A simulated query pool: 500 docs, 46 features, 8 latent topics.
    let query: LetorQuery = LetorConfig {
        docs_per_query: 500,
        ..LetorConfig::default()
    }
    .generate(2024, 42);
    let (problem, doc_ids) = query.top_k(50);
    let p = 10;

    // Baseline 1: pure relevance ranking (top-p by grade).
    let by_relevance: Vec<ElementId> = (0..p as u32).collect();

    // Baseline 2: MMR with the classic 0.7 relevance bias.
    let relevance: Vec<f64> = (0..50u32).map(|e| problem.quality().weight(e)).collect();
    let mmr = mmr_select(
        problem.metric(),
        &relevance,
        p,
        MmrConfig { trade_off: 0.7 },
    );

    // The paper's algorithms.
    let a = greedy_a(&problem, p, GreedyAConfig::default());
    let b = greedy_b(&problem, p, GreedyBConfig::default());

    println!(
        "query {} — reranking top-50 into a page of {p}\n",
        query.query_id
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "method", "objective", "relevance", "dispersion"
    );
    for (name, set) in [
        ("relevance ranking", &by_relevance),
        ("MMR (λ=0.7)", &mmr),
        ("Greedy A (GS 2009)", &a),
        ("Greedy B (Theorem 1)", &b),
    ] {
        println!(
            "{:<22} {:>10.3} {:>10.1} {:>10.3}",
            name,
            problem.objective(set),
            problem.quality_value(set),
            problem.dispersion(set),
        );
    }

    println!(
        "\nGreedy B's page (document ids): {:?}",
        to_docs(&b, &doc_ids)
    );
    println!(
        "relevance-only page           : {:?}",
        to_docs(&by_relevance, &doc_ids)
    );
}

fn to_docs(set: &[ElementId], doc_ids: &[usize]) -> Vec<usize> {
    set.iter().map(|&e| doc_ids[e as usize]).collect()
}
