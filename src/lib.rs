//! # max-sum-diversification
//!
//! A complete Rust implementation of **Borodin, Jain, Lee and Ye,
//! *"Max-Sum Diversification, Monotone Submodular Functions and Dynamic
//! Updates"*** (PODS 2012; extended version arXiv:1203.6397).
//!
//! Given a ground set with a metric distance `d`, a normalized monotone
//! submodular quality function `f` and a trade-off `λ ≥ 0`, the library
//! maximizes
//!
//! ```text
//! φ(S) = f(S) + λ · Σ_{ {u,v} ⊆ S } d(u, v)
//! ```
//!
//! under a cardinality or arbitrary matroid constraint, with the paper's
//! guarantees:
//!
//! * [`core::greedy_b`] — 2-approximation greedy for `|S| = p` (Theorem 1);
//! * [`core::local_search_matroid`] — 2-approximation local search for any
//!   matroid (Theorem 2);
//! * [`core::DynamicInstance`] — ratio-3 maintenance under weight/distance
//!   perturbations with single oblivious swaps (Theorems 3–6);
//! * baselines: Gollapudi–Sharma ([`core::greedy_a`]), Hassin et al.
//!   dispersion algorithms, MMR, and exact branch-and-bound.
//!
//! # Quickstart
//!
//! ```
//! use max_sum_diversification::prelude::*;
//!
//! // Ten points on a line; quality favours low indices.
//! let positions: Vec<f64> = (0..10).map(|i| i as f64).collect();
//! let metric = DistanceMatrix::from_points(&positions, |a, b| (a - b).abs());
//! let quality = ModularFunction::new((0..10).map(|i| 1.0 / (1.0 + i as f64)).collect::<Vec<_>>());
//! let problem = DiversificationProblem::new(metric, quality, 0.5);
//!
//! // Pick 3 results balancing quality and diversity (Theorem 1 greedy).
//! let picks = greedy_b(&problem, 3, GreedyBConfig::default());
//! assert_eq!(picks.len(), 3);
//! assert!(2.0 * problem.objective(&picks)
//!     >= exact_max_diversification(&problem, 3).objective);
//! ```
//!
//! The workspace is organized as one crate per subsystem, re-exported
//! here: [`metric`], [`submodular`], [`matroid`], [`core`], [`data`].
//! See `DESIGN.md` for the full inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use msd_core as core;
pub use msd_data as data;
pub use msd_matroid as matroid;
pub use msd_metric as metric;
pub use msd_submodular as submodular;

/// Convenient glob-import surface covering the common workflow: build a
/// metric + quality function, wrap them in a problem, run an algorithm.
pub mod prelude {
    #[cfg(feature = "parallel")]
    pub use msd_core::ScanPool;
    pub use msd_core::{
        distributed_greedy, exact_max_diversification, greedy_a, greedy_b, hassin_edge_greedy,
        hassin_matching, knapsack_diversify, local_search_matroid, local_search_refine,
        max_sum_dispersion_greedy, mmr_select, oblivious_update_step_knapsack,
        oblivious_update_step_matroid, stream_diversify, AdmissionPolicy, Batch, BatchReport,
        Clock, CompactStreamingSession, ConstraintPolicy, DistributedConfig, DistributedResult,
        DiversificationProblem, DynamicInstance, DynamicSession, ElementId, GraphBatchError,
        GraphPerturbation, GreedyAConfig, GreedyBConfig, KnapsackConfig, LocalSearchConfig,
        MergeStats, MmrConfig, PartitionScheme, Perturbation, PerturbationError, PotentialState,
        QueryResponse, RejectionAudit, ScanExtent, ServingFrontend, ServingRequest,
        SessionCheckpoint, SessionError, SessionPerturbation, ShardedConfig, ShardedEngine,
        ShardedReport, SharedServingFrontend, StreamingDiversifier, StreamingSession, SubmitError,
        SyncServingFrontend, TenantId, TenantSnapshot, TenantStats, TokenBucket, Validation,
    };
    pub use msd_matroid::{
        GraphicMatroid, LaminarMatroid, Matroid, PartitionMatroid, TransversalMatroid,
        TruncatedMatroid, UniformMatroid,
    };
    pub use msd_metric::{
        DistanceMatrix, DynamicGraphMetric, EdgePerturbableMetric, EdgeUpdateError, Metric,
        OverlayMetric, PerturbableMetric, Point, PointKernel, PointMetric, TileCacheStats,
        WeightedGraph,
    };
    pub use msd_submodular::{
        ConcaveOverModular, ConcaveShape, CoverageFunction, FacilityLocationFunction,
        LogDetFunction, MixtureFunction, ModularFunction, SetFunction, SharedModularOracle,
        WeightOverlay,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let metric = DistanceMatrix::from_fn(6, |u, v| f64::from(v.abs_diff(u)));
        let quality = ModularFunction::uniform(6, 1.0);
        let problem = DiversificationProblem::new(metric, quality, 0.3);
        let s = greedy_b(&problem, 3, GreedyBConfig::default());
        assert_eq!(s.len(), 3);
        let matroid = UniformMatroid::new(6, 3);
        let ls = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        assert_eq!(ls.set.len(), 3);
    }
}
