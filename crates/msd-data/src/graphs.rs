//! Synthetic network generators for the graph-metric workloads.
//!
//! The dynamic-graph scenario family (edge-churn bursts through
//! `msd_metric::DynamicGraphMetric`) needs connected sparse graphs with
//! realistic shortest-path structure. Two shapes cover the bench
//! trajectory:
//!
//! * [`road_like`] — a 4-neighbour grid (the classic road-network
//!   approximation: low degree, large diameter, strong locality) with a
//!   few long random shortcuts standing in for highways.
//! * [`clustered_graph`] — dense-ish communities joined by a sparse
//!   bridge ring (small intra-cluster distances, long inter-cluster
//!   detours), the network analogue of the Gaussian-cluster workloads in
//!   [`crate::clustered`].
//!
//! All edge weights are drawn on a **dyadic grid** (multiples of 1/32):
//! shortest-path sums of dyadic weights are exact in `f64`, which makes
//! incremental APSP repair bit-identical to a from-scratch
//! Floyd–Warshall rebuild — the property the dynamic-graph equivalence
//! suite in `msd-bench` pins. Generators are deterministic given a seed.

use msd_metric::WeightedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random dyadic weight in `[0.5, 2.5)` (multiples of 1/32) — the
/// weight grid shared by both generators and by edge *redraws* in the
/// dynamic-graph benches: staying on one dyadic grid keeps every
/// shortest-path sum exact, which the repair-vs-rebuild bit-identity
/// comparisons rely on.
pub fn dyadic_weight(rng: &mut StdRng) -> f64 {
    rng.gen_range(16..80) as f64 / 32.0
}

/// Road-like network: an (approximately square) 4-neighbour grid over
/// `n` vertices in row-major order, every lattice edge present with a
/// random dyadic weight, plus `n / 50` random long-range shortcut edges.
/// Connected for every `n ≥ 1`.
pub fn road_like(seed: u64, n: usize) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    if n < 2 {
        return g;
    }
    let width = (n as f64).sqrt().ceil() as usize;
    for i in 0..n {
        let (r, c) = (i / width, i % width);
        if c + 1 < width && i + 1 < n {
            let w = dyadic_weight(&mut rng);
            g.add_edge(i as u32, (i + 1) as u32, w);
        }
        if (r + 1) * width + c < n {
            let w = dyadic_weight(&mut rng);
            g.add_edge(i as u32, ((r + 1) * width + c) as u32, w);
        }
    }
    // Highways: long-range shortcuts, slightly cheaper per hop.
    for _ in 0..n / 50 {
        let u = rng.gen_range(0..n) as u32;
        let mut v = rng.gen_range(0..n) as u32;
        while v == u {
            v = rng.gen_range(0..n) as u32;
        }
        let w = rng.gen_range(32..96) as f64 / 32.0;
        g.set_edge(u, v, w);
    }
    g
}

/// Clustered network: `clusters` communities of near-equal size, each
/// internally wired as a path (connectivity) plus two random chords per
/// vertex (small diameter inside), with consecutive clusters joined by a
/// single random bridge (ring closure included). Connected for every
/// `n ≥ 1`, `clusters ≥ 1`.
pub fn clustered_graph(seed: u64, n: usize, clusters: usize) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    if n < 2 {
        return g;
    }
    let clusters = clusters.clamp(1, n);
    let bounds: Vec<usize> = (0..=clusters).map(|k| k * n / clusters).collect();
    for k in 0..clusters {
        let (lo, hi) = (bounds[k], bounds[k + 1]);
        if hi - lo < 2 {
            continue;
        }
        // Intra-cluster path + chords.
        for i in lo..hi - 1 {
            let w = dyadic_weight(&mut rng);
            g.add_edge(i as u32, (i + 1) as u32, w);
        }
        for i in lo..hi {
            for _ in 0..2 {
                let j = rng.gen_range(lo..hi);
                if j != i {
                    let w = dyadic_weight(&mut rng);
                    g.set_edge(i as u32, j as u32, w);
                }
            }
        }
    }
    // Bridge ring: consecutive clusters (and the closing pair) joined by
    // one heavier edge each.
    for k in 0..clusters {
        let next = (k + 1) % clusters;
        if next == k {
            break;
        }
        let (alo, ahi) = (bounds[k], bounds[k + 1]);
        let (blo, bhi) = (bounds[next], bounds[next + 1]);
        if alo == ahi || blo == bhi {
            continue;
        }
        let u = rng.gen_range(alo..ahi) as u32;
        let v = rng.gen_range(blo..bhi) as u32;
        if u != v {
            let w = rng.gen_range(96..192) as f64 / 32.0;
            g.set_edge(u, v, w);
        }
    }
    // Degenerate cluster layouts (singleton clusters skipped above) can
    // leave isolated vertices; stitch any leftover to its predecessor so
    // the generator always returns a connected graph.
    let mut degree = vec![0usize; n];
    for &(u, v, _) in g.edges() {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let isolated: Vec<usize> = (1..n).filter(|&i| degree[i] == 0).collect();
    for i in isolated {
        let w = dyadic_weight(&mut rng);
        g.add_edge((i - 1) as u32, i as u32, w);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_metric::DynamicGraphMetric;

    #[test]
    fn road_like_is_connected_and_sparse() {
        for n in [1usize, 2, 5, 49, 50, 100] {
            let g = road_like(7, n);
            assert_eq!(g.len(), n);
            if n >= 2 {
                let metric = DynamicGraphMetric::from_graph(&g)
                    .unwrap_or_else(|e| panic!("road n={n} disconnected: {e}"));
                // Sparse: grid degree ≤ 4 plus shortcuts.
                assert!(metric.num_edges() <= 2 * n + n / 50 + 1);
            }
        }
    }

    #[test]
    fn clustered_is_connected_across_shapes() {
        for (n, k) in [(2usize, 1usize), (12, 3), (30, 5), (64, 4), (40, 40)] {
            let g = clustered_graph(11, n, k);
            DynamicGraphMetric::from_graph(&g)
                .unwrap_or_else(|e| panic!("clustered n={n} k={k} disconnected: {e}"));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = road_like(3, 60);
        let b = road_like(3, 60);
        assert_eq!(a.edges(), b.edges());
        let a = clustered_graph(5, 48, 4);
        let b = clustered_graph(5, 48, 4);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn weights_are_dyadic() {
        for &(_, _, w) in road_like(9, 80).edges() {
            assert_eq!(w, (w * 32.0).round() / 32.0, "weight {w} off the grid");
        }
        for &(_, _, w) in clustered_graph(9, 80, 5).edges() {
            assert_eq!(w, (w * 32.0).round() / 32.0, "weight {w} off the grid");
        }
    }
}
