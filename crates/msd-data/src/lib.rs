//! Dataset substrate: the workloads of the paper's experimental section.
//!
//! * [`synthetic`] — Section 7.1's generator: quality `f(v)` uniform in
//!   `[0, 1]`, distances uniform in `[1, 2]` (always a metric — the same
//!   `{1,2}`-flavoured family the hardness discussion uses).
//! * [`letor`] — a simulated LETOR corpus (Section 7.2). The real LETOR
//!   benchmark is an external download we substitute with a seeded
//!   generator reproducing the statistics the experiments consume:
//!   per-query documents with integer relevance grades 0–5 and
//!   topic-clustered feature vectors in ℝ⁴⁶ compared by cosine distance.
//!   See DESIGN.md §2 for the substitution rationale.
//! * [`clustered`] — Gaussian clusters in low-dimensional Euclidean space,
//!   for the geometric examples and ablations.
//! * [`adversarial`] — worst-case instances: the greedy lower-bound family
//!   and planted-clique-style `{1,2}` metrics from the hardness discussion.
//! * [`graphs`] — connected sparse networks (road-like grids, clustered
//!   communities) with dyadic edge weights, the substrate of the dynamic
//!   graph-metric workloads.
//!
//! All generators are deterministic given a seed (`rand::StdRng`).

pub mod adversarial;
pub mod clustered;
pub mod graphs;
pub mod letor;
pub mod synthetic;

pub use clustered::ClusteredConfig;
pub use graphs::{clustered_graph, dyadic_weight, road_like};
pub use letor::{LetorConfig, LetorQuery};
pub use synthetic::SyntheticConfig;

/// Identifier of a ground-set element (shared across the workspace).
pub type ElementId = u32;
