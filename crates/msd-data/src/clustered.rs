//! Gaussian-cluster Euclidean instances.
//!
//! Geometric workloads for the examples (facility placement) and ablation
//! benches: points drawn from `k` Gaussian blobs in `ℝ^dim`, quality
//! proportional to a per-point score, distance Euclidean. Diversification
//! should pick across blobs; that intuition is asserted in tests.

use msd_core::DiversificationProblem;
use msd_metric::{DistanceMatrix, Point};
use msd_submodular::ModularFunction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the clustered generator.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredConfig {
    /// Number of points.
    pub n: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Cluster standard deviation (cluster centers live in `[0, 10]^dim`).
    pub spread: f64,
    /// Trade-off λ for the built problem.
    pub lambda: f64,
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        Self {
            n: 100,
            clusters: 5,
            dim: 2,
            spread: 0.3,
            lambda: 1.0,
        }
    }
}

/// A generated clustered instance.
#[derive(Debug, Clone)]
pub struct ClusteredInstance {
    /// The diversification problem (Euclidean metric, modular quality).
    pub problem: DiversificationProblem<DistanceMatrix, ModularFunction>,
    /// The raw points.
    pub points: Vec<Point>,
    /// Cluster assignment of each point.
    pub cluster: Vec<u32>,
}

impl ClusteredConfig {
    /// Generates an instance deterministically from `seed`.
    ///
    /// Quality weights are uniform in `[0, 1]`, independent of geometry.
    pub fn generate(&self, seed: u64) -> ClusteredInstance {
        assert!(self.clusters >= 1, "need at least one cluster");
        assert!(self.dim >= 1, "need at least one dimension");
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| (0..self.dim).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let mut points = Vec::with_capacity(self.n);
        let mut cluster = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let c = rng.gen_range(0..self.clusters);
            cluster.push(c as u32);
            // Box-Muller pairs for Gaussian jitter.
            let coords: Vec<f64> = centers[c]
                .iter()
                .map(|&center| {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    center + self.spread * z
                })
                .collect();
            points.push(Point::new(coords));
        }
        let metric = DistanceMatrix::from_points(&points, |a, b| a.euclidean(b));
        let weights: Vec<f64> = (0..self.n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let problem =
            DiversificationProblem::new(metric, ModularFunction::new(weights), self.lambda);
        ClusteredInstance {
            problem,
            points,
            cluster,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_core::{greedy_b, GreedyBConfig};
    use msd_metric::{Metric, MetricAudit};

    #[test]
    fn generates_requested_shape() {
        let inst = ClusteredConfig {
            n: 40,
            clusters: 3,
            dim: 2,
            spread: 0.2,
            lambda: 1.0,
        }
        .generate(1);
        assert_eq!(inst.problem.ground_size(), 40);
        assert_eq!(inst.points.len(), 40);
        assert_eq!(inst.cluster.len(), 40);
        assert!(inst.cluster.iter().all(|&c| c < 3));
    }

    #[test]
    fn euclidean_instances_are_metric() {
        let inst = ClusteredConfig::default().generate(2);
        // Sampled audit for n = 100 (exhaustive is O(n^3) = 1e6, still ok
        // but sampled keeps the test fast).
        let mut x = 9u64;
        let audit = MetricAudit::check_sampled(inst.problem.metric(), 2000, |k| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % k as u64) as usize
        });
        audit.assert_metric();
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ClusteredConfig {
            n: 20,
            clusters: 2,
            dim: 3,
            spread: 0.1,
            lambda: 0.5,
        };
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.points, b.points);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn intra_cluster_distances_are_smaller() {
        let inst = ClusteredConfig {
            n: 60,
            clusters: 4,
            dim: 2,
            spread: 0.2,
            lambda: 1.0,
        }
        .generate(3);
        let m = inst.problem.metric();
        let mut same = (0.0, 0u32);
        let mut diff = (0.0, 0u32);
        for u in 0..60u32 {
            for v in (u + 1)..60u32 {
                let d = m.distance(u, v);
                if inst.cluster[u as usize] == inst.cluster[v as usize] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    diff = (diff.0 + d, diff.1 + 1);
                }
            }
        }
        assert!(same.0 / f64::from(same.1) < diff.0 / f64::from(diff.1));
    }

    #[test]
    fn dispersion_greedy_spans_clusters() {
        let inst = ClusteredConfig {
            n: 50,
            clusters: 5,
            dim: 2,
            spread: 0.1,
            lambda: 1.0,
        }
        .generate(6);
        let s = greedy_b(&inst.problem, 5, GreedyBConfig::default());
        let mut hit: Vec<u32> = s.iter().map(|&u| inst.cluster[u as usize]).collect();
        hit.sort_unstable();
        hit.dedup();
        assert!(
            hit.len() >= 4,
            "diversified pick should span most clusters, hit {hit:?}"
        );
    }
}
