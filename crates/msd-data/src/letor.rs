//! Simulated LETOR corpus (Section 7.2's workload).
//!
//! The paper's "real data" experiments use the LETOR learning-to-rank
//! benchmark: for each query, a pool of documents with
//!
//! * an integer relevance grade `r(u) ∈ {0, …, 5}` — the modular quality is
//!   `f(S) = Σ_{u∈S} r(u)`, and
//! * a ~46-dimensional feature vector — the distance is the cosine
//!   *distance* between feature vectors ("a metric distance function given
//!   by the cosine similarity between the feature vectors").
//!
//! LETOR itself is an external download we cannot ship, so this module
//! generates a corpus with the same shape (see DESIGN.md §2):
//!
//! * documents belong to latent *topics* (clusters in feature space), so
//!   similar documents are close — the structure that separates Greedy A
//!   from Greedy B on real data;
//! * relevance grades are skewed toward 0–1 (as in LETOR, where most pool
//!   documents are irrelevant), with relevant documents concentrated in
//!   query-aligned topics;
//! * feature vectors are non-negative (LETOR features are normalized
//!   query-document statistics), so cosine distances land in `[0, 1]`.
//!
//! The "top-k by relevance" slices used by Tables 4–8 are provided by
//! [`LetorQuery::top_k`].

use msd_core::DiversificationProblem;
use msd_metric::{DistanceMatrix, Point};
use msd_submodular::ModularFunction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the simulated-LETOR generator.
#[derive(Debug, Clone, Copy)]
pub struct LetorConfig {
    /// Documents per query.
    pub docs_per_query: usize,
    /// Feature dimensionality (LETOR 3.0 uses 46).
    pub feature_dim: usize,
    /// Number of latent topics per query pool.
    pub topics: usize,
    /// Trade-off λ for the built problems.
    pub lambda: f64,
}

impl Default for LetorConfig {
    fn default() -> Self {
        Self {
            docs_per_query: 1000,
            feature_dim: 46,
            topics: 8,
            lambda: 0.2,
        }
    }
}

/// One query's document pool.
#[derive(Debug, Clone)]
pub struct LetorQuery {
    /// Query identifier.
    pub query_id: u32,
    /// Integer relevance grades in `0..=5`, one per document.
    pub relevance: Vec<u8>,
    /// Feature vectors, one per document.
    pub features: Vec<Point>,
    /// Latent topic of each document (not visible to algorithms; used by
    /// tests to assert cluster structure).
    pub topic: Vec<u32>,
    lambda: f64,
}

impl LetorConfig {
    /// Generates the pool for `query_id` deterministically from
    /// `seed` + `query_id`.
    pub fn generate(&self, seed: u64, query_id: u32) -> LetorQuery {
        assert!(self.topics >= 1, "need at least one topic");
        assert!(self.feature_dim >= 2, "need at least two features");
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ u64::from(query_id));

        // Topic centroids: non-negative, roughly unit scale.
        let centroids: Vec<Vec<f64>> = (0..self.topics)
            .map(|_| {
                (0..self.feature_dim)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            })
            .collect();
        // One or two "query-aligned" topics hold most of the relevant
        // documents.
        let hot_topic = rng.gen_range(0..self.topics) as u32;
        let warm_topic = rng.gen_range(0..self.topics) as u32;

        let mut relevance = Vec::with_capacity(self.docs_per_query);
        let mut features = Vec::with_capacity(self.docs_per_query);
        let mut topic = Vec::with_capacity(self.docs_per_query);
        for _ in 0..self.docs_per_query {
            let t = rng.gen_range(0..self.topics) as u32;
            topic.push(t);
            // Feature = centroid + non-negative jitter. The jitter is
            // wide enough that cosine distances spread over [0, ~0.6] as
            // they do for real LETOR feature vectors, while the topic
            // structure keeps same-topic documents closer on average.
            let feat: Vec<f64> = centroids[t as usize]
                .iter()
                .map(|&c| (c + rng.gen_range(-0.4..0.4)).max(0.0))
                .collect();
            features.push(Point::new(feat));
            // Grade distribution: heavily skewed toward 0–2 with rare high
            // grades, as in LETOR pools (most judged documents are barely
            // relevant). The resulting top-k slices carry large tie groups,
            // which is exactly the regime where the dispersion term
            // discriminates between algorithms.
            let roll: f64 = rng.gen_range(0.0..1.0);
            let grade = if t == hot_topic {
                match roll {
                    r if r < 0.35 => 0,
                    r if r < 0.65 => 1,
                    r if r < 0.85 => 2,
                    r if r < 0.95 => 3,
                    r if r < 0.99 => 4,
                    _ => 5,
                }
            } else if t == warm_topic {
                match roll {
                    r if r < 0.55 => 0,
                    r if r < 0.83 => 1,
                    r if r < 0.95 => 2,
                    r if r < 0.99 => 3,
                    _ => 4,
                }
            } else {
                match roll {
                    r if r < 0.80 => 0,
                    r if r < 0.97 => 1,
                    _ => 2,
                }
            };
            relevance.push(grade);
        }
        LetorQuery {
            query_id,
            relevance,
            features,
            topic,
            lambda: self.lambda,
        }
    }
}

impl LetorQuery {
    /// Number of documents in the pool.
    pub fn len(&self) -> usize {
        self.relevance.len()
    }

    /// `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.relevance.is_empty()
    }

    /// Indices of the `k` most relevant documents (ties broken by lower
    /// index, matching a stable "top-k of the ranked list").
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| self.relevance[b].cmp(&self.relevance[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Builds the diversification problem over the `k` most relevant
    /// documents: modular quality `f(S) = Σ r(u)` and cosine distance,
    /// exactly the Section 7.2 setup. Returns the problem and the original
    /// document indices (position `i` of the returned vec is element `i`).
    pub fn top_k(
        &self,
        k: usize,
    ) -> (
        DiversificationProblem<DistanceMatrix, ModularFunction>,
        Vec<usize>,
    ) {
        let idx = self.top_k_indices(k);
        let points: Vec<&Point> = idx.iter().map(|&i| &self.features[i]).collect();
        let metric = DistanceMatrix::from_points(&points, |a, b| a.cosine_distance(b));
        let weights: Vec<f64> = idx.iter().map(|&i| f64::from(self.relevance[i])).collect();
        let problem =
            DiversificationProblem::new(metric, ModularFunction::new(weights), self.lambda);
        (problem, idx)
    }

    /// Builds the problem over the whole pool.
    pub fn full(
        &self,
    ) -> (
        DiversificationProblem<DistanceMatrix, ModularFunction>,
        Vec<usize>,
    ) {
        self.top_k(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_metric::{relaxation_parameter, Metric};

    fn small() -> LetorQuery {
        LetorConfig {
            docs_per_query: 60,
            feature_dim: 12,
            topics: 4,
            lambda: 0.2,
        }
        .generate(11, 1)
    }

    #[test]
    fn generates_requested_pool() {
        let q = small();
        assert_eq!(q.len(), 60);
        assert!(!q.is_empty());
        assert_eq!(q.features.len(), 60);
        assert_eq!(q.topic.len(), 60);
        assert!(q.relevance.iter().all(|&r| r <= 5));
        assert!(q.features.iter().all(|f| f.dim() == 12));
    }

    #[test]
    fn deterministic_per_seed_and_query() {
        let cfg = LetorConfig {
            docs_per_query: 40,
            feature_dim: 8,
            topics: 3,
            lambda: 0.2,
        };
        let a = cfg.generate(5, 2);
        let b = cfg.generate(5, 2);
        assert_eq!(a.relevance, b.relevance);
        let c = cfg.generate(5, 3);
        assert_ne!(a.relevance, c.relevance, "different queries must differ");
    }

    #[test]
    fn grades_are_skewed_toward_low_relevance() {
        let q = LetorConfig {
            docs_per_query: 2000,
            feature_dim: 8,
            topics: 8,
            lambda: 0.2,
        }
        .generate(3, 0);
        let low = q.relevance.iter().filter(|&&r| r <= 1).count();
        assert!(
            low * 2 > q.len(),
            "most documents should have grade <= 1, got {low}/{}",
            q.len()
        );
        let top = q.relevance.iter().filter(|&&r| r >= 4).count();
        assert!(top > 0, "some documents must be highly relevant");
    }

    #[test]
    fn top_k_orders_by_relevance() {
        let q = small();
        let idx = q.top_k_indices(10);
        assert_eq!(idx.len(), 10);
        for w in idx.windows(2) {
            assert!(q.relevance[w[0]] >= q.relevance[w[1]]);
        }
        // top-k grades dominate the rest
        let min_top = idx.iter().map(|&i| q.relevance[i]).min().unwrap();
        let not_top: Vec<usize> = (0..q.len()).filter(|i| !idx.contains(i)).collect();
        let max_rest = not_top.iter().map(|&i| q.relevance[i]).max().unwrap();
        assert!(min_top >= max_rest);
    }

    #[test]
    fn top_k_problem_uses_cosine_distance_and_grades() {
        let q = small();
        let (p, idx) = q.top_k(8);
        assert_eq!(p.ground_size(), 8);
        for (e, &i) in idx.iter().enumerate() {
            assert_eq!(p.quality().weight(e as u32), f64::from(q.relevance[i]));
        }
        // Distances are cosine distances in [0, 1].
        for u in 0..8u32 {
            for v in (u + 1)..8u32 {
                let d = p.metric().distance(u, v);
                assert!((0.0..=1.0).contains(&d), "cosine distance {d}");
                let expected =
                    q.features[idx[u as usize]].cosine_distance(&q.features[idx[v as usize]]);
                assert!((d - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn same_topic_documents_are_closer_on_average() {
        let q = small();
        let (p, idx) = q.full();
        let mut same = (0.0, 0u32);
        let mut diff = (0.0, 0u32);
        for u in 0..p.ground_size() as u32 {
            for v in (u + 1)..p.ground_size() as u32 {
                let d = p.metric().distance(u, v);
                if q.topic[idx[u as usize]] == q.topic[idx[v as usize]] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    diff = (diff.0 + d, diff.1 + 1);
                }
            }
        }
        let avg_same = same.0 / f64::from(same.1);
        let avg_diff = diff.0 / f64::from(diff.1);
        assert!(
            avg_same < avg_diff,
            "intra-topic {avg_same} should be below inter-topic {avg_diff}"
        );
    }

    #[test]
    fn cosine_distance_is_close_to_metric() {
        // Cosine distance is a semi-metric; on this data the relaxation
        // parameter should stay modest (documented regime for the paper's
        // algorithms).
        let q = LetorConfig {
            docs_per_query: 25,
            feature_dim: 10,
            topics: 3,
            lambda: 0.2,
        }
        .generate(9, 4);
        let (p, _) = q.full();
        let report = relaxation_parameter(p.metric());
        assert!(
            report.alpha < 3.0,
            "alpha unexpectedly large: {}",
            report.alpha
        );
    }

    #[test]
    fn full_returns_whole_pool() {
        let q = small();
        let (p, idx) = q.full();
        assert_eq!(p.ground_size(), 60);
        assert_eq!(idx.len(), 60);
    }
}
