//! Adversarial and lower-bound instances.
//!
//! * [`greedy_lower_bound`] — the classic family on which the dispersion
//!   vertex greedy approaches its factor-2 bound (Birnbaum–Goldman show
//!   `2(p−1)/p` is tight): a "star of far twins" where greedy pairs up
//!   wrong. We construct the standard two-group instance.
//! * [`planted_pair_metric`] — a `{1, 2}` metric hiding a planted subset at
//!   mutual distance 2 (everything else at distance 1 to most neighbours),
//!   echoing the planted-clique hardness story of Section 3.
//! * Re-exports the appendix counterexample builder from `msd-core` for
//!   convenience when scripting experiments.

pub use msd_core::counterexample::AppendixInstance;

use msd_metric::DistanceMatrix;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use crate::ElementId;

/// A dispersion instance where greedy underperforms.
///
/// Ground set: `2m` points arranged as `m` "twin pairs". Twins are at
/// distance `2ε` of each other; any two non-twins are at distance `1`.
/// For `p = m` the optimum picks one point per pair (all pairwise
/// distances 1 → `C(p,2)`), while an edge/vertex greedy seeded on an
/// unlucky far pair can be forced to include both twins of a pair.
/// All values keep the triangle inequality (`2ε ≤ 1 ≤ 2·…` for
/// `ε ≤ 0.5`).
pub fn greedy_lower_bound(m: usize, epsilon: f64) -> DistanceMatrix {
    assert!(m >= 2, "need at least two pairs");
    assert!(
        (0.0..=0.5).contains(&epsilon),
        "need 0 <= epsilon <= 0.5 for metricity, got {epsilon}"
    );
    let n = 2 * m;
    DistanceMatrix::from_fn(n, |u, v| {
        // Twins are (2i, 2i+1).
        if u / 2 == v / 2 {
            2.0 * epsilon
        } else {
            1.0
        }
    })
}

/// A `{1, 2}` metric with a planted subset of size `k` at mutual distance
/// 2; all other pairs are at distance 1 with probability `1 − q`, 2 with
/// probability `q`.
///
/// Returns the metric and the planted subset (sorted). For small `q` the
/// planted set is essentially the unique dispersion optimum, so exact and
/// approximate solvers can be sanity-checked against it.
pub fn planted_pair_metric(
    n: usize,
    k: usize,
    q: f64,
    seed: u64,
) -> (DistanceMatrix, Vec<ElementId>) {
    assert!(k <= n, "planted set cannot exceed the ground set");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<ElementId> = (0..n as ElementId).collect();
    ids.shuffle(&mut rng);
    let mut planted: Vec<ElementId> = ids.into_iter().take(k).collect();
    planted.sort_unstable();
    let in_planted = {
        let mut flags = vec![false; n];
        for &u in &planted {
            flags[u as usize] = true;
        }
        flags
    };
    let metric = DistanceMatrix::from_fn(n, |u, v| {
        let far = (in_planted[u as usize] && in_planted[v as usize]) || rng.gen_range(0.0..1.0) < q;
        if far {
            2.0
        } else {
            1.0
        }
    });
    (metric, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_core::max_sum_dispersion_greedy;
    use msd_metric::{Metric, MetricAudit};

    #[test]
    fn twin_instance_is_metric() {
        let m = greedy_lower_bound(4, 0.25);
        MetricAudit::check(&m).assert_metric();
        assert_eq!(m.len(), 8);
        assert_eq!(m.distance(0, 1), 0.5);
        assert_eq!(m.distance(0, 2), 1.0);
    }

    #[test]
    fn optimum_picks_one_twin_per_pair() {
        let m = greedy_lower_bound(3, 0.1);
        // One per pair: all distances 1 → C(3,2) = 3.
        assert_eq!(m.dispersion(&[0, 2, 4]), 3.0);
        // Both twins of a pair lose value.
        assert!(m.dispersion(&[0, 1, 2]) < 3.0);
    }

    #[test]
    fn greedy_still_within_factor_two_on_twin_instance() {
        let m = greedy_lower_bound(5, 0.05);
        let s = max_sum_dispersion_greedy(&m, 5);
        let greedy_val = m.dispersion(&s);
        let opt = m.dispersion(&[0, 2, 4, 6, 8]);
        assert!(2.0 * greedy_val >= opt - 1e-9);
    }

    #[test]
    fn planted_metric_is_metric_and_contains_plant() {
        let (m, planted) = planted_pair_metric(20, 5, 0.05, 7);
        MetricAudit::check(&m).assert_metric();
        assert_eq!(planted.len(), 5);
        for (i, &u) in planted.iter().enumerate() {
            for &v in &planted[i + 1..] {
                assert_eq!(m.distance(u, v), 2.0);
            }
        }
    }

    #[test]
    fn planted_set_is_dispersion_optimal_for_q_zero() {
        let (m, planted) = planted_pair_metric(16, 4, 0.0, 3);
        let plant_val = m.dispersion(&planted);
        assert_eq!(plant_val, 2.0 * 6.0); // C(4,2) pairs at distance 2
                                          // Greedy must recover a set at least half as good; with q = 0 the
                                          // planted set is the unique maximum.
        let s = max_sum_dispersion_greedy(&m, 4);
        assert!(2.0 * m.dispersion(&s) >= plant_val - 1e-9);
    }

    #[test]
    fn planted_generator_is_deterministic() {
        let (m1, p1) = planted_pair_metric(12, 3, 0.2, 9);
        let (m2, p2) = planted_pair_metric(12, 3, 0.2, 9);
        assert_eq!(p1, p2);
        assert_eq!(m1.triangle(), m2.triangle());
    }

    #[test]
    #[should_panic(expected = "metricity")]
    fn oversized_epsilon_rejected() {
        let _ = greedy_lower_bound(3, 0.9);
    }

    #[test]
    #[should_panic(expected = "exceed the ground set")]
    fn oversized_plant_rejected() {
        let _ = planted_pair_metric(4, 9, 0.1, 1);
    }

    #[test]
    fn appendix_reexport_is_usable() {
        let inst = AppendixInstance::new(5, 2.0);
        assert!(inst.greedy_ratio() > 1.0);
    }
}
