//! Dense precomputed distance matrices.
//!
//! All of the paper's experiments run on ground sets small enough (N ≤ a few
//! thousand) that the full `n(n-1)/2` pairwise distances fit comfortably in
//! memory. [`DistanceMatrix`] stores them in a single flat upper-triangular
//! `Vec<f64>` — one allocation, O(1) symmetric lookup, and cache-friendly
//! row sweeps for the greedy algorithms.

use crate::{ElementId, Metric, PerturbableMetric};

/// A symmetric distance matrix over `{0, .., n-1}` with zero diagonal.
///
/// Stored as the strict upper triangle in row-major order:
/// entry `(u, v)` with `u < v` lives at `offset(u) + (v - u - 1)` where
/// `offset(u) = u·n − u(u+1)/2`.
///
/// Mutation is deliberately exposed ([`DistanceMatrix::set`]) because the
/// dynamic-update experiments (Section 6 / Figure 1) perturb individual
/// distances in place.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Strict upper triangle, `n(n-1)/2` entries.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of strict-upper-triangle entries for a ground set of `n`
    /// elements, or `None` when `n(n-1)/2` overflows `usize`.
    ///
    /// Dense storage needs `n·(n−1)` to fit in `usize` *before* the halving
    /// (the row-offset arithmetic in `index()` computes `a·n` for `a < n`,
    /// so the same bound keeps every intermediate product in range). On
    /// 64-bit targets the boundary sits at `n = 2³²`: the capacity itself
    /// still fits, while `n = 2³² + 1` overflows. Either is far beyond what
    /// dense `O(n²)` storage can serve — use the implicit metrics in
    /// [`crate::implicit`] for such ground sets.
    pub fn triangle_len_checked(n: usize) -> Option<usize> {
        n.checked_mul(n.saturating_sub(1)).map(|sq| sq / 2)
    }

    /// Checked capacity with the documented out-of-range panic shared by
    /// the constructors.
    fn triangle_len(n: usize) -> usize {
        Self::triangle_len_checked(n).unwrap_or_else(|| {
            panic!("dense triangle capacity n(n-1)/2 overflows usize for n = {n}")
        })
    }

    /// Creates an all-zeros matrix for `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if the triangle capacity `n(n-1)/2` overflows `usize` (see
    /// [`DistanceMatrix::triangle_len_checked`]).
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; Self::triangle_len(n)],
        }
    }

    /// Builds a matrix by evaluating `dist` on every unordered pair.
    ///
    /// `dist` is called exactly once per pair `(u, v)` with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if the triangle capacity `n(n-1)/2` overflows `usize` (see
    /// [`DistanceMatrix::triangle_len_checked`]).
    pub fn from_fn(n: usize, mut dist: impl FnMut(ElementId, ElementId) -> f64) -> Self {
        let mut data = Vec::with_capacity(Self::triangle_len(n));
        for u in 0..n {
            for v in (u + 1)..n {
                data.push(dist(u as ElementId, v as ElementId));
            }
        }
        Self { n, data }
    }

    /// Materializes any [`Metric`] into a dense matrix.
    pub fn from_metric<M: Metric>(metric: &M) -> Self {
        Self::from_fn(metric.len(), |u, v| metric.distance(u, v))
    }

    /// Builds a matrix from points and a pairwise kernel.
    pub fn from_points<T>(points: &[T], mut dist: impl FnMut(&T, &T) -> f64) -> Self {
        Self::from_fn(points.len(), |u, v| {
            dist(&points[u as usize], &points[v as usize])
        })
    }

    #[inline]
    fn index(&self, u: ElementId, v: ElementId) -> usize {
        debug_assert!(u != v);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let (a, b) = (a as usize, b as usize);
        // offset of row a in the strict upper triangle + column shift
        a * self.n - a * (a + 1) / 2 + (b - a - 1)
    }

    /// Sets the distance between a pair of distinct elements.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (the diagonal is fixed at zero) or out of range.
    pub fn set(&mut self, u: ElementId, v: ElementId, d: f64) {
        assert!(u != v, "cannot set diagonal distance d({u},{u})");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "element out of range"
        );
        let idx = self.index(u, v);
        self.data[idx] = d;
    }

    /// Scales every distance by `factor` (useful for normalizing workloads).
    pub fn scale(&mut self, factor: f64) {
        for d in &mut self.data {
            *d *= factor;
        }
    }

    /// The largest pairwise distance, or 0 for `n < 2`.
    pub fn max_distance(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// The smallest off-diagonal distance, or 0 for `n < 2`.
    pub fn min_distance(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Mean off-diagonal distance, or 0 for `n < 2`.
    pub fn mean_distance(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Raw access to the strict upper triangle (row-major).
    pub fn triangle(&self) -> &[f64] {
        &self.data
    }

    /// Scalar per-pair reference for
    /// [`Metric::accumulate_distances`]: one `distance` lookup per element,
    /// no chunking. This is the testable ground truth the chunked kernel
    /// must match bit-for-bit (same add order per slot — each `out[v]`
    /// receives exactly one fused `+= factor · d(u, v)` in both paths), and
    /// is exercised against it by the property suite in
    /// `tests/proptests.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `out` is shorter than the ground
    /// set.
    pub fn accumulate_distances_scalar(&self, u: ElementId, out: &mut [f64], factor: f64) {
        let n = self.n;
        assert!((u as usize) < n, "element out of range");
        assert!(out.len() >= n, "output buffer shorter than ground set");
        for v in 0..n as ElementId {
            if v != u {
                out[v as usize] += factor * self.distance(u, v);
            }
        }
    }
}

/// Fixed chunk width of the auto-vectorized row kernels (8 f64 lanes = one
/// AVX-512 register or two AVX2 registers; the compiler maps narrower ISAs
/// to multiple ops). Shared with the tail handling: any slice length is
/// processed as `len / LANES` full chunks plus a scalar remainder.
const LANES: usize = 8;

impl Metric for DistanceMatrix {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        if u == v {
            0.0
        } else {
            self.data[self.index(u, v)]
        }
    }

    /// Row kernel over the triangular storage: the `v > u` tail is one
    /// contiguous slice and the `v < u` head walks a closed-form stride, so
    /// the whole sweep does no per-pair index arithmetic.
    ///
    /// The contiguous row part runs as explicit `LANES`-wide (8-lane) chunks with
    /// a scalar tail: fixed-width inner loops over bounds-check-free chunk
    /// slices are the shape LLVM auto-vectorizes reliably, unlike the
    /// variable-length zip it replaced. Each `out[v]` slot still receives
    /// exactly one `+= factor · d` in the same order as the scalar
    /// reference ([`DistanceMatrix::accumulate_distances_scalar`]), so the
    /// two paths are bit-identical — asserted by the property suite.
    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        let n = self.n;
        let u = u as usize;
        assert!(u < n, "element out of range");
        // Column part: entries (v, u) for v < u at offset(v) + (u - v - 1),
        // with consecutive v differing by n - v - 2. The stride shrinks per
        // step, so this head stays a scalar gather walk.
        let mut idx = u.wrapping_sub(1); // offset(0) + (u - 1)
        for (v, slot) in out.iter_mut().enumerate().take(u) {
            *slot += factor * self.data[idx];
            idx += n - v - 2;
        }
        // Row part: entries (u, v) for v > u are contiguous from offset(u);
        // chunked axpy over the two parallel slices.
        let start = u * n - u * (u + 1) / 2;
        let row = &self.data[start..start + (n - u - 1)];
        let out_row = &mut out[u + 1..n];
        let mut o_chunks = out_row.chunks_exact_mut(LANES);
        let mut d_chunks = row.chunks_exact(LANES);
        for (o, d) in (&mut o_chunks).zip(&mut d_chunks) {
            for k in 0..LANES {
                o[k] += factor * d[k];
            }
        }
        for (o, &d) in o_chunks
            .into_remainder()
            .iter_mut()
            .zip(d_chunks.remainder())
        {
            *o += factor * d;
        }
    }
}

impl PerturbableMetric for DistanceMatrix {
    /// O(1) in-place update returning the displaced distance — the delta
    /// source for session gain-cache repair (see the trait docs).
    fn set_distance(&mut self, u: ElementId, v: ElementId, value: f64) -> f64 {
        assert!(
            value.is_finite() && value >= 0.0,
            "distance must be finite and non-negative, got {value}"
        );
        assert!(u != v, "cannot set diagonal distance d({u},{u})");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "element out of range"
        );
        let idx = self.index(u, v);
        std::mem::replace(&mut self.data[idx], value)
    }
}

/// Incremental builder that fills the upper triangle pair by pair.
///
/// Useful when distances arrive in arbitrary order (e.g. parsed from an
/// edge list); any unset pair defaults to `0`.
#[derive(Debug, Clone)]
pub struct DistanceMatrixBuilder {
    matrix: DistanceMatrix,
}

impl DistanceMatrixBuilder {
    /// Starts a builder for `n` elements with all distances zero.
    pub fn new(n: usize) -> Self {
        Self {
            matrix: DistanceMatrix::zeros(n),
        }
    }

    /// Sets `d(u, v) = d(v, u) = d`; returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, u: ElementId, v: ElementId, d: f64) -> Self {
        self.matrix.set(u, v, d);
        self
    }

    /// Sets `d(u, v)` in place.
    pub fn set(&mut self, u: ElementId, v: ElementId, d: f64) -> &mut Self {
        self.matrix.set(u, v, d);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DistanceMatrix {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_visits_each_pair_once() {
        let mut calls = 0;
        let m = DistanceMatrix::from_fn(5, |u, v| {
            calls += 1;
            f64::from(u + v)
        });
        assert_eq!(calls, 10);
        assert_eq!(m.len(), 5);
        assert_eq!(m.distance(1, 3), 4.0);
        assert_eq!(m.distance(3, 1), 4.0);
        assert_eq!(m.distance(2, 2), 0.0);
    }

    #[test]
    fn symmetric_lookup_after_set() {
        let mut m = DistanceMatrix::zeros(4);
        m.set(0, 3, 7.5);
        m.set(2, 1, 1.25);
        assert_eq!(m.distance(3, 0), 7.5);
        assert_eq!(m.distance(1, 2), 1.25);
        assert_eq!(m.distance(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        DistanceMatrix::zeros(3).set(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn setting_out_of_range_panics() {
        DistanceMatrix::zeros(3).set(0, 5, 1.0);
    }

    #[test]
    fn index_layout_is_exhaustive_and_unique() {
        let n = 17;
        let m = DistanceMatrix::zeros(n);
        let mut seen = vec![false; n * (n - 1) / 2];
        for u in 0..n as ElementId {
            for v in (u + 1)..n as ElementId {
                let i = m.index(u, v);
                assert!(!seen[i], "index collision at ({u},{v})");
                seen[i] = true;
                assert_eq!(m.index(v, u), i, "asymmetric index");
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_metric_roundtrip() {
        let a = DistanceMatrix::from_fn(6, |u, v| f64::from(u * 10 + v));
        let b = DistanceMatrix::from_metric(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn from_points_uses_kernel() {
        let pts = [0.0_f64, 3.0, 7.0];
        let m = DistanceMatrix::from_points(&pts, |a, b| (a - b).abs());
        assert_eq!(m.distance(0, 2), 7.0);
        assert_eq!(m.distance(1, 2), 4.0);
    }

    #[test]
    fn statistics() {
        let m = DistanceMatrix::from_fn(3, |u, v| f64::from(u + v)); // 1, 2, 3
        assert_eq!(m.max_distance(), 3.0);
        assert_eq!(m.min_distance(), 1.0);
        assert!((m.mean_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn statistics_on_trivial_matrices() {
        let m = DistanceMatrix::zeros(1);
        assert_eq!(m.max_distance(), 0.0);
        assert_eq!(m.min_distance(), 0.0);
        assert_eq!(m.mean_distance(), 0.0);
        assert_eq!(m.triangle().len(), 0);
    }

    #[test]
    fn scale_multiplies_all_entries() {
        let mut m = DistanceMatrix::from_fn(3, |_, _| 2.0);
        m.scale(0.5);
        assert_eq!(m.distance(0, 1), 1.0);
        assert_eq!(m.distance(1, 2), 1.0);
    }

    #[test]
    fn builder_chains() {
        let m = DistanceMatrixBuilder::new(3)
            .with(0, 1, 1.0)
            .with(1, 2, 2.0)
            .with(0, 2, 3.0)
            .build();
        assert_eq!(m.dispersion(&[0, 1, 2]), 6.0);
    }

    #[test]
    fn accumulate_distances_matches_default_sweep() {
        let n = 9;
        let m = DistanceMatrix::from_fn(n, |u, v| f64::from(u * 13 + v * 7) * 0.25);
        for u in 0..n as ElementId {
            let mut fast = vec![0.5; n];
            let mut slow = vec![0.5; n];
            m.accumulate_distances(u, &mut fast, -2.0);
            for v in 0..n as ElementId {
                if v != u {
                    slow[v as usize] += -2.0 * m.distance(u, v);
                }
            }
            assert_eq!(fast, slow, "row kernel drifted for u={u}");
        }
    }

    #[test]
    fn chunked_kernel_is_bit_identical_to_scalar_across_tail_lengths() {
        // n = 41 puts every row length 0..=40 through the chunked path:
        // full 8-lane chunks, odd tails of every residue, and the empty
        // row of the last element.
        let n = 41;
        let m =
            DistanceMatrix::from_fn(n, |u, v| (f64::from(u) * 0.37 + f64::from(v) * 1.13).sin());
        for u in 0..n as ElementId {
            for factor in [1.0, -1.0, 0.25] {
                let mut fast = vec![0.125; n];
                let mut slow = fast.clone();
                m.accumulate_distances(u, &mut fast, factor);
                m.accumulate_distances_scalar(u, &mut slow, factor);
                assert_eq!(fast, slow, "u={u} factor={factor}");
            }
        }
    }

    #[test]
    fn accumulate_distances_on_tiny_matrices() {
        let m = DistanceMatrix::zeros(1);
        let mut out = vec![1.0];
        m.accumulate_distances(0, &mut out, 1.0);
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn set_distance_returns_the_previous_value() {
        let mut m = DistanceMatrix::from_fn(4, |u, v| f64::from(u + v));
        let old = m.set_distance(1, 3, 9.5);
        assert_eq!(old, 4.0);
        assert_eq!(m.distance(3, 1), 9.5);
        assert_eq!(m.set_distance(3, 1, 4.0), 9.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn set_distance_rejects_negative() {
        DistanceMatrix::zeros(3).set_distance(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_distance_rejects_diagonal() {
        DistanceMatrix::zeros(3).set_distance(2, 2, 1.0);
    }

    #[test]
    fn builder_set_in_place() {
        let mut b = DistanceMatrixBuilder::new(3);
        b.set(0, 1, 4.0).set(0, 2, 5.0);
        let m = b.build();
        assert_eq!(m.distance(1, 0), 4.0);
        assert_eq!(m.distance(2, 0), 5.0);
        assert_eq!(m.distance(1, 2), 0.0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn triangle_capacity_is_checked_near_the_overflow_boundary() {
        assert_eq!(DistanceMatrix::triangle_len_checked(0), Some(0));
        assert_eq!(DistanceMatrix::triangle_len_checked(1), Some(0));
        assert_eq!(DistanceMatrix::triangle_len_checked(5), Some(10));
        // On 64-bit, n·(n−1) last fits at n = 2³²: the capacity is
        // 2⁶³ − 2³¹; one element more overflows the product.
        let boundary = 1usize << 32;
        assert_eq!(
            DistanceMatrix::triangle_len_checked(boundary),
            Some((1usize << 63) - (1usize << 31))
        );
        assert_eq!(DistanceMatrix::triangle_len_checked(boundary + 1), None);
        assert_eq!(DistanceMatrix::triangle_len_checked(usize::MAX), None);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "overflows usize")]
    fn zeros_panics_instead_of_wrapping_past_the_boundary() {
        // Panics on the checked capacity before any allocation is attempted.
        let _ = DistanceMatrix::zeros((1usize << 32) + 1);
    }
}
