//! Metric-axiom auditing.
//!
//! The approximation guarantees of Borodin et al. depend on the triangle
//! inequality (Lemma 1 and the swap analyses all invoke it). When wiring a
//! new distance source into the library it is easy to violate an axiom
//! silently — cosine distance, for example, is only a semi-metric. This
//! module provides an exhaustive O(n³) audit for test-sized instances plus a
//! sampled audit for larger ones.

use crate::{ElementId, Metric};

/// A single violated metric axiom, with a witness.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricViolation {
    /// `d(u, u) != 0`.
    NonzeroDiagonal { u: ElementId, value: f64 },
    /// `d(u, v) != d(v, u)`.
    Asymmetry {
        u: ElementId,
        v: ElementId,
        forward: f64,
        backward: f64,
    },
    /// `d(u, v) < 0` or not finite.
    Invalid {
        u: ElementId,
        v: ElementId,
        value: f64,
    },
    /// `d(u, w) > d(u, v) + d(v, w)` beyond tolerance.
    TriangleInequality {
        u: ElementId,
        v: ElementId,
        w: ElementId,
        /// `d(u, w) − (d(u, v) + d(v, w))`, positive.
        excess: f64,
    },
}

/// Result of auditing a [`Metric`].
#[derive(Debug, Clone)]
pub struct MetricAudit {
    violations: Vec<MetricViolation>,
    /// Worst triangle excess found (0 when the triangle inequality holds).
    worst_triangle_excess: f64,
}

/// Absolute tolerance used when comparing floating-point distances.
pub const TOLERANCE: f64 = 1e-9;

impl MetricAudit {
    /// Exhaustively audits every pair and triple. O(n³); intended for tests
    /// and small instances.
    pub fn check<M: Metric>(metric: &M) -> Self {
        let n = metric.len() as ElementId;
        let mut violations = Vec::new();
        let mut worst = 0.0_f64;

        for u in 0..n {
            let duu = metric.distance(u, u);
            if duu.abs() > TOLERANCE {
                violations.push(MetricViolation::NonzeroDiagonal { u, value: duu });
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let f = metric.distance(u, v);
                let b = metric.distance(v, u);
                if !f.is_finite() || f < -TOLERANCE {
                    violations.push(MetricViolation::Invalid { u, v, value: f });
                }
                if (f - b).abs() > TOLERANCE {
                    violations.push(MetricViolation::Asymmetry {
                        u,
                        v,
                        forward: f,
                        backward: b,
                    });
                }
            }
        }
        for u in 0..n {
            for v in 0..n {
                if v == u {
                    continue;
                }
                for w in (u + 1)..n {
                    if w == v {
                        continue;
                    }
                    let excess =
                        metric.distance(u, w) - metric.distance(u, v) - metric.distance(v, w);
                    if excess > TOLERANCE {
                        worst = worst.max(excess);
                        violations.push(MetricViolation::TriangleInequality { u, v, w, excess });
                    }
                }
            }
        }
        Self {
            violations,
            worst_triangle_excess: worst,
        }
    }

    /// Audits a random sample of `samples` triples using a caller-supplied
    /// index stream (so the crate stays rng-free). `pick(k)` must return a
    /// value in `0..k`.
    pub fn check_sampled<M: Metric>(
        metric: &M,
        samples: usize,
        mut pick: impl FnMut(usize) -> usize,
    ) -> Self {
        let n = metric.len();
        let mut violations = Vec::new();
        let mut worst = 0.0_f64;
        if n >= 3 {
            for _ in 0..samples {
                let u = pick(n) as ElementId;
                let v = pick(n) as ElementId;
                let w = pick(n) as ElementId;
                if u == v || v == w || u == w {
                    continue;
                }
                let excess = metric.distance(u, w) - metric.distance(u, v) - metric.distance(v, w);
                if excess > TOLERANCE {
                    worst = worst.max(excess);
                    violations.push(MetricViolation::TriangleInequality { u, v, w, excess });
                }
            }
        }
        Self {
            violations,
            worst_triangle_excess: worst,
        }
    }

    /// `true` when no axiom was violated.
    pub fn is_metric(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found, in discovery order.
    pub fn violations(&self) -> &[MetricViolation] {
        &self.violations
    }

    /// Worst observed triangle-inequality excess (0 when none).
    pub fn worst_triangle_excess(&self) -> f64 {
        self.worst_triangle_excess
    }

    /// Panics with a readable report if any axiom fails. For use in tests.
    #[track_caller]
    pub fn assert_metric(&self) {
        assert!(
            self.is_metric(),
            "metric axioms violated ({} violations); first: {:?}",
            self.violations.len(),
            self.violations.first()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceMatrix;

    #[test]
    fn valid_metric_passes() {
        // A path metric 0 - 1 - 2 with unit edges.
        let m = DistanceMatrix::from_fn(3, |u, v| f64::from(v.abs_diff(u)));
        let audit = MetricAudit::check(&m);
        audit.assert_metric();
        assert_eq!(audit.worst_triangle_excess(), 0.0);
    }

    #[test]
    fn triangle_violation_is_detected() {
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(0, 2, 5.0); // 5 > 1 + 1
        let audit = MetricAudit::check(&m);
        assert!(!audit.is_metric());
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MetricViolation::TriangleInequality { .. })));
        assert!((audit.worst_triangle_excess() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_distance_is_detected() {
        let mut m = DistanceMatrix::zeros(2);
        m.set(0, 1, -1.0);
        let audit = MetricAudit::check(&m);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MetricViolation::Invalid { .. })));
    }

    #[test]
    fn nan_distance_is_detected() {
        let mut m = DistanceMatrix::zeros(2);
        m.set(0, 1, f64::NAN);
        let audit = MetricAudit::check(&m);
        assert!(!audit.is_metric());
    }

    struct Asym;
    impl Metric for Asym {
        fn len(&self) -> usize {
            2
        }
        fn distance(&self, u: ElementId, v: ElementId) -> f64 {
            if u < v {
                1.0
            } else if u > v {
                2.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn asymmetry_is_detected() {
        let audit = MetricAudit::check(&Asym);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MetricViolation::Asymmetry { .. })));
    }

    struct DirtyDiagonal;
    impl Metric for DirtyDiagonal {
        fn len(&self) -> usize {
            1
        }
        fn distance(&self, _: ElementId, _: ElementId) -> f64 {
            3.0
        }
    }

    #[test]
    fn nonzero_diagonal_is_detected() {
        let audit = MetricAudit::check(&DirtyDiagonal);
        assert_eq!(
            audit.violations(),
            &[MetricViolation::NonzeroDiagonal { u: 0, value: 3.0 }]
        );
    }

    #[test]
    fn sampled_check_finds_planted_violation() {
        let mut m = DistanceMatrix::zeros(4);
        for (u, v) in [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3)] {
            m.set(u, v, 1.0);
        }
        m.set(2, 3, 10.0);
        // Deterministic "rng"; use the high bits so residues mod small k
        // do not fall into a short cycle.
        let mut i = 0u64;
        let audit = MetricAudit::check_sampled(&m, 256, |k| {
            i = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((i >> 33) % k as u64) as usize
        });
        assert!(!audit.is_metric());
    }

    #[test]
    fn sampled_check_on_tiny_ground_set_is_vacuous() {
        let m = DistanceMatrix::zeros(2);
        let audit = MetricAudit::check_sampled(&m, 100, |k| k / 2);
        assert!(audit.is_metric());
    }

    #[test]
    #[should_panic(expected = "metric axioms violated")]
    fn assert_metric_panics_on_violation() {
        let mut m = DistanceMatrix::zeros(2);
        m.set(0, 1, -2.0);
        MetricAudit::check(&m).assert_metric();
    }
}
