//! Graph (shortest-path) metrics.
//!
//! Dispersion problems originate in location theory on networks
//! (Section 3: "the given network is represented by a set V of n vertices
//! along with a distance function between every pair"). This module builds
//! that distance function: the all-pairs shortest-path metric of a
//! weighted undirected graph, materialized into a
//! [`crate::DistanceMatrix`] via Floyd–Warshall.

use crate::{DistanceMatrix, ElementId};

/// A weighted undirected graph used as a metric source.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    n: usize,
    /// `(u, v, w)` edges, `w ≥ 0`.
    edges: Vec<(u32, u32, f64)>,
}

impl WeightedGraph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or negative/non-finite
    /// weights.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        assert!(u != v, "self-loops have no metric meaning");
        assert!(
            w.is_finite() && w >= 0.0,
            "edge weight must be finite and non-negative"
        );
        self.edges.push((u, v, w));
        self
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The raw edge list `(u, v, w)` in insertion order (parallel edges
    /// retained — [`WeightedGraph::shortest_path_metric`] and
    /// [`crate::DynamicGraphMetric`] collapse them to the lightest).
    pub fn edges(&self) -> &[(u32, u32, f64)] {
        &self.edges
    }

    /// Sets the weight of the undirected edge `{u, v}`, inserting it when
    /// absent; parallel copies are collapsed into the single new entry.
    /// Returns the previous lightest weight, or `None` for a new edge.
    /// This is the mirror-side mutation of the dynamic-graph equivalence
    /// suites: rewrite the edge here, rebuild via
    /// [`WeightedGraph::shortest_path_metric`], compare against the
    /// incremental repair.
    ///
    /// # Panics
    ///
    /// As [`WeightedGraph::add_edge`].
    pub fn set_edge(&mut self, u: u32, v: u32, w: f64) -> Option<f64> {
        let old = self.remove_edge(u, v);
        self.add_edge(u, v, w);
        old
    }

    /// Removes every copy of the undirected edge `{u, v}`, returning the
    /// lightest removed weight (or `None` when absent).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> Option<f64> {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        assert!(u != v, "self-loops have no metric meaning");
        let mut old: Option<f64> = None;
        self.edges.retain(|&(a, b, w)| {
            if (a, b) == (u, v) || (a, b) == (v, u) {
                old = Some(old.map_or(w, |prev: f64| prev.min(w)));
                false
            } else {
                true
            }
        });
        old
    }

    /// Computes the all-pairs shortest-path metric (Floyd–Warshall,
    /// O(n³)).
    ///
    /// Returns `Err(DisconnectedGraph)` if some pair is unreachable — a
    /// disconnected graph induces no finite metric.
    pub fn shortest_path_metric(&self) -> Result<DistanceMatrix, DisconnectedGraph> {
        let n = self.n;
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
        }
        for &(u, v, w) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            // Parallel edges keep the lightest.
            if w < dist[u * n + v] {
                dist[u * n + v] = w;
                dist[v * n + u] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik.is_infinite() {
                    continue;
                }
                for j in 0..n {
                    let through = dik + dist[k * n + j];
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                    }
                }
            }
        }
        // Detect disconnection.
        for i in 0..n {
            for j in (i + 1)..n {
                if dist[i * n + j].is_infinite() {
                    return Err(DisconnectedGraph {
                        u: i as ElementId,
                        v: j as ElementId,
                    });
                }
            }
        }
        Ok(DistanceMatrix::from_fn(n, |u, v| {
            dist[u as usize * n + v as usize]
        }))
    }
}

/// Error: the graph has no path between `u` and `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisconnectedGraph {
    /// One witness endpoint.
    pub u: ElementId,
    /// The other witness endpoint.
    pub v: ElementId,
}

impl std::fmt::Display for DisconnectedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph is disconnected: no path between {} and {}",
            self.u, self.v
        )
    }
}

impl std::error::Error for DisconnectedGraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metric, MetricAudit};

    /// A path graph 0 -1- 1 -2- 2 -3- 3.
    fn path() -> WeightedGraph {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0);
        g
    }

    #[test]
    fn path_distances_accumulate() {
        let m = path().shortest_path_metric().unwrap();
        assert_eq!(m.distance(0, 1), 1.0);
        assert_eq!(m.distance(0, 2), 3.0);
        assert_eq!(m.distance(0, 3), 6.0);
        assert_eq!(m.distance(1, 3), 5.0);
    }

    #[test]
    fn shortcut_edges_are_used() {
        let mut g = path();
        g.add_edge(0, 3, 2.5);
        let m = g.shortest_path_metric().unwrap();
        assert_eq!(m.distance(0, 3), 2.5);
        // 0-3-2 = 2.5 + 3 = 5.5 > direct 0-1-2 = 3.
        assert_eq!(m.distance(0, 2), 3.0);
    }

    #[test]
    fn shortest_path_metric_is_a_metric() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 2.0)
            .add_edge(1, 2, 1.5)
            .add_edge(2, 3, 4.0)
            .add_edge(3, 4, 0.5)
            .add_edge(0, 4, 1.0)
            .add_edge(1, 3, 2.2);
        let m = g.shortest_path_metric().unwrap();
        MetricAudit::check(&m).assert_metric();
    }

    #[test]
    fn parallel_edges_keep_the_lightest() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 5.0)
            .add_edge(0, 1, 2.0)
            .add_edge(1, 0, 9.0);
        let m = g.shortest_path_metric().unwrap();
        assert_eq!(m.distance(0, 1), 2.0);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0).add_edge(2, 3, 1.0);
        let err = g.shortest_path_metric().unwrap_err();
        assert!(err.u < err.v);
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 0.0).add_edge(1, 2, 1.0);
        let m = g.shortest_path_metric().unwrap();
        assert_eq!(m.distance(0, 1), 0.0);
        assert_eq!(m.distance(0, 2), 1.0);
    }

    #[test]
    fn accessors() {
        let g = path();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_empty());
        assert!(WeightedGraph::new(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        WeightedGraph::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        WeightedGraph::new(2).add_edge(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_rejected() {
        WeightedGraph::new(2).add_edge(0, 7, 1.0);
    }
}
