//! Sparse perturbation overlays over arbitrary base metrics.
//!
//! The dynamic-update setting rewrites individual distances, but an implicit
//! metric such as [`PointMetric`](crate::PointMetric) has no storage to
//! rewrite — its distances are derived from coordinates. [`OverlayMetric`]
//! closes that gap: it wraps *any* [`Metric`] and keeps the rewritten pairs
//! in a sparse side table, giving every base metric a
//! [`PerturbableMetric`] implementation at `O(#overrides)` extra memory.
//! This is what lets the sharded dynamic engine in `msd-core` run
//! perturbation streams over ground sets that never materialize `n²`
//! distances.
//!
//! # Bit-identity contract
//!
//! `OverlayMetric` behaves exactly like a materialized copy of the base
//! metric with [`set_distance`](PerturbableMetric::set_distance) applied:
//! reads return the override verbatim (or the base value bit-for-bit), and
//! [`Metric::accumulate_distances`] issues exactly one fused
//! `out[v] += factor · d(u, v)` per candidate. Rows without overrides
//! delegate straight to the base kernel; rows with overrides save the
//! overridden slots' incoming values, run the base kernel over the whole
//! row, and rewrite just those slots as `saved + factor · d_override` — so
//! every slot's final value is its incoming value plus exactly one fused
//! multiply-add, at clean-row cost plus `O(Δ_row)`.

use std::collections::HashMap;

use crate::{ElementId, Metric, PerturbableMetric};

/// Key of an overridden unordered pair, normalized to `(min, max)`.
#[inline]
fn pair_key(u: ElementId, v: ElementId) -> (ElementId, ElementId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// A [`Metric`] plus a sparse set of rewritten pairwise distances.
///
/// See the [module docs](self) for the equivalence contract.
#[derive(Debug, Clone)]
pub struct OverlayMetric<M> {
    inner: M,
    /// `(min, max) → d` for every rewritten pair.
    overrides: HashMap<(ElementId, ElementId), f64>,
    /// `u → sorted partners v` with an override on `{u, v}` (both
    /// directions), so the row sweep can tell override-free rows apart in
    /// O(1) and patch overridden slots in one ordered pass.
    partners: HashMap<ElementId, Vec<ElementId>>,
    /// `dirty_row[u]` ⟺ some override touches row `u`. Point reads on
    /// clean rows — the overwhelming majority under sparse perturbation —
    /// skip the hash lookup entirely (one indexed load instead), keeping
    /// per-candidate `distance` reads on shared-corpus sessions at the
    /// base metric's cost.
    dirty_row: Vec<bool>,
}

impl<M: Metric> OverlayMetric<M> {
    /// Wraps `inner` with an empty overlay (behaves exactly like `inner`).
    pub fn new(inner: M) -> Self {
        let n = inner.len();
        Self {
            inner,
            overrides: HashMap::new(),
            partners: HashMap::new(),
            dirty_row: vec![false; n],
        }
    }

    /// The wrapped base metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Consumes the overlay, returning the base metric.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Number of rewritten pairs.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// The overlay deltas: every rewritten pair `(u, v)` (with `u < v`)
    /// and its override distance, in unspecified order.
    ///
    /// This is the audit hook behind transactional rollback in
    /// `msd-core`: a checkpoint restores a session's overlay by clone,
    /// and the fault-injection suite asserts via this iterator that the
    /// restored delta set matches the pre-batch one exactly.
    pub fn overrides(&self) -> impl Iterator<Item = ((ElementId, ElementId), f64)> + '_ {
        self.overrides.iter().map(|(&pair, &d)| (pair, d))
    }

    /// The overlay deltas sorted by `(u, v)` key — the deterministic
    /// plain-old-data export behind tenant eviction snapshots in
    /// `msd-core`: replaying the returned triples through
    /// [`set_distance`](PerturbableMetric::set_distance) in order rebuilds
    /// an overlay with identical reads *and* identical sorted partner
    /// lists, so row sweeps on the re-attached tenant stay bit-identical.
    pub fn override_deltas(&self) -> Vec<(ElementId, ElementId, f64)> {
        let mut out: Vec<(ElementId, ElementId, f64)> = self
            .overrides
            .iter()
            .map(|(&(u, v), &d)| (u, v, d))
            .collect();
        out.sort_unstable_by_key(|&(u, v, _)| (u, v));
        out
    }

    /// Drops every override, reverting to the base metric.
    pub fn clear_overrides(&mut self) {
        self.overrides.clear();
        self.partners.clear();
        self.dirty_row.fill(false);
    }
}

impl<M: Metric> Metric for OverlayMetric<M> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        if u == v {
            return self.inner.distance(u, v); // keep base bounds checks
        }
        // Clean-row fast path: one indexed load instead of a hash probe.
        // Out-of-range `u` falls through to the base oracle's bounds check.
        if !self.dirty_row.get(u as usize).copied().unwrap_or(false) {
            return self.inner.distance(u, v);
        }
        match self.overrides.get(&pair_key(u, v)) {
            Some(&d) => d,
            None => self.inner.distance(u, v),
        }
    }

    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        // Same clean-row fast path as `distance`: override-free rows
        // delegate without touching the hash maps.
        if !self.dirty_row.get(u as usize).copied().unwrap_or(false) {
            return self.inner.accumulate_distances(u, out, factor);
        }
        match self.partners.get(&u) {
            None => self.inner.accumulate_distances(u, out, factor),
            Some(parts) => {
                let n = self.inner.len();
                assert!(out.len() >= n, "output buffer too small");
                // Save the overridden slots' incoming values, run the
                // base row kernel over the whole row (vectorized,
                // clean-row cost), then rewrite each overridden slot as
                // `saved + factor · d_override`. Every slot's final value
                // is its incoming value plus exactly one fused
                // `factor · d(u, v)`, so the result stays bit-identical
                // to a materialized perturbed copy while a dirty row
                // costs only `O(Δ_row)` over a clean one.
                let saved: Vec<f64> = parts.iter().map(|&v| out[v as usize]).collect();
                self.inner.accumulate_distances(u, out, factor);
                for (&v, &prev) in parts.iter().zip(&saved) {
                    out[v as usize] = prev + factor * self.overrides[&pair_key(u, v)];
                }
            }
        }
    }
}

impl<M: Metric> PerturbableMetric for OverlayMetric<M> {
    fn set_distance(&mut self, u: ElementId, v: ElementId, value: f64) -> f64 {
        assert!(u != v, "cannot set diagonal distance d({u},{u})");
        let n = self.inner.len();
        assert!((u as usize) < n && (v as usize) < n, "element out of range");
        assert!(
            value.is_finite() && value >= 0.0,
            "distance must be finite and non-negative"
        );
        let key = pair_key(u, v);
        match self.overrides.insert(key, value) {
            Some(prev) => prev,
            None => {
                // Partner lists stay sorted: iteration order (and with
                // it the row sweep's slot-rewrite order) is then
                // deterministic regardless of insertion history.
                for (row, partner) in [(u, v), (v, u)] {
                    let list = self.partners.entry(row).or_default();
                    if let Err(pos) = list.binary_search(&partner) {
                        list.insert(pos, partner);
                    }
                }
                self.dirty_row[u as usize] = true;
                self.dirty_row[v as usize] = true;
                self.inner.distance(u, v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceMatrix;

    fn base() -> DistanceMatrix {
        DistanceMatrix::from_fn(6, |u, v| 1.0 + f64::from(u + v) * 0.5)
    }

    #[test]
    fn empty_overlay_is_transparent() {
        let m = base();
        let o = OverlayMetric::new(m.clone());
        for u in 0..6u32 {
            let mut got = vec![0.0; 6];
            let mut want = vec![0.0; 6];
            o.accumulate_distances(u, &mut got, 2.5);
            m.accumulate_distances(u, &mut want, 2.5);
            assert_eq!(got, want);
            for v in 0..6u32 {
                assert_eq!(o.distance(u, v), m.distance(u, v));
            }
        }
        assert_eq!(o.override_count(), 0);
    }

    #[test]
    fn overlay_matches_materialized_perturbed_matrix_bitwise() {
        let mut dense = base();
        let mut o = OverlayMetric::new(base());
        let edits = [(0u32, 3u32, 9.25), (3, 5, 0.0), (0, 3, 4.5), (2, 1, 7.75)];
        for (u, v, d) in edits {
            let prev_dense = dense.distance(u, v);
            dense.set(u, v, d);
            assert_eq!(o.set_distance(u, v, d), prev_dense);
        }
        for u in 0..6u32 {
            let mut got = vec![0.5; 6];
            let mut want = vec![0.5; 6];
            o.accumulate_distances(u, &mut got, -1.75);
            dense.accumulate_distances(u, &mut want, -1.75);
            assert_eq!(got, want, "row {u}");
            for v in 0..6u32 {
                assert_eq!(o.distance(u, v), dense.distance(u, v), "({u},{v})");
            }
        }
        assert_eq!(o.override_count(), 3); // (0,3) rewritten twice
        o.clear_overrides();
        assert_eq!(o.distance(0, 3), base().distance(0, 3));
    }

    #[test]
    fn set_distance_returns_previous_override() {
        let mut o = OverlayMetric::new(base());
        let prev = o.set_distance(1, 4, 3.0);
        assert_eq!(prev, base().distance(1, 4));
        assert_eq!(o.set_distance(4, 1, 8.0), 3.0);
        assert_eq!(o.distance(1, 4), 8.0);
    }

    #[test]
    fn shared_arc_base_overlays_are_isolated() {
        // Two overlays over one `Arc` base: conflicting rewrites of the
        // same pair never leak across overlays or into the base.
        let base = std::sync::Arc::new(base());
        let mut a = OverlayMetric::new(std::sync::Arc::clone(&base));
        let mut b = OverlayMetric::new(std::sync::Arc::clone(&base));
        let original = base.distance(1, 4);
        assert_eq!(a.set_distance(1, 4, 2.0), original);
        assert_eq!(b.set_distance(4, 1, 9.0), original);
        assert_eq!(a.distance(1, 4), 2.0);
        assert_eq!(b.distance(1, 4), 9.0);
        assert_eq!(base.distance(1, 4), original);
        // Row kernels diverge per overlay, clean rows stay bit-identical.
        for u in 0..6u32 {
            let mut got_a = vec![0.0; 6];
            let mut got_b = vec![0.0; 6];
            a.accumulate_distances(u, &mut got_a, 1.5);
            b.accumulate_distances(u, &mut got_b, 1.5);
            if u != 1 && u != 4 {
                assert_eq!(got_a, got_b, "clean row {u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        let mut o = OverlayMetric::new(base());
        o.set_distance(2, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_distance_panics() {
        let mut o = OverlayMetric::new(base());
        o.set_distance(0, 1, -1.0);
    }
}
