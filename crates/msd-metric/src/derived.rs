//! Derived metrics: transformations of an existing metric that stay
//! metric.
//!
//! * [`ScaledMetric`] — `c·d` for `c > 0`.
//! * [`StarWeightMetric`] — `d'(u,v) = w(u) + w(v)` for non-negative
//!   weights (zero diagonal); satisfies the triangle inequality because
//!   `w(u) + w(v) ≤ (w(u) + w(y)) + (w(y) + w(v))`.
//! * [`GollapudiSharmaMetric`] — the reduction metric
//!   `d'(u, v) = w(u) + w(v) + 2λ·d(u, v)` from Section 4's discussion of
//!   Greedy A: a star-weight metric plus a scaled metric, hence a metric.
//!   Exposed so the reduction can be inspected, audited and reused — e.g.
//!   feeding it to any max-sum dispersion algorithm reproduces the
//!   Gollapudi–Sharma pipeline compositionally.

use crate::{ElementId, Metric};

/// `c · d` for a base metric `d` and constant `c > 0`.
#[derive(Debug, Clone)]
pub struct ScaledMetric<M> {
    base: M,
    factor: f64,
}

impl<M: Metric> ScaledMetric<M> {
    /// Scales `base` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn new(base: M, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive"
        );
        Self { base, factor }
    }

    /// The scale factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl<M: Metric> Metric for ScaledMetric<M> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.factor * self.base.distance(u, v)
    }
}

/// `d'(u, v) = w(u) + w(v)` for `u ≠ v`, zero on the diagonal.
#[derive(Debug, Clone)]
pub struct StarWeightMetric {
    weights: Vec<f64>,
}

impl StarWeightMetric {
    /// Builds from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite weights.
    pub fn new(weights: Vec<f64>) -> Self {
        for (u, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of element {u} must be finite and non-negative, got {w}"
            );
        }
        Self { weights }
    }

    /// The underlying weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Metric for StarWeightMetric {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        if u == v {
            0.0
        } else {
            self.weights[u as usize] + self.weights[v as usize]
        }
    }
}

/// The Gollapudi–Sharma reduction metric
/// `d'(u, v) = w(u) + w(v) + 2λ·d(u, v)`.
///
/// Maximizing the dispersion of `d'` over sets of fixed size `p` maximizes
/// `(p−1)·f(S) + 2λ·d(S)`, which is how Gollapudi and Sharma reduce
/// modular-quality diversification to pure dispersion. The reduction
/// breaks for general
/// submodular `f` — elements have no standalone weights — which is
/// Theorem 1's motivation.
#[derive(Debug, Clone)]
pub struct GollapudiSharmaMetric<M> {
    base: M,
    weights: Vec<f64>,
    lambda: f64,
}

impl<M: Metric> GollapudiSharmaMetric<M> {
    /// Builds the reduction metric.
    ///
    /// # Panics
    ///
    /// Panics if sizes mismatch, a weight is negative/non-finite, or `λ`
    /// is negative/non-finite.
    pub fn new(base: M, weights: Vec<f64>, lambda: f64) -> Self {
        assert_eq!(
            base.len(),
            weights.len(),
            "weights must cover the ground set"
        );
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative"
        );
        for (u, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of element {u} must be finite and non-negative, got {w}"
            );
        }
        Self {
            base,
            weights,
            lambda,
        }
    }
}

impl<M: Metric> Metric for GollapudiSharmaMetric<M> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        if u == v {
            0.0
        } else {
            self.weights[u as usize]
                + self.weights[v as usize]
                + 2.0 * self.lambda * self.base.distance(u, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMatrix, MetricAudit};

    fn base() -> DistanceMatrix {
        DistanceMatrix::from_fn(4, |u, v| 1.0 + f64::from(u + v) / 10.0)
    }

    #[test]
    fn scaled_metric_scales() {
        let m = ScaledMetric::new(base(), 2.0);
        assert_eq!(m.factor(), 2.0);
        assert_eq!(m.len(), 4);
        assert!((m.distance(0, 1) - 2.2).abs() < 1e-12);
        MetricAudit::check(&m).assert_metric();
    }

    #[test]
    fn star_weight_metric_is_a_metric() {
        let m = StarWeightMetric::new(vec![0.0, 1.0, 2.5, 0.3]);
        assert_eq!(m.distance(1, 2), 3.5);
        assert_eq!(m.distance(2, 2), 0.0);
        assert_eq!(m.weights()[2], 2.5);
        MetricAudit::check(&m).assert_metric();
    }

    #[test]
    fn gs_reduction_combines_weights_and_distance() {
        let m = GollapudiSharmaMetric::new(base(), vec![0.5, 1.0, 0.0, 0.2], 0.2);
        // d'(0,1) = 0.5 + 1.0 + 0.4·1.1
        assert!((m.distance(0, 1) - (1.5 + 0.4 * 1.1)).abs() < 1e-12);
        assert_eq!(m.distance(3, 3), 0.0);
        MetricAudit::check(&m).assert_metric();
    }

    #[test]
    fn gs_dispersion_equals_scaled_objective() {
        // Σ_{pairs of S} d'(u,v) = (|S|−1)·f(S) + 2λ·d(S).
        let weights = vec![0.5, 1.0, 0.0, 0.2];
        let lambda = 0.3;
        let d = base();
        let m = GollapudiSharmaMetric::new(d.clone(), weights.clone(), lambda);
        let set = [0u32, 1, 3];
        let f: f64 = set.iter().map(|&u| weights[u as usize]).sum();
        let expected = (set.len() as f64 - 1.0) * f + 2.0 * lambda * d.dispersion(&set);
        assert!((m.dispersion(&set) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_lambda_degenerates_to_star_weights() {
        let m = GollapudiSharmaMetric::new(base(), vec![1.0, 2.0, 3.0, 4.0], 0.0);
        assert_eq!(m.distance(0, 3), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ScaledMetric::new(base(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cover the ground set")]
    fn gs_size_mismatch_rejected() {
        let _ = GollapudiSharmaMetric::new(base(), vec![1.0], 0.2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn star_negative_weight_rejected() {
        let _ = StarWeightMetric::new(vec![-0.1]);
    }
}
