//! Sub-universe views of a metric under a local id remap.
//!
//! The composable-greedy and sharded-engine paths in `msd-core` repeatedly
//! solve the diversification problem restricted to a subset of the ground
//! set (one machine's shard, or the union of per-shard proposals).
//! [`RestrictedMetric`] is that restriction as a [`Metric`]: local element
//! `i` maps to global element `ids[i]`, and every distance is delegated to
//! the wrapped metric. Nothing is copied — the view is `O(|ids|)` memory on
//! top of the base metric, so restrictions of implicit metrics stay
//! implicit.

use crate::{ElementId, Metric};

/// A [`Metric`] over the sub-universe `{0, .., ids.len()-1}` where local
/// element `i` denotes global element `ids[i]` of the wrapped metric.
///
/// The order of `ids` defines the local indexing; `ids` need not be sorted.
#[derive(Debug, Clone)]
pub struct RestrictedMetric<M> {
    inner: M,
    ids: Vec<ElementId>,
}

impl<M: Metric> RestrictedMetric<M> {
    /// Builds the view. Every id must be in range for `inner`; duplicate
    /// ids are permitted but make the view a semi-metric (zero distances
    /// between distinct local elements).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range for `inner`.
    pub fn new(inner: M, ids: Vec<ElementId>) -> Self {
        let n = inner.len();
        assert!(
            ids.iter().all(|&u| (u as usize) < n),
            "restricted id out of range"
        );
        Self { inner, ids }
    }

    /// The global id of local element `u`.
    #[inline]
    pub fn global(&self, u: ElementId) -> ElementId {
        self.ids[u as usize]
    }

    /// The local → global id map.
    pub fn ids(&self) -> &[ElementId] {
        &self.ids
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Metric> Metric for RestrictedMetric<M> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.inner.distance(self.global(u), self.global(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceMatrix;

    #[test]
    fn view_remaps_ids_and_inherits_row_sweeps() {
        let dense = DistanceMatrix::from_fn(8, |u, v| f64::from(u * 10 + v));
        let view = RestrictedMetric::new(&dense, vec![6, 1, 4]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.distance(0, 1), dense.distance(6, 1));
        assert_eq!(view.distance(2, 0), dense.distance(4, 6));
        assert_eq!(view.distance(1, 1), 0.0);
        let mut out = vec![0.0; 3];
        view.accumulate_distances(0, &mut out, 1.0);
        assert_eq!(out, vec![0.0, dense.distance(6, 1), dense.distance(6, 4)]);
        assert_eq!(view.global(2), 4);
        assert_eq!(view.ids(), &[6, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let dense = DistanceMatrix::zeros(3);
        let _ = RestrictedMetric::new(&dense, vec![0, 3]);
    }
}
