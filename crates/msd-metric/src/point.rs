//! Dense feature points and the vector kernels used to derive metrics.
//!
//! Experiments in the paper derive distances from document feature vectors
//! (cosine similarity over LETOR features) or geometric coordinates. This
//! module holds the shared vector arithmetic; the metric wrappers live in
//! [`crate::functions`].

/// A dense point in `ℝ^dim`.
///
/// Coordinates are stored in a boxed slice — two words instead of `Vec`'s
/// three, and the dimension is fixed after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from raw coordinates.
    pub fn new(coords: impl Into<Vec<f64>>) -> Self {
        Self {
            coords: coords.into().into_boxed_slice(),
        }
    }

    /// The origin of `ℝ^dim`.
    pub fn origin(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim].into_boxed_slice(),
        }
    }

    /// Dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate access.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Mutable coordinate access.
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Euclidean (ℓ2) distance to another point.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn euclidean(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Manhattan (ℓ1) distance to another point.
    pub fn manhattan(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Chebyshev (ℓ∞) distance to another point.
    pub fn chebyshev(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Inner product `⟨self, other⟩`.
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm `‖self‖₂`.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Cosine similarity in `[-1, 1]`.
    ///
    /// Zero vectors have similarity 0 with everything (a conventional choice
    /// that keeps the derived cosine distance well defined on sparse data).
    pub fn cosine_similarity(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Cosine distance `1 − cos_sim`, the document distance used by the
    /// paper's LETOR experiments (Section 7.2).
    pub fn cosine_distance(&self, other: &Self) -> f64 {
        1.0 - self.cosine_similarity(other)
    }

    /// Angular distance `arccos(cos_sim) / π ∈ [0, 1]`.
    ///
    /// Unlike raw cosine distance, the angular distance is a true metric on
    /// the unit sphere; it is offered for applications that need exact
    /// triangle inequalities rather than the paper's cosine distance.
    pub fn angular_distance(&self, other: &Self) -> f64 {
        self.cosine_similarity(other).acos() / std::f64::consts::PI
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Self::new(v)
    }
}

impl From<&[f64]> for Point {
    fn from(v: &[f64]) -> Self {
        Self::new(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(cs: &[f64]) -> Point {
        Point::new(cs.to_vec())
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert_eq!(a.euclidean(&b), 5.0);
        assert_eq!(a.euclidean(&a), 0.0);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = p(&[1.0, 2.0, 3.0]);
        let b = p(&[4.0, 0.0, 3.5]);
        assert_eq!(a.manhattan(&b), 3.0 + 2.0 + 0.5);
        assert_eq!(a.chebyshev(&b), 3.0);
    }

    #[test]
    fn dot_and_norm() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[3.0, -1.0]);
        assert_eq!(a.dot(&b), 1.0);
        assert_eq!(p(&[3.0, 4.0]).norm(), 5.0);
    }

    #[test]
    fn cosine_similarity_of_parallel_vectors_is_one() {
        let a = p(&[1.0, 1.0]);
        let b = p(&[2.0, 2.0]);
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-12);
        assert!(a.cosine_distance(&b).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_of_orthogonal_vectors_is_zero() {
        let a = p(&[1.0, 0.0]);
        let b = p(&[0.0, 1.0]);
        assert!(a.cosine_similarity(&b).abs() < 1e-12);
        assert!((a.cosine_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero_similarity() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[1.0, 2.0]);
        assert_eq!(a.cosine_similarity(&b), 0.0);
        assert_eq!(a.cosine_distance(&b), 1.0);
    }

    #[test]
    fn angular_distance_bounds() {
        let a = p(&[1.0, 0.0]);
        let b = p(&[-1.0, 0.0]);
        assert!((a.angular_distance(&b) - 1.0).abs() < 1e-12);
        assert!(a.angular_distance(&a).abs() < 1e-7);
    }

    #[test]
    fn origin_is_zero() {
        let o = Point::origin(3);
        assert_eq!(o.dim(), 3);
        assert_eq!(o.coords(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn coords_mut_allows_in_place_update() {
        let mut a = p(&[1.0, 2.0]);
        a.coords_mut()[0] = 5.0;
        assert_eq!(a.coords(), &[5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let _ = p(&[1.0]).euclidean(&p(&[1.0, 2.0]));
    }

    #[test]
    fn conversions() {
        let a: Point = vec![1.0, 2.0].into();
        let b: Point = (&[1.0, 2.0][..]).into();
        assert_eq!(a, b);
    }
}
