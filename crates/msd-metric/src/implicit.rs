//! Implicit (compute-on-demand) point-backed metrics.
//!
//! Every dense path in this workspace bottoms out in [`DistanceMatrix`]'s
//! `n(n−1)/2` triangle — `O(n²)` memory, which caps instances at `n ≈ 10⁴`
//! (`n = 10⁶` would need ~4 TB). [`PointMetric`] breaks that wall: it keeps
//! only the `n·dim` feature coordinates and recomputes distances on demand,
//! so [`Metric::accumulate_distances`] — the one hot row sweep behind the
//! Birnbaum–Goldman gain caches — runs as a block-tiled kernel over the
//! coordinate rows instead of a triangle traversal.
//!
//! # Bit-identity contract
//!
//! `PointMetric` is *bit-identical* to the reference pipeline
//! `DistanceMatrix::from_metric(&functions::EuclideanMetric /* or cosine */)`:
//! every per-pair distance sums dimensions in increasing order with a single
//! `f64` accumulator (exactly like [`Point::euclidean`] /
//! [`Point::cosine_distance`]), and `accumulate_distances` issues exactly one
//! fused `out[v] += factor · d(u, v)` per candidate. The register-blocked
//! tiling below interleaves *candidates*, never the per-pair dimension order,
//! so greedy/local-search/session runs over a `PointMetric` select the same
//! elements as over the materialized matrix. The property suite in
//! `tests/proptests.rs` pins this down (odd tails, empty rows, negative
//! factors).
//!
//! # Bounded tile cache
//!
//! Point reads through [`Metric::distance`] cost `O(dim)`. Scans that
//! revisit the same rows (swap verification against the `p` members, the
//! candidate-cache probes of `msd-core`) can opt into a bounded LRU of
//! materialized row *tiles* ([`PointMetric::with_tile_cache`]): each tile
//! holds [`TILE_COLS`] consecutive distances of one row, so peak resident
//! distance storage is `max_tiles · TILE_COLS · 8` bytes — `o(n²)` by
//! construction and independent of `n`. `accumulate_distances` deliberately
//! streams past the cache (a full row sweep would evict everything useful).
//!
//! [`DistanceMatrix`]: crate::DistanceMatrix
//! [`Point::euclidean`]: crate::Point::euclidean
//! [`Point::cosine_distance`]: crate::Point::cosine_distance

use std::collections::HashMap;
use std::sync::Mutex;

use crate::point::Point;
use crate::{ElementId, Metric};

/// Distances per cached row tile (2 KiB of `f64`s per tile).
pub const TILE_COLS: usize = 256;

/// Candidate rows processed per register block of the tiled row kernel.
const BLOCK: usize = 8;

/// The vector kernel a [`PointMetric`] derives distances from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKernel {
    /// Euclidean (ℓ2) distance, matching [`Point::euclidean`].
    Euclidean,
    /// Cosine distance `1 − cos_sim`, matching [`Point::cosine_distance`]
    /// (zero vectors have similarity 0; the similarity is clamped to
    /// `[-1, 1]` before subtraction).
    Cosine,
}

/// Statistics of a [`PointMetric`]'s bounded tile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCacheStats {
    /// Point reads served from a resident tile.
    pub hits: u64,
    /// Point reads that materialized a new tile.
    pub misses: u64,
    /// Tiles currently resident.
    pub resident_tiles: usize,
    /// Maximum resident tiles (the LRU bound).
    pub capacity: usize,
    /// Distances per tile ([`TILE_COLS`]).
    pub tile_cols: usize,
}

impl TileCacheStats {
    /// Peak resident distance storage in bytes (`capacity · TILE_COLS · 8`).
    pub fn bound_bytes(&self) -> usize {
        self.capacity * self.tile_cols * std::mem::size_of::<f64>()
    }
}

/// One materialized row tile: distances `d(row, tile_start..tile_end)`.
#[derive(Debug)]
struct TileSlot {
    key: (ElementId, u32),
    vals: Box<[f64]>,
    /// Last-touch tick; eviction takes the minimum (exact LRU).
    tick: u64,
}

#[derive(Debug, Default)]
struct TileCacheInner {
    /// `(row, tile index) → slot` for resident tiles.
    map: HashMap<(ElementId, u32), usize>,
    slots: Vec<TileSlot>,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct TileCache {
    capacity: usize,
    inner: Mutex<TileCacheInner>,
}

/// An implicit metric over dense feature points: distances are recomputed
/// from coordinates on demand, so memory stays `O(n·dim)` instead of the
/// `O(n²)` of a materialized [`DistanceMatrix`](crate::DistanceMatrix).
///
/// See the [module docs](self) for the bit-identity contract and the
/// optional bounded tile cache.
#[derive(Debug)]
pub struct PointMetric {
    /// Row-major `n × dim` coordinates.
    coords: Vec<f64>,
    n: usize,
    dim: usize,
    kernel: PointKernel,
    /// Precomputed ℓ2 norms (cosine kernel only, else empty). Each equals
    /// [`Point::norm`] of the row bit-for-bit.
    norms: Vec<f64>,
    cache: Option<TileCache>,
}

impl Clone for PointMetric {
    /// Clones the coordinates and cache *configuration*; the clone starts
    /// with an empty tile cache (cached tiles are derived data).
    fn clone(&self) -> Self {
        Self {
            coords: self.coords.clone(),
            n: self.n,
            dim: self.dim,
            kernel: self.kernel,
            norms: self.norms.clone(),
            cache: self.cache.as_ref().map(|c| TileCache {
                capacity: c.capacity,
                inner: Mutex::new(TileCacheInner::default()),
            }),
        }
    }
}

impl PointMetric {
    /// Builds an implicit Euclidean metric over `points`.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn euclidean(points: &[Point]) -> Self {
        Self::from_points(points, PointKernel::Euclidean)
    }

    /// Builds an implicit cosine-distance metric over `points`.
    ///
    /// # Panics
    ///
    /// Panics if the points have inconsistent dimensions.
    pub fn cosine(points: &[Point]) -> Self {
        Self::from_points(points, PointKernel::Cosine)
    }

    fn from_points(points: &[Point], kernel: PointKernel) -> Self {
        let dim = points.first().map_or(0, Point::dim);
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.dim(), dim, "dimension mismatch");
            coords.extend_from_slice(p.coords());
        }
        Self::from_flat(kernel, points.len(), dim, coords)
    }

    /// Builds an implicit metric from row-major flat coordinates
    /// (`coords.len() == n · dim`), avoiding per-point allocations for
    /// large corpora.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != n · dim` or any coordinate is non-finite.
    pub fn from_flat(kernel: PointKernel, n: usize, dim: usize, coords: Vec<f64>) -> Self {
        assert_eq!(coords.len(), n * dim, "coords must be n·dim row-major");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "coordinates must be finite"
        );
        let norms = match kernel {
            PointKernel::Euclidean => Vec::new(),
            PointKernel::Cosine => (0..n)
                .map(|u| {
                    let row = &coords[u * dim..(u + 1) * dim];
                    // Same accumulation as Point::dot(self).sqrt().
                    row.iter().map(|a| a * a).sum::<f64>().sqrt()
                })
                .collect(),
        };
        Self {
            coords,
            n,
            dim,
            kernel,
            norms,
            cache: None,
        }
    }

    /// Enables a bounded LRU cache of materialized row tiles serving
    /// [`Metric::distance`] point reads (builder style). `max_tiles = 0`
    /// disables caching. Peak resident distance storage is
    /// `max_tiles · TILE_COLS` `f64`s regardless of `n`.
    pub fn with_tile_cache(mut self, max_tiles: usize) -> Self {
        self.cache = (max_tiles > 0).then(|| TileCache {
            capacity: max_tiles,
            inner: Mutex::new(TileCacheInner::default()),
        });
        self
    }

    /// The vector kernel in use.
    pub fn kernel(&self) -> PointKernel {
        self.kernel
    }

    /// Dimensionality of the backing points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row-major flat coordinates (`n × dim`).
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Tile cache statistics, or `None` when caching is disabled.
    pub fn tile_cache_stats(&self) -> Option<TileCacheStats> {
        self.cache.as_ref().map(|c| {
            let g = c.inner.lock().unwrap();
            TileCacheStats {
                hits: g.hits,
                misses: g.misses,
                resident_tiles: g.slots.len(),
                capacity: c.capacity,
                tile_cols: TILE_COLS,
            }
        })
    }

    /// Per-pair kernel, bit-identical to [`Point::euclidean`] /
    /// [`Point::cosine_distance`] on the backing rows (`u ≠ v`).
    #[inline]
    fn kernel_pair(&self, u: usize, v: usize) -> f64 {
        let a = &self.coords[u * self.dim..(u + 1) * self.dim];
        let b = &self.coords[v * self.dim..(v + 1) * self.dim];
        match self.kernel {
            PointKernel::Euclidean => {
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    acc += d * d;
                }
                acc.sqrt()
            }
            PointKernel::Cosine => {
                let mut dot = 0.0;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                }
                let denom = self.norms[u] * self.norms[v];
                let sim = if denom == 0.0 {
                    0.0
                } else {
                    (dot / denom).clamp(-1.0, 1.0)
                };
                1.0 - sim
            }
        }
    }

    /// Serves `d(u, v)` through the tile cache, materializing (and possibly
    /// evicting) a [`TILE_COLS`]-wide tile of row `u` on a miss. A resident
    /// transposed tile (row `v` covering column `u`) is used symmetrically.
    fn distance_cached(&self, cache: &TileCache, u: usize, v: usize) -> f64 {
        let key = (u as ElementId, (v / TILE_COLS) as u32);
        let mirror = (v as ElementId, (u / TILE_COLS) as u32);
        let mut g = cache.inner.lock().unwrap();
        g.tick += 1;
        let tick = g.tick;
        if let Some(&slot) = g.map.get(&key) {
            g.hits += 1;
            g.slots[slot].tick = tick;
            return g.slots[slot].vals[v % TILE_COLS];
        }
        if let Some(&slot) = g.map.get(&mirror) {
            g.hits += 1;
            g.slots[slot].tick = tick;
            return g.slots[slot].vals[u % TILE_COLS];
        }
        g.misses += 1;
        let start = key.1 as usize * TILE_COLS;
        let end = (start + TILE_COLS).min(self.n);
        let vals: Box<[f64]> = (start..end)
            .map(|w| if w == u { 0.0 } else { self.kernel_pair(u, w) })
            .collect();
        let slot = if g.slots.len() < cache.capacity {
            g.slots.push(TileSlot { key, vals, tick });
            g.slots.len() - 1
        } else {
            // Exact LRU: evict the minimum-tick slot. The linear scan is
            // dwarfed by the TILE_COLS·dim flops of the materialization.
            let victim = g
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.tick)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            let old = g.slots[victim].key;
            g.map.remove(&old);
            g.slots[victim] = TileSlot { key, vals, tick };
            victim
        };
        g.map.insert(key, slot);
        g.slots[slot].vals[v % TILE_COLS]
    }
}

impl Metric for PointMetric {
    fn len(&self) -> usize {
        self.n
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        let (u, v) = (u as usize, v as usize);
        assert!(u < self.n && v < self.n, "element out of range");
        if u == v {
            return 0.0;
        }
        match &self.cache {
            Some(cache) => self.distance_cached(cache, u, v),
            None => self.kernel_pair(u, v),
        }
    }

    /// Block-tiled row sweep: candidates are processed `BLOCK` rows at a
    /// time so the pivot row is loaded once per block and the `BLOCK`
    /// accumulators stay in registers. Per-candidate dimension order is
    /// sequential, so every written value is bit-identical to
    /// `factor · kernel(u, v)` — see the module docs. Streams past the tile
    /// cache by design.
    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        let n = self.n;
        let dim = self.dim;
        let u = u as usize;
        assert!(u < n, "element out of range");
        assert!(out.len() >= n, "output buffer too small");
        let a = &self.coords[u * dim..(u + 1) * dim];
        let mut v0 = 0;
        while v0 < n {
            let bl = BLOCK.min(n - v0);
            let rows = &self.coords[v0 * dim..(v0 + bl) * dim];
            let mut acc = [0.0f64; BLOCK];
            match self.kernel {
                PointKernel::Euclidean => {
                    for (k, &ak) in a.iter().enumerate() {
                        for (j, accj) in acc[..bl].iter_mut().enumerate() {
                            let d = ak - rows[j * dim + k];
                            *accj += d * d;
                        }
                    }
                    for (j, &accj) in acc[..bl].iter().enumerate() {
                        let v = v0 + j;
                        if v != u {
                            out[v] += factor * accj.sqrt();
                        }
                    }
                }
                PointKernel::Cosine => {
                    for (k, &ak) in a.iter().enumerate() {
                        for (j, accj) in acc[..bl].iter_mut().enumerate() {
                            *accj += ak * rows[j * dim + k];
                        }
                    }
                    let nu = self.norms[u];
                    for (j, &dot) in acc[..bl].iter().enumerate() {
                        let v = v0 + j;
                        if v == u {
                            continue;
                        }
                        let denom = nu * self.norms[v];
                        let sim = if denom == 0.0 {
                            0.0
                        } else {
                            (dot / denom).clamp(-1.0, 1.0)
                        };
                        out[v] += factor * (1.0 - sim);
                    }
                }
            }
            v0 += bl;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{CosineMetric, EuclideanMetric};
    use crate::DistanceMatrix;

    fn sample_points(n: usize, dim: usize) -> Vec<Point> {
        (0..n)
            .map(|u| {
                Point::new(
                    (0..dim)
                        .map(|k| ((u * 31 + k * 7) % 17) as f64 * 0.25 - 2.0)
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    #[test]
    fn euclidean_matches_lazy_wrapper_bitwise() {
        let pts = sample_points(13, 5);
        let implicit = PointMetric::euclidean(&pts);
        let lazy = EuclideanMetric::new(pts);
        for u in 0..13u32 {
            for v in 0..13u32 {
                if u == v {
                    assert_eq!(implicit.distance(u, v), 0.0);
                } else {
                    assert_eq!(implicit.distance(u, v), lazy.distance(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn cosine_matches_lazy_wrapper_off_diagonal() {
        let pts = sample_points(11, 4);
        let implicit = PointMetric::cosine(&pts);
        let lazy = CosineMetric::new(pts);
        for u in 0..11u32 {
            for v in 0..11u32 {
                if u != v {
                    assert_eq!(implicit.distance(u, v), lazy.distance(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn accumulate_is_bit_identical_to_materialized_matrix() {
        for (n, dim) in [(1usize, 3usize), (7, 1), (8, 4), (9, 4), (23, 6)] {
            let pts = sample_points(n, dim);
            for metric in [PointMetric::euclidean(&pts), PointMetric::cosine(&pts)] {
                let dense = DistanceMatrix::from_metric(&metric);
                for u in 0..n as ElementId {
                    let mut got = vec![0.1; n];
                    let mut want = vec![0.1; n];
                    metric.accumulate_distances(u, &mut got, -0.75);
                    dense.accumulate_distances(u, &mut want, -0.75);
                    assert_eq!(got, want, "n={n} dim={dim} u={u}");
                }
            }
        }
    }

    #[test]
    fn tile_cache_serves_identical_values_and_stays_bounded() {
        let pts = sample_points(40, 3);
        let plain = PointMetric::euclidean(&pts);
        let cached = PointMetric::euclidean(&pts).with_tile_cache(2);
        for round in 0..3 {
            for u in 0..40u32 {
                for v in 0..40u32 {
                    assert_eq!(cached.distance(u, v), plain.distance(u, v), "r{round}");
                }
            }
        }
        let stats = cached.tile_cache_stats().unwrap();
        assert!(stats.resident_tiles <= 2);
        assert!(stats.hits > 0 && stats.misses > 0);
        assert_eq!(stats.bound_bytes(), 2 * TILE_COLS * 8);
    }

    #[test]
    fn tile_cache_uses_transposed_tiles() {
        let pts = sample_points(10, 2);
        let m = PointMetric::euclidean(&pts).with_tile_cache(4);
        let d1 = m.distance(3, 7);
        let before = m.tile_cache_stats().unwrap();
        let d2 = m.distance(7, 3); // row 7 tile absent; mirror (row 3) resident
        let after = m.tile_cache_stats().unwrap();
        assert_eq!(d1, d2);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn clone_resets_cache_but_keeps_configuration() {
        let pts = sample_points(6, 2);
        let m = PointMetric::euclidean(&pts).with_tile_cache(3);
        let _ = m.distance(0, 5);
        let c = m.clone();
        let stats = c.tile_cache_stats().unwrap();
        assert_eq!(stats.resident_tiles, 0);
        assert_eq!(stats.capacity, 3);
        assert_eq!(c.distance(0, 5), m.distance(0, 5));
    }

    #[test]
    fn zero_dim_and_zero_vectors_are_well_defined() {
        let m = PointMetric::from_flat(PointKernel::Cosine, 3, 0, Vec::new());
        assert_eq!(m.distance(0, 0), 0.0);
        assert_eq!(m.distance(0, 1), 1.0); // zero vectors: sim 0 → d = 1
        let e = PointMetric::from_flat(PointKernel::Euclidean, 2, 0, Vec::new());
        assert_eq!(e.distance(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "coords must be n·dim")]
    fn flat_length_mismatch_panics() {
        let _ = PointMetric::from_flat(PointKernel::Euclidean, 3, 2, vec![0.0; 5]);
    }
}
