//! Dynamic graph metrics: edge-weight updates with incremental
//! all-pairs-shortest-path repair.
//!
//! The dispersion problems of the paper originate in location theory on
//! networks, where the metric is *induced*: `d(u, v)` is the length of
//! the shortest path between `u` and `v` in a weighted graph. Under that
//! model the realistic perturbation is not a single distance rewrite but
//! an **edge-weight change** — one road gets congested — which moves many
//! pairwise distances at once.
//!
//! [`DynamicGraphMetric`] owns a weighted undirected graph *and* its
//! materialized APSP [`DistanceMatrix`], and keeps the two consistent
//! under [`set_edge`](DynamicGraphMetric::set_edge) /
//! [`remove_edge`](DynamicGraphMetric::remove_edge) without paying the
//! O(n³) Floyd–Warshall rebuild per update:
//!
//! * **decrease** (including inserting a new edge) — the classic
//!   incremental relaxation: first the two endpoint rows are relaxed
//!   through the cheaper edge in O(n), then only *tight* sources — the
//!   vertices some shortest path of which to `u` or `v` now runs over the
//!   edge (`d'(i,u) + w == d'(i,v)` or vice versa) — rescan their row
//!   with the three-term relaxation
//!   `min(d(i,j), d'(i,u)+w+d'(v,j), d'(i,v)+w+d'(u,j))`. Every pair a
//!   decrease can move satisfies the tightness test at its source, so the
//!   pass is exact in O(n + affected·n).
//! * **increase / removal** — only rows whose current shortest path may
//!   *use* the edge can grow. The compact usage witness is the same
//!   tightness test evaluated on the **old** matrix with the **old**
//!   weight (a shortest `i → j` path crossing `u → v` makes the edge
//!   tight on `i → v`): non-tight rows are skipped in O(1), tight rows
//!   are recomputed by a Dijkstra sweep over the updated adjacency in
//!   O(deg log n) per settled vertex. Above a churn threshold (more than
//!   half the rows affected) the repair falls back to recomputing every
//!   row — still the sparse-graph O(n·m log n), never the dense cube.
//!
//! Every repair returns an [`EdgeUpdateReport`] listing the exact set of
//! changed `(i, j)` pairs with their old and new distances — the O(Δ)
//! patch stream the persistent `DynamicSession` in `msd-core` consumes to
//! repair its Birnbaum–Goldman gain caches without a rebuild (see the
//! [`EdgePerturbableMetric`] trait).
//!
//! # Exactness
//!
//! All repair strategies compute true shortest-path lengths; with edge
//! weights whose path sums are exact in `f64` (e.g. dyadic rationals, as
//! produced by `msd-data`'s graph generators) the repaired matrix is
//! **bit-identical** to a from-scratch [`WeightedGraph`] Floyd–Warshall
//! rebuild — asserted across random edge scripts by the equivalence suite
//! in `msd-bench`. With arbitrary weights the two can differ by ulps on
//! equal-length alternative paths (different summation order), exactly
//! like any two shortest-path algorithms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::DisconnectedGraph;
use crate::{DistanceMatrix, ElementId, Metric, WeightedGraph};

/// One repaired pairwise distance: `d(u, v)` moved from `old` to `new`
/// (`u < v` normalized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceChange {
    /// Smaller endpoint.
    pub u: ElementId,
    /// Larger endpoint.
    pub v: ElementId,
    /// Distance before the edge update.
    pub old: f64,
    /// Distance after the edge update.
    pub new: f64,
}

/// Which repair strategy an edge update took (diagnostics; the `changed`
/// list is authoritative either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// The update provably moved no distance (same weight, or the edge
    /// was on no shortest path): O(1)–O(n) witness work, no row scans.
    Untouched,
    /// Edge decrease: endpoint-row relaxation plus a three-term
    /// relaxation over the rows of the recorded number of tight sources.
    Relaxed {
        /// Sources whose rows were rescanned.
        sources: usize,
    },
    /// Edge increase/removal: Dijkstra recomputation of the recorded
    /// number of edge-using rows.
    Rescanned {
        /// Rows recomputed from scratch.
        rows: usize,
    },
    /// Churn above threshold: every row recomputed (sparse-graph full
    /// rebuild, still far below the dense Floyd–Warshall cube).
    Rebuilt,
}

/// Outcome of one [`DynamicGraphMetric::set_edge`] /
/// [`DynamicGraphMetric::remove_edge`]: the exact set of pairwise
/// distances the update moved, plus the strategy that repaired them.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeUpdateReport {
    /// Every `(i, j)` pair whose shortest-path distance changed, with old
    /// and new values (`old != new`, `i < j`, each pair at most once).
    pub changed: Vec<DistanceChange>,
    /// How the repair ran.
    pub strategy: RepairStrategy,
}

impl EdgeUpdateReport {
    fn untouched() -> Self {
        Self {
            changed: Vec::new(),
            strategy: RepairStrategy::Untouched,
        }
    }
}

/// Typed rejection of an edge perturbation.
///
/// Every variant leaves the metric **unchanged** — a rejected update can
/// never corrupt the APSP matrix, so callers ingesting untrusted edge
/// streams keep serving from the pre-update metric. Until PR 8 the
/// malformed-input variants were `assert!` panics deep inside
/// [`DynamicGraphMetric`]; a typed error is what lets a multi-tenant
/// frontend reject one tenant's poisoned batch without taking the
/// process down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeUpdateError {
    /// Removing the edge would disconnect the graph: no finite induced
    /// metric exists. Carries the witness pair.
    Disconnected(DisconnectedGraph),
    /// The edge weight is NaN, infinite, or negative — admitting it would
    /// poison every shortest path through the edge.
    InvalidWeight {
        /// Edge endpoints as submitted.
        u: ElementId,
        /// Second endpoint.
        v: ElementId,
        /// The offending weight.
        weight: f64,
    },
    /// An endpoint lies outside the ground set `0..n`.
    EndpointOutOfRange {
        /// Edge endpoints as submitted.
        u: ElementId,
        /// Second endpoint.
        v: ElementId,
        /// Ground-set size.
        n: usize,
    },
    /// `u == v` — self-loops have no metric meaning.
    SelfLoop {
        /// The repeated endpoint.
        u: ElementId,
    },
    /// [`EdgePerturbableMetric::remove_edge`] on a pair with no edge.
    MissingEdge {
        /// Edge endpoints as submitted.
        u: ElementId,
        /// Second endpoint.
        v: ElementId,
    },
}

impl std::fmt::Display for EdgeUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Disconnected(e) => e.fmt(f),
            Self::InvalidWeight { u, v, weight } => write!(
                f,
                "edge weight {weight} for {{{u}, {v}}} must be finite and non-negative"
            ),
            Self::EndpointOutOfRange { u, v, n } => {
                write!(f, "edge endpoint out of range: {{{u}, {v}}} with n = {n}")
            }
            Self::SelfLoop { u } => write!(f, "self-loop {{{u}, {u}}} has no metric meaning"),
            Self::MissingEdge { u, v } => write!(f, "no edge between {u} and {v} to remove"),
        }
    }
}

impl std::error::Error for EdgeUpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Disconnected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DisconnectedGraph> for EdgeUpdateError {
    fn from(e: DisconnectedGraph) -> Self {
        Self::Disconnected(e)
    }
}

/// A metric whose distances are induced by an updatable structure (a
/// weighted graph) rather than stored per pair: one edge update moves a
/// whole *set* of pairwise distances and reports it.
///
/// This is the graph-world counterpart of [`crate::PerturbableMetric`]'s
/// mutation-with-notification contract: the returned
/// [`EdgeUpdateReport::changed`] list carries the exact `old → new` delta
/// of every moved pair, so an incremental consumer (the graph-backed
/// `DynamicSession` in `msd-core`) repairs its caches in O(Δ) instead of
/// rebuilding. Implementations must keep the [`Metric`] axioms; induced
/// shortest-path metrics satisfy the triangle inequality by construction.
pub trait EdgePerturbableMetric: Metric {
    /// Sets the weight of the undirected edge `{u, v}` (inserting it if
    /// absent), repairs the induced metric, and reports every moved pair.
    ///
    /// # Errors
    ///
    /// Rejects NaN / infinite / negative weights, out-of-range endpoints,
    /// and self-loops with a typed [`EdgeUpdateError`], leaving the
    /// metric **unchanged**. (Shortest-path metrics never disconnect on a
    /// weight change; the [`EdgeUpdateError::Disconnected`] variant is
    /// shared with [`remove_edge`](Self::remove_edge).)
    fn set_edge(
        &mut self,
        u: ElementId,
        v: ElementId,
        weight: f64,
    ) -> Result<EdgeUpdateReport, EdgeUpdateError>;

    /// Removes the edge `{u, v}`, repairs the induced metric, and reports
    /// every moved pair.
    ///
    /// # Errors
    ///
    /// Returns an error — leaving the metric **unchanged** — when the
    /// removal would disconnect the graph (no finite metric exists), the
    /// edge does not exist, or the endpoints are invalid.
    fn remove_edge(
        &mut self,
        u: ElementId,
        v: ElementId,
    ) -> Result<EdgeUpdateReport, EdgeUpdateError>;
}

/// Min-heap entry for the Dijkstra sweeps (finite non-negative keys, so
/// `total_cmp` is a proper order).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: ElementId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the smallest
        // distance (ties by larger vertex first — irrelevant to the
        // computed values, which are tie-break-independent).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A weighted undirected graph bundled with its materialized APSP
/// [`DistanceMatrix`], kept consistent under edge updates by incremental
/// repair (see the module docs).
///
/// Parallel edges of the source [`WeightedGraph`] are collapsed to the
/// lightest at construction; thereafter `{u, v}` identifies a unique
/// edge. The ground set is the vertex set; [`Metric`] queries (including
/// the batched [`Metric::accumulate_distances`] row kernel) delegate to
/// the dense matrix, so a graph-backed solver pays no per-read penalty
/// over a plain [`DistanceMatrix`].
#[derive(Debug, Clone)]
pub struct DynamicGraphMetric {
    n: usize,
    /// Adjacency lists, symmetric: `adj[u]` holds `(v, w)` iff `adj[v]`
    /// holds `(u, w)`.
    adj: Vec<Vec<(ElementId, f64)>>,
    /// Materialized APSP metric, repaired in place on edge updates.
    dist: DistanceMatrix,
    num_edges: usize,
}

impl DynamicGraphMetric {
    /// Builds the metric from a connected graph: collapses parallel
    /// edges to the lightest and materializes the APSP matrix by one
    /// Dijkstra sweep per vertex — O(n·m log n), the sparse-graph
    /// counterpart of [`WeightedGraph::shortest_path_metric`].
    ///
    /// # Errors
    ///
    /// Returns the same witness error as
    /// [`WeightedGraph::shortest_path_metric`] when some pair is
    /// unreachable.
    pub fn from_graph(graph: &WeightedGraph) -> Result<Self, DisconnectedGraph> {
        let n = graph.len();
        let mut adj: Vec<Vec<(ElementId, f64)>> = vec![Vec::new(); n];
        let mut num_edges = 0usize;
        for &(u, v, w) in graph.edges() {
            let (u, v) = (u as usize, v as usize);
            // Collapse parallel edges, keeping the lightest.
            match adj[u].iter_mut().find(|(x, _)| *x as usize == v) {
                Some(entry) if entry.1 <= w => {}
                Some(entry) => {
                    entry.1 = w;
                    let back = adj[v]
                        .iter_mut()
                        .find(|(x, _)| *x as usize == u)
                        .expect("symmetric adjacency");
                    back.1 = w;
                }
                None => {
                    adj[u].push((v as ElementId, w));
                    adj[v].push((u as ElementId, w));
                    num_edges += 1;
                }
            }
        }
        let mut metric = Self {
            n,
            adj,
            dist: DistanceMatrix::zeros(n),
            num_edges,
        };
        let mut row = vec![0.0; n];
        for i in 0..n {
            metric.dijkstra_row(i as ElementId, &mut row);
            for (j, &d) in row.iter().enumerate().skip(i + 1) {
                if d.is_infinite() {
                    return Err(DisconnectedGraph {
                        u: i as ElementId,
                        v: j as ElementId,
                    });
                }
                metric.dist.set(i as ElementId, j as ElementId, d);
            }
        }
        Ok(metric)
    }

    /// The materialized APSP matrix (always consistent with the graph).
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Number of (collapsed, undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Current weight of the edge `{u, v}`, or `None` when absent.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    pub fn edge_weight(&self, u: ElementId, v: ElementId) -> Option<f64> {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge endpoint out of range"
        );
        self.adj[u as usize]
            .iter()
            .find(|(x, _)| *x == v)
            .map(|&(_, w)| w)
    }

    /// All edges as `(u, v, w)` with `u < v`, in adjacency order.
    pub fn edges(&self) -> Vec<(ElementId, ElementId, f64)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, w) in list {
                if (u as ElementId) < v {
                    out.push((u as ElementId, v, w));
                }
            }
        }
        out
    }

    /// Single-source shortest paths from `s` over the current adjacency,
    /// written into `out` (`∞` for unreachable vertices).
    fn dijkstra_row(&self, s: ElementId, out: &mut [f64]) {
        out[..self.n].fill(f64::INFINITY);
        out[s as usize] = 0.0;
        let mut heap = BinaryHeap::with_capacity(self.n.min(64));
        heap.push(HeapEntry {
            dist: 0.0,
            vertex: s,
        });
        while let Some(HeapEntry { dist, vertex }) = heap.pop() {
            if dist > out[vertex as usize] {
                continue; // stale heap entry
            }
            for &(next, w) in &self.adj[vertex as usize] {
                let through = dist + w;
                if through < out[next as usize] {
                    out[next as usize] = through;
                    heap.push(HeapEntry {
                        dist: through,
                        vertex: next,
                    });
                }
            }
        }
    }

    /// Writes `value` into the matrix iff it differs from the stored
    /// distance, recording the move. Idempotent re-relaxations of the
    /// same pair (both endpoints affected) become no-ops, so `changed`
    /// carries each pair at most once with `old` = the pre-update value.
    fn record(
        changed: &mut Vec<DistanceChange>,
        dist: &mut DistanceMatrix,
        i: ElementId,
        j: ElementId,
        value: f64,
    ) {
        let old = dist.distance(i, j);
        if value != old {
            dist.set(i, j, value);
            let (u, v) = if i < j { (i, j) } else { (j, i) };
            changed.push(DistanceChange {
                u,
                v,
                old,
                new: value,
            });
        }
    }

    /// Upserts the adjacency entry for `{u, v}`; returns the previous
    /// weight.
    fn upsert_adjacency(&mut self, u: ElementId, v: ElementId, w: f64) -> Option<f64> {
        let mut old = None;
        for (a, b) in [(u, v), (v, u)] {
            match self.adj[a as usize].iter_mut().find(|(x, _)| *x == b) {
                Some(entry) => old = Some(std::mem::replace(&mut entry.1, w)),
                None => self.adj[a as usize].push((b, w)),
            }
        }
        if old.is_none() {
            self.num_edges += 1;
        }
        old
    }

    /// Drops the adjacency entry for `{u, v}`; returns the removed
    /// weight.
    fn drop_adjacency(&mut self, u: ElementId, v: ElementId) -> Option<f64> {
        let mut old = None;
        for (a, b) in [(u, v), (v, u)] {
            if let Some(idx) = self.adj[a as usize].iter().position(|(x, _)| *x == b) {
                old = Some(self.adj[a as usize].swap_remove(idx).1);
            }
        }
        if old.is_some() {
            self.num_edges -= 1;
        }
        old
    }

    /// `true` when every vertex is reachable from `s` over the current
    /// adjacency, ignoring the edge `{skip_u, skip_v}` (connectivity is
    /// weight-independent, so a plain DFS suffices).
    fn connected_without(&self, s: ElementId, skip_u: ElementId, skip_v: ElementId) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![s];
        seen[s as usize] = true;
        let mut reached = 1usize;
        while let Some(x) = stack.pop() {
            for &(y, _) in &self.adj[x as usize] {
                let skipped = (x == skip_u && y == skip_v) || (x == skip_v && y == skip_u);
                if !skipped && !seen[y as usize] {
                    seen[y as usize] = true;
                    reached += 1;
                    stack.push(y);
                }
            }
        }
        reached == self.n
    }

    /// Decrease repair (also covers inserting a new edge): endpoint rows
    /// first, then the three-term relaxation over tight sources only.
    fn repair_decrease(&mut self, u: ElementId, v: ElementId, w: f64) -> EdgeUpdateReport {
        let n = self.n;
        let mut changed = Vec::new();
        // New endpoint rows, relaxed through the cheaper edge. At most
        // one of the two relaxations fires per source (both would imply
        // d(i,v) + 2w < d(i,v)), so reading the stored rows is safe.
        let mut du = vec![0.0; n];
        let mut dv = vec![0.0; n];
        for i in 0..n as ElementId {
            let (a, b) = (self.dist.distance(i, u), self.dist.distance(i, v));
            du[i as usize] = a.min(b + w);
            dv[i as usize] = b.min(a + w);
        }
        for i in 0..n as ElementId {
            if i != u {
                Self::record(&mut changed, &mut self.dist, i, u, du[i as usize]);
            }
            if i != v {
                Self::record(&mut changed, &mut self.dist, i, v, dv[i as usize]);
            }
        }
        // A pair (i, j) off the endpoint rows can only drop if its new
        // shortest path crosses the edge, which makes the edge tight on
        // i's (new) path to one endpoint: d'(i,u) + w == d'(i,v) or the
        // mirror. Non-tight sources are skipped whole.
        let mut sources = 0usize;
        for i in 0..n as ElementId {
            if i == u || i == v {
                continue;
            }
            let (a, b) = (du[i as usize], dv[i as usize]);
            if a + w != b && b + w != a {
                continue;
            }
            sources += 1;
            for j in 0..n as ElementId {
                if j == i || j == u || j == v {
                    continue;
                }
                let through = (a + w + dv[j as usize]).min(b + w + du[j as usize]);
                if through < self.dist.distance(i, j) {
                    Self::record(&mut changed, &mut self.dist, i, j, through);
                }
            }
        }
        EdgeUpdateReport {
            changed,
            strategy: RepairStrategy::Relaxed { sources },
        }
    }

    /// Increase/removal repair: usage-witness row selection on the old
    /// matrix, then Dijkstra per affected row (or all rows above the
    /// churn threshold). The adjacency must already hold the new weight
    /// (or have the edge dropped) when this runs.
    fn repair_increase(&mut self, u: ElementId, v: ElementId, old_w: f64) -> EdgeUpdateReport {
        let n = self.n;
        // Usage witness on the OLD matrix with the OLD weight: a shortest
        // i → j path crossing u → v makes the edge tight on i → v (its
        // i → u prefix is itself shortest), so non-tight rows cannot
        // move.
        let affected: Vec<ElementId> = (0..n as ElementId)
            .filter(|&i| {
                let (a, b) = (self.dist.distance(i, u), self.dist.distance(i, v));
                a + old_w == b || b + old_w == a
            })
            .collect();
        if affected.is_empty() {
            return EdgeUpdateReport::untouched();
        }
        let rebuild = affected.len() * 2 > n;
        let mut changed = Vec::new();
        let mut row = vec![0.0; n];
        let rows: Box<dyn Iterator<Item = ElementId>> = if rebuild {
            Box::new(0..n as ElementId)
        } else {
            Box::new(affected.iter().copied())
        };
        for i in rows {
            self.dijkstra_row(i, &mut row);
            for (j, &d) in row.iter().enumerate() {
                if j as ElementId != i {
                    debug_assert!(d.is_finite(), "disconnection must be pre-checked");
                    Self::record(&mut changed, &mut self.dist, i, j as ElementId, d);
                }
            }
        }
        EdgeUpdateReport {
            changed,
            strategy: if rebuild {
                RepairStrategy::Rebuilt
            } else {
                RepairStrategy::Rescanned {
                    rows: affected.len(),
                }
            },
        }
    }

    fn check_endpoints(&self, u: ElementId, v: ElementId) -> Result<(), EdgeUpdateError> {
        if (u as usize) >= self.n || (v as usize) >= self.n {
            return Err(EdgeUpdateError::EndpointOutOfRange { u, v, n: self.n });
        }
        if u == v {
            return Err(EdgeUpdateError::SelfLoop { u });
        }
        Ok(())
    }
}

impl EdgePerturbableMetric for DynamicGraphMetric {
    fn set_edge(
        &mut self,
        u: ElementId,
        v: ElementId,
        weight: f64,
    ) -> Result<EdgeUpdateReport, EdgeUpdateError> {
        self.check_endpoints(u, v)?;
        if !(weight.is_finite() && weight >= 0.0) {
            // Rejected before any adjacency or APSP mutation: one NaN
            // admitted here would propagate through every Dijkstra relax.
            return Err(EdgeUpdateError::InvalidWeight { u, v, weight });
        }
        match self.edge_weight(u, v) {
            Some(old) if weight == old => Ok(EdgeUpdateReport::untouched()),
            Some(old) if weight > old => {
                self.upsert_adjacency(u, v, weight);
                Ok(self.repair_increase(u, v, old))
            }
            _ => {
                // New edge (effective old weight ∞) or a decrease.
                self.upsert_adjacency(u, v, weight);
                Ok(self.repair_decrease(u, v, weight))
            }
        }
    }

    fn remove_edge(
        &mut self,
        u: ElementId,
        v: ElementId,
    ) -> Result<EdgeUpdateReport, EdgeUpdateError> {
        self.check_endpoints(u, v)?;
        let Some(old) = self.edge_weight(u, v) else {
            return Err(EdgeUpdateError::MissingEdge { u, v });
        };
        if !self.connected_without(u, u, v) {
            // The metric is untouched; the caller may keep using it.
            return Err(EdgeUpdateError::Disconnected(DisconnectedGraph {
                u: u.min(v),
                v: u.max(v),
            }));
        }
        self.drop_adjacency(u, v);
        Ok(self.repair_increase(u, v, old))
    }
}

impl Metric for DynamicGraphMetric {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.dist.distance(u, v)
    }

    fn distance_to_set(&self, u: ElementId, set: &[ElementId]) -> f64 {
        self.dist.distance_to_set(u, set)
    }

    fn dispersion(&self, set: &[ElementId]) -> f64 {
        self.dist.dispersion(set)
    }

    fn cross_dispersion(&self, xs: &[ElementId], ys: &[ElementId]) -> f64 {
        self.dist.cross_dispersion(xs, ys)
    }

    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        self.dist.accumulate_distances(u, out, factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricAudit;

    /// 0 -1- 1 -2- 2 -3- 3 path plus a 0-3 chord of weight 2.5.
    fn diamond() -> WeightedGraph {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0)
            .add_edge(0, 3, 2.5);
        g
    }

    fn assert_matches_rebuild(metric: &DynamicGraphMetric) {
        let mut g = WeightedGraph::new(metric.len());
        for (u, v, w) in metric.edges() {
            g.add_edge(u, v, w);
        }
        let rebuilt = g.shortest_path_metric().expect("connected");
        assert_eq!(
            metric.matrix().triangle(),
            rebuilt.triangle(),
            "repaired matrix diverged from the Floyd–Warshall rebuild"
        );
    }

    #[test]
    fn construction_matches_floyd_warshall() {
        let metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        assert_eq!(metric.len(), 4);
        assert_eq!(metric.num_edges(), 4);
        assert_eq!(metric.distance(0, 3), 2.5);
        assert_eq!(metric.distance(0, 2), 3.0);
        assert_matches_rebuild(&metric);
        MetricAudit::check(&metric).assert_metric();
    }

    #[test]
    fn construction_collapses_parallel_edges() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 5.0)
            .add_edge(1, 0, 2.0)
            .add_edge(0, 1, 9.0);
        let metric = DynamicGraphMetric::from_graph(&g).unwrap();
        assert_eq!(metric.num_edges(), 1);
        assert_eq!(metric.edge_weight(0, 1), Some(2.0));
        assert_eq!(metric.distance(1, 0), 2.0);
    }

    #[test]
    fn construction_rejects_disconnected_graphs() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0).add_edge(2, 3, 1.0);
        let err = DynamicGraphMetric::from_graph(&g).unwrap_err();
        assert!(err.u < err.v);
    }

    #[test]
    fn decrease_moves_exactly_the_rerouted_pairs() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        // Cheaper chord: 0-3 drops 2.5 → 0.5, rerouting 1-3 and 2-3.
        let report = metric.set_edge(0, 3, 0.5).unwrap();
        assert!(matches!(report.strategy, RepairStrategy::Relaxed { .. }));
        assert_eq!(metric.distance(0, 3), 0.5);
        assert_eq!(metric.distance(1, 3), 1.5); // 1-0-3
        assert_matches_rebuild(&metric);
        for c in &report.changed {
            assert!(c.new < c.old, "decrease must only lower distances");
            assert_eq!(metric.distance(c.u, c.v), c.new);
        }
        // Every changed pair really changed (old values were different).
        assert!(report.changed.iter().all(|c| c.old != c.new));
    }

    #[test]
    fn increase_rescans_only_edge_using_rows() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        // 0-1 is on shortest paths; raising it rescans affected rows.
        let report = metric.set_edge(0, 1, 4.0).unwrap();
        assert!(matches!(
            report.strategy,
            RepairStrategy::Rescanned { .. } | RepairStrategy::Rebuilt
        ));
        assert_eq!(metric.distance(0, 1), 4.0); // direct still beats 0-3-2-1
        assert_matches_rebuild(&metric);
    }

    #[test]
    fn irrelevant_increase_is_untouched() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        // Make 2-3 useless first (0-3 chord + 0-1-2 is shorter), then
        // raise it further: no shortest path uses it.
        metric.set_edge(2, 3, 30.0).unwrap();
        let report = metric.set_edge(2, 3, 40.0).unwrap();
        assert_eq!(report.strategy, RepairStrategy::Untouched);
        assert!(report.changed.is_empty());
        assert_matches_rebuild(&metric);
    }

    #[test]
    fn setting_the_same_weight_is_untouched() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        let report = metric.set_edge(1, 2, 2.0).unwrap();
        assert_eq!(report.strategy, RepairStrategy::Untouched);
        assert!(report.changed.is_empty());
    }

    #[test]
    fn inserting_a_new_edge_is_a_decrease_from_infinity() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        assert_eq!(metric.edge_weight(1, 3), None);
        let report = metric.set_edge(1, 3, 0.25).unwrap();
        assert_eq!(metric.num_edges(), 5);
        assert!(matches!(report.strategy, RepairStrategy::Relaxed { .. }));
        assert_eq!(metric.distance(1, 3), 0.25);
        assert_matches_rebuild(&metric);
    }

    #[test]
    fn removal_repairs_or_reports_disconnection() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        // 2-3 removable: 3 stays reachable via the chord.
        let report = metric.remove_edge(2, 3).unwrap();
        assert_eq!(metric.num_edges(), 3);
        assert_eq!(metric.edge_weight(2, 3), None);
        assert!(!report.changed.is_empty());
        assert_matches_rebuild(&metric);
        // Now 0-3 is a bridge: removal must fail and leave everything
        // intact.
        let before = metric.matrix().triangle().to_vec();
        let err = metric.remove_edge(3, 0).unwrap_err();
        assert_eq!(
            err,
            EdgeUpdateError::Disconnected(DisconnectedGraph { u: 0, v: 3 })
        );
        assert_eq!(metric.edge_weight(0, 3), Some(2.5));
        assert_eq!(metric.matrix().triangle(), &before[..]);
        assert_matches_rebuild(&metric);
    }

    #[test]
    fn zero_weight_edges_are_supported() {
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        metric.set_edge(0, 1, 0.0).unwrap();
        assert_eq!(metric.distance(0, 1), 0.0);
        assert_eq!(metric.distance(1, 3), 2.5); // 1-0-3 through the free edge
        assert_matches_rebuild(&metric);
    }

    #[test]
    fn trivial_ground_sets() {
        let metric = DynamicGraphMetric::from_graph(&WeightedGraph::new(1)).unwrap();
        assert_eq!(metric.len(), 1);
        assert_eq!(metric.num_edges(), 0);
        let metric = DynamicGraphMetric::from_graph(&WeightedGraph::new(0)).unwrap();
        assert!(metric.is_empty());
    }

    #[test]
    fn accumulate_distances_delegates_to_the_matrix() {
        let metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        let n = metric.len();
        let mut fast = vec![0.0; n];
        metric.accumulate_distances(1, &mut fast, 2.0);
        for (v, &acc) in fast.iter().enumerate() {
            let expected = if v == 1 {
                0.0
            } else {
                2.0 * metric.distance(1, v as ElementId)
            };
            assert_eq!(acc, expected);
        }
    }

    #[test]
    fn malformed_edge_updates_are_rejected_without_mutation() {
        // Each malformed update must return its typed error and leave the
        // adjacency *and* the APSP matrix bit-identical — the fault-
        // tolerance contract the serving stack builds on.
        let mut metric = DynamicGraphMetric::from_graph(&diamond()).unwrap();
        let before = metric.matrix().triangle().to_vec();
        let edges_before = metric.num_edges();

        assert_eq!(
            metric.set_edge(0, 9, 1.0),
            Err(EdgeUpdateError::EndpointOutOfRange { u: 0, v: 9, n: 4 })
        );
        assert_eq!(
            metric.set_edge(2, 2, 1.0),
            Err(EdgeUpdateError::SelfLoop { u: 2 })
        );
        for bad in [-0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = metric.set_edge(0, 1, bad).unwrap_err();
            match err {
                EdgeUpdateError::InvalidWeight { u: 0, v: 1, weight } => {
                    assert!(weight.is_nan() == bad.is_nan() && (weight == bad || bad.is_nan()));
                }
                other => panic!("expected InvalidWeight, got {other:?}"),
            }
        }
        assert_eq!(
            metric.remove_edge(1, 3),
            Err(EdgeUpdateError::MissingEdge { u: 1, v: 3 })
        );
        assert_eq!(
            metric.remove_edge(1, 9),
            Err(EdgeUpdateError::EndpointOutOfRange { u: 1, v: 9, n: 4 })
        );

        assert_eq!(metric.num_edges(), edges_before);
        assert_eq!(metric.matrix().triangle(), &before[..]);
        assert_matches_rebuild(&metric);
    }
}
