//! Metric-space substrate for max-sum diversification.
//!
//! The algorithms of Borodin et al. (PODS 2012) operate over a finite ground
//! set `U = {0, 1, ..., n-1}` equipped with a metric distance `d(·,·)`.
//! This crate provides:
//!
//! * [`Metric`] — the distance oracle trait used by every algorithm,
//! * [`DistanceMatrix`] — a dense, cache-friendly precomputed metric stored
//!   as a flat upper-triangular buffer,
//! * [`point`] — dense Euclidean points and the vector kernels used to build
//!   metrics from feature embeddings,
//! * [`functions`] — standard metrics (Euclidean, Manhattan, Chebyshev,
//!   cosine distance, the `{1,2}` metric central to the paper's hardness
//!   discussion),
//! * [`implicit`] — compute-on-demand point-backed metrics (Euclidean /
//!   cosine) whose block-tiled row kernel is bit-identical to the
//!   materialized matrix while using `O(n·dim)` memory, breaking the `n²`
//!   wall for `n = 10⁵–10⁶` ground sets,
//! * [`overlay`] — sparse perturbation overlays that give *any* base metric
//!   a [`PerturbableMetric`] implementation (the dynamic engine's route to
//!   perturbing implicit metrics),
//! * [`restricted`] — sub-universe views under a local id remap (the
//!   building block of the composable/sharded distributed paths),
//! * [`graph`] — all-pairs shortest-path metrics of weighted networks,
//!   the location-theory setting the dispersion literature starts from,
//! * [`dynamic_graph`] — graph metrics under *edge-weight updates*:
//!   incremental APSP repair with per-update change reports, the
//!   perturbation model of network-sourced dynamic instances,
//! * [`derived`] — metric-preserving transformations, including the
//!   Gollapudi–Sharma reduction metric `w(u) + w(v) + 2λ·d(u,v)`,
//! * [`relaxed`] — α-relaxed triangle inequalities (Sydow's `2α` regime,
//!   discussed in the paper's conclusion), and
//! * [`validate`] — auditing utilities that verify metric axioms, used
//!   heavily by the test suites of the downstream crates.
//!
//! # Conventions
//!
//! Ground-set elements are identified by `u32` indices. Distances are `f64`
//! and must be non-negative and symmetric; `d(u, u) = 0`. All functions in
//! this workspace treat the distance oracle as the ground truth — algorithms
//! never recompute distances from raw features.

pub mod derived;
pub mod dynamic_graph;
pub mod functions;
pub mod graph;
pub mod implicit;
pub mod matrix;
pub mod overlay;
pub mod point;
pub mod relaxed;
pub mod restricted;
pub mod validate;

pub use derived::{GollapudiSharmaMetric, ScaledMetric, StarWeightMetric};
pub use dynamic_graph::{
    DistanceChange, DynamicGraphMetric, EdgePerturbableMetric, EdgeUpdateError, EdgeUpdateReport,
    RepairStrategy,
};
pub use graph::{DisconnectedGraph, WeightedGraph};
pub use implicit::{PointKernel, PointMetric, TileCacheStats};
pub use matrix::{DistanceMatrix, DistanceMatrixBuilder};
pub use overlay::OverlayMetric;
pub use point::Point;
pub use relaxed::{relaxation_parameter, RelaxedMetricReport};
pub use restricted::RestrictedMetric;
pub use validate::{MetricAudit, MetricViolation};

/// Identifier of a ground-set element.
///
/// Elements are dense indices `0..n`. Using `u32` keeps per-element state
/// small (see the type-size guidance in the Rust perf book); ground sets of
/// more than `u32::MAX` elements are far beyond the quadratic-distance
/// regime these algorithms target.
pub type ElementId = u32;

/// A finite metric (or semi-metric) over ground set `{0, .., len-1}`.
///
/// Implementations must guarantee:
///
/// * `distance(u, u) == 0.0`
/// * `distance(u, v) == distance(v, u)`
/// * `distance(u, v) >= 0.0` and finite
///
/// The triangle inequality is required by the approximation guarantees of
/// the paper (Theorems 1 and 2) but not by the code itself; the relaxed
/// `α`-metric setting of [`relaxed`] is explicitly supported. Use
/// [`validate::MetricAudit`] to check axioms.
pub trait Metric {
    /// Number of elements in the ground set.
    fn len(&self) -> usize;

    /// `true` when the ground set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between two elements.
    ///
    /// # Panics
    ///
    /// May panic if `u` or `v` is out of range.
    fn distance(&self, u: ElementId, v: ElementId) -> f64;

    /// Sum of distances from `u` to every element of `set`.
    ///
    /// This is the marginal dispersion gain `d_u(S)` of the paper. The
    /// default implementation is a straight sweep over the set.
    fn distance_to_set(&self, u: ElementId, set: &[ElementId]) -> f64 {
        set.iter().map(|&v| self.distance(u, v)).sum()
    }

    /// Total dispersion `d(S) = Σ_{ {u,v} ⊆ S } d(u,v)` of a subset.
    fn dispersion(&self, set: &[ElementId]) -> f64 {
        let mut total = 0.0;
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                total += self.distance(u, v);
            }
        }
        total
    }

    /// Sum of all cross distances `d(X, Y) = Σ_{u ∈ X, v ∈ Y} d(u,v)` between
    /// two disjoint subsets.
    fn cross_dispersion(&self, xs: &[ElementId], ys: &[ElementId]) -> f64 {
        let mut total = 0.0;
        for &u in xs {
            for &v in ys {
                total += self.distance(u, v);
            }
        }
        total
    }

    /// Batched row kernel: `out[v] += factor · d(u, v)` for every `v ≠ u`.
    ///
    /// This is the inner sweep of the Birnbaum–Goldman gain cache
    /// (`SolutionState` in `msd-core` calls it once per insert/remove with
    /// `factor = ±1`). The default walks the distance oracle element by
    /// element; [`DistanceMatrix`] overrides it with a direct traversal of
    /// its triangular storage, avoiding per-pair index arithmetic.
    ///
    /// # Panics
    ///
    /// May panic if `out.len() < self.len()` or `u` is out of range.
    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        for v in 0..self.len() as ElementId {
            if v != u {
                out[v as usize] += factor * self.distance(u, v);
            }
        }
    }
}

/// A metric whose pairwise distances can be perturbed in place.
///
/// The dynamic-update setting (Section 6 of the paper) rewrites individual
/// distances between updates. [`set_distance`](Self::set_distance) is the
/// *mutation-with-notification* path: it overwrites `d(u, v)` and returns
/// the previous value, so an incremental consumer (the persistent
/// `DynamicSession` in `msd-core`) learns the exact delta `new − old` from
/// the mutation itself and can repair its Birnbaum–Goldman gain caches in
/// O(1) instead of rebuilding them.
///
/// Implementations must keep the [`Metric`] axioms (symmetry, zero
/// diagonal); preserving the triangle inequality remains the caller's
/// responsibility, as everywhere else in this workspace.
pub trait PerturbableMetric: Metric {
    /// Sets `d(u, v) = d(v, u) = value`, returning the previous distance.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`, either element is out of range, or `value` is
    /// negative or non-finite.
    fn set_distance(&mut self, u: ElementId, v: ElementId, value: f64) -> f64;
}

impl<M: Metric + ?Sized> Metric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        (**self).distance(u, v)
    }

    fn distance_to_set(&self, u: ElementId, set: &[ElementId]) -> f64 {
        (**self).distance_to_set(u, set)
    }

    fn dispersion(&self, set: &[ElementId]) -> f64 {
        (**self).dispersion(set)
    }

    fn cross_dispersion(&self, xs: &[ElementId], ys: &[ElementId]) -> f64 {
        (**self).cross_dispersion(xs, ys)
    }

    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        (**self).accumulate_distances(u, out, factor)
    }
}

/// Shared-ownership view of a base metric: any number of consumers (e.g.
/// per-tenant [`OverlayMetric`] sessions in `msd-core`'s serving layer)
/// read one immutable corpus without cloning its `O(n²)` (or `O(n·dim)`)
/// storage. `Arc<M>` has no [`PerturbableMetric`] impl by design — the
/// base is immutable; perturbations belong in a per-consumer
/// [`OverlayMetric`] wrapped around the `Arc`.
impl<M: Metric + ?Sized> Metric for std::sync::Arc<M> {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        (**self).distance(u, v)
    }

    fn distance_to_set(&self, u: ElementId, set: &[ElementId]) -> f64 {
        (**self).distance_to_set(u, set)
    }

    fn dispersion(&self, set: &[ElementId]) -> f64 {
        (**self).dispersion(set)
    }

    fn cross_dispersion(&self, xs: &[ElementId], ys: &[ElementId]) -> f64 {
        (**self).cross_dispersion(xs, ys)
    }

    fn accumulate_distances(&self, u: ElementId, out: &mut [f64], factor: f64) {
        (**self).accumulate_distances(u, out, factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-rolled metric for exercising the default methods.
    struct Line(usize);

    impl Metric for Line {
        fn len(&self) -> usize {
            self.0
        }

        fn distance(&self, u: ElementId, v: ElementId) -> f64 {
            (f64::from(u) - f64::from(v)).abs()
        }
    }

    #[test]
    fn distance_to_set_sums_pairwise_distances() {
        let m = Line(10);
        assert_eq!(m.distance_to_set(0, &[1, 2, 3]), 6.0);
        assert_eq!(m.distance_to_set(5, &[]), 0.0);
    }

    #[test]
    fn dispersion_counts_each_unordered_pair_once() {
        let m = Line(10);
        // pairs: (0,1)=1, (0,3)=3, (1,3)=2  => 6
        assert_eq!(m.dispersion(&[0, 1, 3]), 6.0);
        assert_eq!(m.dispersion(&[4]), 0.0);
        assert_eq!(m.dispersion(&[]), 0.0);
    }

    #[test]
    fn cross_dispersion_is_full_bipartite_sum() {
        let m = Line(10);
        // (0,2)=2 (0,4)=4 (1,2)=1 (1,4)=3 => 10
        assert_eq!(m.cross_dispersion(&[0, 1], &[2, 4]), 10.0);
    }

    #[test]
    fn reference_impl_delegates() {
        let m = Line(4);
        let r: &dyn Metric = &m;
        assert_eq!(r.len(), 4);
        assert_eq!(r.distance(0, 3), 3.0);
    }

    #[test]
    fn empty_metric_reports_empty() {
        let m = Line(0);
        assert!(m.is_empty());
        let m = Line(1);
        assert!(!m.is_empty());
    }
}
