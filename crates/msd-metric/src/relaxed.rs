//! α-relaxed triangle inequalities.
//!
//! The paper's conclusion highlights Sydow's result: if the distance only
//! satisfies the *relaxed* triangle inequality
//! `d(x, y) + d(y, z) ≥ (1/α) · d(x, z)` for some `α ≥ 1`, the
//! matching-based algorithm achieves a (tight) `2α` approximation for
//! cardinality-constrained max-sum dispersion, and Abbasi-Zadeh and Ghadiri
//! obtain `2α` (cardinality) and `2α²` (matroid) for diversification.
//!
//! This module *measures* the relaxation parameter of a given distance
//! oracle so experiments can report which regime they are in (cosine
//! distance, for instance, is a semi-metric whose α is finite but > 1 on
//! real data).

use crate::{ElementId, Metric};

/// Summary of the relaxed-metric analysis of a distance oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxedMetricReport {
    /// The smallest `α ≥ 1` such that `α · (d(x,y) + d(y,z)) ≥ d(x,z)` for
    /// every audited triple. `1.0` means the distance is a true metric.
    pub alpha: f64,
    /// Number of triples audited.
    pub triples: usize,
    /// The witness triple attaining `alpha` (if any triple was audited).
    pub witness: Option<(ElementId, ElementId, ElementId)>,
}

impl RelaxedMetricReport {
    /// The approximation ratio `2α` guaranteed for the cardinality
    /// constraint under this relaxation (Sydow; tight).
    pub fn cardinality_ratio(&self) -> f64 {
        2.0 * self.alpha
    }

    /// The approximation ratio `2α²` guaranteed for an arbitrary matroid
    /// constraint (Abbasi-Zadeh and Ghadiri).
    pub fn matroid_ratio(&self) -> f64 {
        2.0 * self.alpha * self.alpha
    }

    /// `true` when the audited distance satisfied the exact triangle
    /// inequality on every triple.
    pub fn is_exact_metric(&self) -> bool {
        self.alpha <= 1.0 + 1e-12
    }
}

/// Exhaustively computes the relaxation parameter `α` of `metric`.
///
/// For every ordered triple `(x, y, z)` of distinct elements with
/// `d(x,y) + d(y,z) > 0`, the constraint is
/// `α ≥ d(x,z) / (d(x,y) + d(y,z))`; the report returns the max over all
/// triples, clamped below at 1. O(n³) — intended for analysis and tests.
///
/// Degenerate triples with `d(x,y) + d(y,z) = 0 < d(x,z)` have no finite α;
/// they yield `alpha = f64::INFINITY`.
pub fn relaxation_parameter<M: Metric>(metric: &M) -> RelaxedMetricReport {
    let n = metric.len() as ElementId;
    let mut alpha = 1.0_f64;
    let mut witness = None;
    let mut triples = 0usize;
    for x in 0..n {
        for z in (x + 1)..n {
            let dxz = metric.distance(x, z);
            for y in 0..n {
                if y == x || y == z {
                    continue;
                }
                triples += 1;
                let path = metric.distance(x, y) + metric.distance(y, z);
                let ratio = if path > 0.0 {
                    dxz / path
                } else if dxz > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                if ratio > alpha {
                    alpha = ratio;
                    witness = Some((x, y, z));
                }
            }
        }
    }
    RelaxedMetricReport {
        alpha,
        triples,
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceMatrix, Point};

    #[test]
    fn exact_metric_has_alpha_one() {
        let m = DistanceMatrix::from_fn(5, |u, v| f64::from(v.abs_diff(u)));
        let report = relaxation_parameter(&m);
        assert!(report.is_exact_metric());
        assert_eq!(report.alpha, 1.0);
        assert_eq!(report.cardinality_ratio(), 2.0);
        assert_eq!(report.matroid_ratio(), 2.0);
        assert_eq!(report.triples, 5 * 4 * 3 / 2); // unordered (x,z) * middle y
    }

    #[test]
    fn violation_yields_alpha_above_one() {
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(0, 2, 3.0); // ratio 3 / 2
        let report = relaxation_parameter(&m);
        assert!((report.alpha - 1.5).abs() < 1e-12);
        assert_eq!(report.witness, Some((0, 1, 2)));
        assert!((report.cardinality_ratio() - 3.0).abs() < 1e-12);
        assert!((report.matroid_ratio() - 4.5).abs() < 1e-12);
        assert!(!report.is_exact_metric());
    }

    #[test]
    fn zero_path_with_positive_direct_distance_is_unbounded() {
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 2, 1.0); // d(0,1) = d(1,2) = 0 but d(0,2) = 1
        let report = relaxation_parameter(&m);
        assert!(report.alpha.is_infinite());
    }

    #[test]
    fn all_zero_distances_are_a_metric() {
        let m = DistanceMatrix::zeros(4);
        let report = relaxation_parameter(&m);
        assert_eq!(report.alpha, 1.0);
    }

    #[test]
    fn cosine_distance_on_spread_vectors_is_relaxed_not_exact() {
        // Three unit vectors at 0°, 60°, 120°: cosine distance violates the
        // triangle inequality through the middle vector.
        let pts: Vec<Point> = [0.0_f64, 60.0, 120.0]
            .iter()
            .map(|deg| {
                let r = deg.to_radians();
                Point::new(vec![r.cos(), r.sin()])
            })
            .collect();
        let m = DistanceMatrix::from_points(&pts, |a, b| a.cosine_distance(b));
        let report = relaxation_parameter(&m);
        // d(0°,120°) = 1.5, path through 60° = 0.5 + 0.5 = 1.0 → α = 1.5
        assert!((report.alpha - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tiny_ground_sets_have_no_triples() {
        let m = DistanceMatrix::zeros(2);
        let report = relaxation_parameter(&m);
        assert_eq!(report.triples, 0);
        assert_eq!(report.witness, None);
        assert_eq!(report.alpha, 1.0);
    }
}
