//! Standard metrics over point sets and graphs.
//!
//! These adapters wrap a slice of [`Point`]s (or an adjacency structure)
//! into the [`Metric`] trait. For hot loops prefer materializing them into a
//! [`DistanceMatrix`](crate::DistanceMatrix) via
//! [`DistanceMatrix::from_metric`](crate::DistanceMatrix::from_metric);
//! these lazy wrappers recompute the kernel on every call.

use crate::{ElementId, Metric, Point};

/// Euclidean (ℓ2) metric over a point set.
#[derive(Debug, Clone)]
pub struct EuclideanMetric {
    points: Vec<Point>,
}

impl EuclideanMetric {
    /// Wraps a point set.
    pub fn new(points: Vec<Point>) -> Self {
        Self { points }
    }

    /// The underlying points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }
}

impl Metric for EuclideanMetric {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.points[u as usize].euclidean(&self.points[v as usize])
    }
}

/// Manhattan (ℓ1) metric over a point set.
///
/// Fekete and Meijer study max-sum dispersion under exactly this metric
/// (referenced in the paper's conclusion); it is provided so their geometric
/// regime can be exercised.
#[derive(Debug, Clone)]
pub struct ManhattanMetric {
    points: Vec<Point>,
}

impl ManhattanMetric {
    /// Wraps a point set.
    pub fn new(points: Vec<Point>) -> Self {
        Self { points }
    }
}

impl Metric for ManhattanMetric {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.points[u as usize].manhattan(&self.points[v as usize])
    }
}

/// Chebyshev (ℓ∞) metric over a point set.
#[derive(Debug, Clone)]
pub struct ChebyshevMetric {
    points: Vec<Point>,
}

impl ChebyshevMetric {
    /// Wraps a point set.
    pub fn new(points: Vec<Point>) -> Self {
        Self { points }
    }
}

impl Metric for ChebyshevMetric {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.points[u as usize].chebyshev(&self.points[v as usize])
    }
}

/// Cosine distance `1 − cos(u, v)` over a point set.
///
/// This is the document distance used by the paper's LETOR experiments
/// (Section 7.2). Note that cosine distance is a *semi*-metric: the triangle
/// inequality can fail by a bounded factor. The paper's algorithms still
/// apply empirically, and the relaxed-metric analysis of
/// [`crate::relaxed`] quantifies the violation.
#[derive(Debug, Clone)]
pub struct CosineMetric {
    points: Vec<Point>,
}

impl CosineMetric {
    /// Wraps a point set.
    pub fn new(points: Vec<Point>) -> Self {
        Self { points }
    }
}

impl Metric for CosineMetric {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        self.points[u as usize].cosine_distance(&self.points[v as usize])
    }
}

/// The `{1, 2}` metric induced by a graph: adjacent pairs are at distance 1,
/// non-adjacent pairs at distance 2.
///
/// Any `{1,2}`-valued symmetric function with zero diagonal satisfies the
/// triangle inequality, which is why this family is the source of the
/// paper's hardness evidence (Section 3, via planted clique): the reduction
/// embeds a graph into exactly this metric. The synthetic workloads of
/// Section 7.1 draw distances from `[1, 2]` for the same reason.
#[derive(Debug, Clone)]
pub struct OneTwoMetric {
    n: usize,
    /// Flat upper-triangular adjacency; `true` means distance 1.
    adjacent: Vec<bool>,
}

impl OneTwoMetric {
    /// Builds from an edge list; absent pairs get distance 2.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(ElementId, ElementId)]) -> Self {
        let mut adjacent = vec![false; n * n.saturating_sub(1) / 2];
        for &(u, v) in edges {
            assert!(u != v, "self-loop at {u}");
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            let (a, b) = (a as usize, b as usize);
            adjacent[a * n - a * (a + 1) / 2 + (b - a - 1)] = true;
        }
        Self { n, adjacent }
    }

    /// `true` if `u` and `v` are at distance 1.
    pub fn is_adjacent(&self, u: ElementId, v: ElementId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let (a, b) = (a as usize, b as usize);
        self.adjacent[a * self.n - a * (a + 1) / 2 + (b - a - 1)]
    }
}

impl Metric for OneTwoMetric {
    fn len(&self) -> usize {
        self.n
    }

    fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        if u == v {
            0.0
        } else if self.is_adjacent(u, v) {
            1.0
        } else {
            2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::MetricAudit;

    fn square() -> Vec<Point> {
        vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![0.0, 1.0]),
        ]
    }

    #[test]
    fn euclidean_metric_on_unit_square() {
        let m = EuclideanMetric::new(square());
        assert_eq!(m.len(), 4);
        assert_eq!(m.distance(0, 1), 1.0);
        assert!((m.distance(0, 2) - 2f64.sqrt()).abs() < 1e-12);
        assert!(MetricAudit::check(&m).is_metric());
    }

    #[test]
    fn manhattan_metric_on_unit_square() {
        let m = ManhattanMetric::new(square());
        assert_eq!(m.distance(0, 2), 2.0);
        assert!(MetricAudit::check(&m).is_metric());
    }

    #[test]
    fn chebyshev_metric_on_unit_square() {
        let m = ChebyshevMetric::new(square());
        assert_eq!(m.distance(0, 2), 1.0);
        assert!(MetricAudit::check(&m).is_metric());
    }

    #[test]
    fn cosine_metric_values() {
        let m = CosineMetric::new(vec![
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
        ]);
        assert!((m.distance(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.distance(0, 2) - (1.0 - 1.0 / 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn one_two_metric_from_edges() {
        let m = OneTwoMetric::from_edges(4, &[(0, 1), (2, 1)]);
        assert_eq!(m.distance(0, 1), 1.0);
        assert_eq!(m.distance(1, 2), 1.0);
        assert_eq!(m.distance(0, 2), 2.0);
        assert_eq!(m.distance(3, 0), 2.0);
        assert_eq!(m.distance(2, 2), 0.0);
    }

    #[test]
    fn one_two_metric_always_satisfies_triangle_inequality() {
        // Every {1,2} metric is a metric: 1 + 1 >= 2.
        let m = OneTwoMetric::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert!(MetricAudit::check(&m).is_metric());
    }

    #[test]
    fn one_two_adjacency_is_symmetric() {
        let m = OneTwoMetric::from_edges(3, &[(2, 0)]);
        assert!(m.is_adjacent(0, 2));
        assert!(m.is_adjacent(2, 0));
        assert!(!m.is_adjacent(1, 1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = OneTwoMetric::from_edges(3, &[(1, 1)]);
    }

    #[test]
    fn euclidean_points_accessor() {
        let m = EuclideanMetric::new(square());
        assert_eq!(m.points().len(), 4);
    }
}
