//! Property tests for the metric substrate's data-structure invariants.

use msd_metric::{
    relaxation_parameter, DistanceMatrix, GollapudiSharmaMetric, Metric, MetricAudit, ScaledMetric,
    StarWeightMetric, WeightedGraph,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flat upper-triangular layout is a faithful symmetric store.
    #[test]
    fn matrix_set_get_roundtrip(
        n in 2usize..20,
        writes in prop::collection::vec((0u32..20, 0u32..20, 0.0f64..100.0), 1..40),
    ) {
        let mut m = DistanceMatrix::zeros(n);
        let mut reference = std::collections::HashMap::new();
        for (u, v, d) in writes {
            let (u, v) = (u % n as u32, v % n as u32);
            if u == v {
                continue;
            }
            m.set(u, v, d);
            reference.insert((u.min(v), u.max(v)), d);
        }
        for (&(u, v), &d) in &reference {
            prop_assert_eq!(m.distance(u, v), d);
            prop_assert_eq!(m.distance(v, u), d);
        }
        for u in 0..n as u32 {
            prop_assert_eq!(m.distance(u, u), 0.0);
        }
    }

    /// Dispersion identities: d(S ∪ T) = d(S) + d(T) + d(S, T) for
    /// disjoint S, T.
    #[test]
    fn dispersion_decomposes_over_disjoint_union(
        raw in prop::collection::vec(0.0f64..10.0, 45),
        split in 0usize..10,
    ) {
        let n = 10usize;
        let mut it = raw.into_iter().cycle();
        let m = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let s: Vec<u32> = (0..split as u32).collect();
        let t: Vec<u32> = (split as u32..n as u32).collect();
        let all: Vec<u32> = (0..n as u32).collect();
        let lhs = m.dispersion(&all);
        let rhs = m.dispersion(&s) + m.dispersion(&t) + m.cross_dispersion(&s, &t);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// distance_to_set is additive over set concatenation.
    #[test]
    fn distance_to_set_is_additive(
        raw in prop::collection::vec(0.0f64..5.0, 28),
        u in 0u32..8,
    ) {
        let n = 8usize;
        let mut it = raw.into_iter().cycle();
        let m = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let a: Vec<u32> = vec![(u + 1) % 8, (u + 2) % 8];
        let b: Vec<u32> = vec![(u + 3) % 8];
        let joint: Vec<u32> = a.iter().chain(&b).copied().collect();
        let lhs = m.distance_to_set(u, &joint);
        let rhs = m.distance_to_set(u, &a) + m.distance_to_set(u, &b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// Distances in [1, 2] always form a metric; relaxation parameter 1.
    #[test]
    fn one_two_band_is_always_metric(
        raw in prop::collection::vec(0.0f64..1.0, 21),
    ) {
        let mut it = raw.into_iter().cycle();
        let m = DistanceMatrix::from_fn(7, |_, _| 1.0 + it.next().unwrap());
        MetricAudit::check(&m).assert_metric();
        let report = relaxation_parameter(&m);
        prop_assert!(report.is_exact_metric());
    }

    /// Scaling preserves metricity and scales dispersion linearly.
    #[test]
    fn scaling_preserves_metric_and_scales_dispersion(
        raw in prop::collection::vec(0.0f64..1.0, 21),
        factor in 0.01f64..50.0,
    ) {
        let mut it = raw.into_iter().cycle();
        let base = DistanceMatrix::from_fn(7, |_, _| 1.0 + it.next().unwrap());
        let scaled = ScaledMetric::new(base.clone(), factor);
        MetricAudit::check(&scaled).assert_metric();
        let set: Vec<u32> = vec![0, 2, 4, 6];
        prop_assert!((scaled.dispersion(&set) - factor * base.dispersion(&set)).abs() < 1e-9);
    }

    /// Star-weight metrics and GS reduction metrics are metrics for any
    /// non-negative inputs.
    #[test]
    fn derived_metrics_are_metrics(
        weights in prop::collection::vec(0.0f64..5.0, 6),
        raw in prop::collection::vec(0.0f64..1.0, 15),
        lambda in 0.0f64..2.0,
    ) {
        let star = StarWeightMetric::new(weights.clone());
        MetricAudit::check(&star).assert_metric();
        let mut it = raw.into_iter().cycle();
        let base = DistanceMatrix::from_fn(6, |_, _| 1.0 + it.next().unwrap());
        let gs = GollapudiSharmaMetric::new(base, weights, lambda);
        MetricAudit::check(&gs).assert_metric();
    }

    /// Shortest-path metrics of random connected graphs are metrics.
    #[test]
    fn shortest_path_metrics_are_metrics(
        extra in prop::collection::vec((0u32..7, 0u32..7, 0.1f64..5.0), 0..10),
        spine in prop::collection::vec(0.1f64..5.0, 6),
    ) {
        let mut g = WeightedGraph::new(7);
        // Spine guarantees connectivity.
        for (i, &w) in spine.iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, w);
        }
        for (u, v, w) in extra {
            if u != v {
                g.add_edge(u, v, w);
            }
        }
        let m = g.shortest_path_metric().expect("spine keeps the graph connected");
        MetricAudit::check(&m).assert_metric();
    }

    /// The chunked `accumulate_distances` row kernel is bit-identical to
    /// the scalar per-pair reference on arbitrary ground sizes: full
    /// 8-lane chunks, odd tails of every residue, the single-element
    /// matrix whose rows are empty, and arbitrary pre-filled output
    /// buffers and factors.
    #[test]
    fn chunked_row_kernel_matches_scalar_reference(
        n in 1usize..36,
        u in 0u32..36,
        factor in -3.0f64..3.0,
        raw in prop::collection::vec(0.0f64..10.0, 1..631),
        init in prop::collection::vec(-5.0f64..5.0, 36),
    ) {
        let u = u % n as u32;
        let mut it = raw.into_iter().cycle();
        let m = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let mut fast = init[..n].to_vec();
        let mut scalar = fast.clone();
        let mut per_pair = fast.clone();
        m.accumulate_distances(u, &mut fast, factor);
        m.accumulate_distances_scalar(u, &mut scalar, factor);
        for v in 0..n as u32 {
            if v != u {
                per_pair[v as usize] += factor * m.distance(u, v);
            }
        }
        // Chunked vs scalar reference: exactly equal, every slot gets one
        // fused multiply-add in both paths.
        prop_assert_eq!(&fast, &scalar);
        // And the reference is itself the naive per-pair sweep.
        prop_assert_eq!(&scalar, &per_pair);
    }

    /// The kernel writes only the `v ≠ u` slots of the first `n` entries:
    /// the diagonal slot and any surplus buffer tail are untouched, for
    /// every chunk/tail split.
    #[test]
    fn row_kernel_touches_only_foreign_slots(
        n in 1usize..24,
        u in 0u32..24,
        surplus in 0usize..5,
        raw in prop::collection::vec(0.5f64..4.0, 1..277),
    ) {
        let u = u % n as u32;
        let mut it = raw.into_iter().cycle();
        let m = DistanceMatrix::from_fn(n, |_, _| it.next().unwrap());
        let sentinel = -123.456;
        let mut buf = vec![sentinel; n + surplus];
        m.accumulate_distances(u, &mut buf, 1.0);
        prop_assert_eq!(buf[u as usize], sentinel, "diagonal slot written");
        for (v, &x) in buf.iter().enumerate().skip(n) {
            prop_assert_eq!(x, sentinel, "surplus slot {} written", v);
        }
        for (v, &x) in buf.iter().enumerate().take(n) {
            if v != u as usize {
                prop_assert_eq!(x, sentinel + m.distance(u, v as u32), "slot {}", v);
            }
        }
    }
}

/// Properties of the implicit point-backed metrics and perturbation
/// overlays: both must be *bit-identical* to the materialized
/// [`DistanceMatrix`] reference — see `implicit`/`overlay` module docs.
mod implicit_metrics {
    use super::*;
    use msd_metric::{OverlayMetric, PerturbableMetric, Point, PointMetric};

    fn point_metrics(coords: &[f64], n: usize, dim: usize) -> Vec<PointMetric> {
        let pts: Vec<Point> = (0..n)
            .map(|u| Point::new(coords[u * dim..(u + 1) * dim].to_vec()))
            .collect();
        vec![PointMetric::euclidean(&pts), PointMetric::cosine(&pts)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Point reads and the block-tiled row kernel match the
        /// materialized matrix bit-for-bit, across odd tails (n not a
        /// multiple of the block), empty rows (n = 1), negative and zero
        /// factors, and both kernels.
        #[test]
        fn tiled_row_kernel_is_bit_identical_to_materialized(
            n in 1usize..27,
            dim in 0usize..6,
            fi in 0usize..5,
            raw in prop::collection::vec(-4.0f64..4.0, 1..163),
        ) {
            let factor = [-2.5f64, -1.0, 0.0, 1.0, 0.375][fi];
            let mut it = raw.into_iter().cycle();
            let coords: Vec<f64> = (0..n * dim).map(|_| it.next().unwrap()).collect();
            for metric in point_metrics(&coords, n, dim) {
                let dense = DistanceMatrix::from_metric(&metric);
                for u in 0..n as u32 {
                    let mut got = vec![0.25; n + 2];
                    let mut want = vec![0.25; n + 2];
                    metric.accumulate_distances(u, &mut got, factor);
                    dense.accumulate_distances(u, &mut want, factor);
                    prop_assert_eq!(&got, &want, "row {}", u);
                    for v in 0..n as u32 {
                        prop_assert_eq!(metric.distance(u, v), dense.distance(u, v));
                    }
                }
            }
        }

        /// The bounded tile cache changes nothing observable: every point
        /// read equals the uncached metric, and residency never exceeds
        /// the configured bound.
        #[test]
        fn tile_cache_is_transparent_and_bounded(
            n in 1usize..40,
            cap in 1usize..5,
            reads in prop::collection::vec((0u32..40, 0u32..40), 1..60),
            raw in prop::collection::vec(-3.0f64..3.0, 1..121),
        ) {
            let dim = 3usize;
            let mut it = raw.into_iter().cycle();
            let coords: Vec<f64> = (0..n * dim).map(|_| it.next().unwrap()).collect();
            let pts: Vec<Point> = (0..n)
                .map(|u| Point::new(coords[u * dim..(u + 1) * dim].to_vec()))
                .collect();
            let plain = PointMetric::euclidean(&pts);
            let cached = PointMetric::euclidean(&pts).with_tile_cache(cap);
            for (u, v) in reads {
                let (u, v) = (u % n as u32, v % n as u32);
                prop_assert_eq!(cached.distance(u, v), plain.distance(u, v));
                let stats = cached.tile_cache_stats().unwrap();
                prop_assert!(stats.resident_tiles <= cap);
            }
        }

        /// An overlay over an implicit metric equals a materialized matrix
        /// with the same `set` calls applied — reads and row kernel alike.
        #[test]
        fn overlay_matches_perturbed_materialized_matrix(
            n in 2usize..20,
            edits in prop::collection::vec((0u32..20, 0u32..20, 0.0f64..9.0), 0..24),
            fi in 0usize..3,
            raw in prop::collection::vec(-2.0f64..2.0, 1..81),
        ) {
            let factor = [-1.0f64, 1.0, 2.25][fi];
            let dim = 2usize;
            let mut it = raw.into_iter().cycle();
            let coords: Vec<f64> = (0..n * dim).map(|_| it.next().unwrap()).collect();
            for base in point_metrics(&coords, n, dim) {
                let mut dense = DistanceMatrix::from_metric(&base);
                let mut overlay = OverlayMetric::new(base);
                for &(u, v, d) in &edits {
                    let (u, v) = (u % n as u32, v % n as u32);
                    if u == v {
                        continue;
                    }
                    let prev_dense = dense.distance(u, v);
                    dense.set(u, v, d);
                    prop_assert_eq!(overlay.set_distance(u, v, d), prev_dense);
                }
                for u in 0..n as u32 {
                    let mut got = vec![-0.5; n];
                    let mut want = vec![-0.5; n];
                    overlay.accumulate_distances(u, &mut got, factor);
                    dense.accumulate_distances(u, &mut want, factor);
                    prop_assert_eq!(&got, &want, "row {}", u);
                    for v in 0..n as u32 {
                        prop_assert_eq!(overlay.distance(u, v), dense.distance(u, v));
                    }
                }
            }
        }
    }
}
