//! Property tests on matroid rank functions.
//!
//! The rank function of any matroid is normalized, monotone and
//! submodular — the textbook bridge between the two substrates this
//! workspace builds on. Verifying `rank_of` against that characterization
//! stress-tests every oracle through a second, independent lens.

use msd_matroid::{
    GraphicMatroid, LaminarMatroid, Matroid, PartitionMatroid, TransversalMatroid,
    TruncatedMatroid, UniformMatroid,
};
use proptest::prelude::*;

/// Checks the rank axioms exhaustively over all subsets (n ≤ 10):
/// 0 ≤ r(S) ≤ |S|, monotone, and submodular
/// (r(A∪B) + r(A∩B) ≤ r(A) + r(B)).
fn assert_rank_axioms<M: Matroid>(m: &M) {
    let n = m.ground_size();
    assert!(n <= 10, "exhaustive rank check limited to 10 elements");
    let full: u32 = 1 << n;
    let to_set =
        |mask: u32| -> Vec<u32> { (0..n as u32).filter(|&i| mask >> i & 1 == 1).collect() };
    let rank: Vec<usize> = (0..full).map(|mask| m.rank_of(&to_set(mask))).collect();

    for mask in 0..full {
        let r = rank[mask as usize];
        assert!(r <= mask.count_ones() as usize, "rank exceeds cardinality");
        // Monotone: adding one element never decreases the rank, and
        // increases it by at most 1 (unit-increase property).
        for i in 0..n {
            if mask >> i & 1 == 0 {
                let bigger = rank[(mask | 1 << i) as usize];
                assert!(bigger >= r, "rank not monotone");
                assert!(bigger <= r + 1, "rank jumps by more than 1");
            }
        }
    }
    // Submodularity over all pairs.
    for a in 0..full {
        for b in 0..full {
            let union = rank[(a | b) as usize];
            let inter = rank[(a & b) as usize];
            assert!(
                union + inter <= rank[a as usize] + rank[b as usize],
                "rank not submodular at ({a:#b}, {b:#b})"
            );
        }
    }
    // Consistency: independence ⇔ full rank.
    for mask in 0..full {
        let set = to_set(mask);
        assert_eq!(
            m.is_independent(&set),
            rank[mask as usize] == set.len(),
            "independence and rank disagree on {set:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn uniform_rank_axioms(n in 1usize..8, k in 0usize..8) {
        assert_rank_axioms(&UniformMatroid::new(n, k));
    }

    #[test]
    fn partition_rank_axioms(
        blocks in prop::collection::vec(0u32..3, 3..8),
        caps in prop::collection::vec(0u32..3, 3),
    ) {
        assert_rank_axioms(&PartitionMatroid::new(blocks, caps));
    }

    #[test]
    fn transversal_rank_axioms(
        n in 2usize..7,
        picks in prop::collection::vec(prop::collection::vec(0usize..8, 1..4), 1..4),
    ) {
        let sets: Vec<Vec<u32>> = picks
            .iter()
            .map(|s| s.iter().map(|&e| (e % n) as u32).collect())
            .collect();
        assert_rank_axioms(&TransversalMatroid::new(n, &sets));
    }

    #[test]
    fn graphic_rank_axioms(
        edges in prop::collection::vec((0u32..4, 0u32..4), 1..7),
    ) {
        assert_rank_axioms(&GraphicMatroid::new(4, edges));
    }

    #[test]
    fn truncated_rank_axioms(
        blocks in prop::collection::vec(0u32..2, 3..7),
        k in 0usize..4,
    ) {
        let inner = PartitionMatroid::new(blocks, vec![2, 2]);
        assert_rank_axioms(&TruncatedMatroid::new(inner, k));
    }

    #[test]
    fn laminar_rank_axioms(
        caps in prop::collection::vec(0u32..3, 2),
        global in 0u32..5,
    ) {
        let m = LaminarMatroid::partition_with_global_cap(
            6,
            &[vec![0, 1, 2], vec![3, 4, 5]],
            &caps,
            global,
        );
        assert_rank_axioms(&m);
    }
}
