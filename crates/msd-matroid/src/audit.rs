//! Exhaustive verification of the matroid axioms.
//!
//! Theorem 2's proof leans on deep matroid structure (the basis-exchange
//! bijection of Brualdi's lemma), so feeding a non-matroid oracle into the
//! local search silently voids the guarantee. [`MatroidAudit::exhaustive`]
//! checks the hereditary and augmentation axioms over every pair of subsets
//! — O(4^n), so strictly for test-sized ground sets (n ≤ 12).

use crate::{ElementId, Matroid};

/// One violated matroid axiom with a witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatroidViolation {
    /// `∅ ∉ F`.
    EmptySetDependent,
    /// Some `S' ⊂ S` with `S ∈ F` but `S' ∉ F`.
    NotHereditary {
        set: Vec<ElementId>,
        subset: Vec<ElementId>,
    },
    /// `A, B ∈ F`, `|A| > |B|`, but no `e ∈ A − B` with `B + e ∈ F`.
    NoAugmentation {
        larger: Vec<ElementId>,
        smaller: Vec<ElementId>,
    },
    /// `can_add` disagrees with `is_independent` on `S + u`.
    InconsistentCanAdd { set: Vec<ElementId>, u: ElementId },
    /// `can_swap` disagrees with `is_independent` on `S − v + u`.
    InconsistentCanSwap {
        set: Vec<ElementId>,
        u: ElementId,
        v: ElementId,
    },
}

/// Audit report for a matroid oracle.
#[derive(Debug, Clone)]
pub struct MatroidAudit {
    violations: Vec<MatroidViolation>,
}

impl MatroidAudit {
    /// Exhaustively audits all subsets (and all subset pairs for
    /// augmentation).
    ///
    /// # Panics
    ///
    /// Panics if the ground set exceeds 12 elements.
    pub fn exhaustive<M: Matroid>(m: &M) -> Self {
        let n = m.ground_size();
        assert!(
            n <= 12,
            "exhaustive matroid audit limited to 12 elements, got {n}"
        );
        let full: u32 = 1 << n;
        let to_set = |mask: u32| -> Vec<ElementId> {
            (0..n as ElementId)
                .filter(|&i| mask >> i & 1 == 1)
                .collect()
        };
        let mut violations = Vec::new();

        let independent: Vec<bool> = (0..full)
            .map(|mask| m.is_independent(&to_set(mask)))
            .collect();

        if !independent[0] {
            violations.push(MatroidViolation::EmptySetDependent);
        }

        // Hereditary: removing one element from an independent set stays
        // independent (single-element downward closure implies the full
        // axiom).
        for mask in 0..full {
            if !independent[mask as usize] {
                continue;
            }
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    let sub = mask & !(1 << i);
                    if !independent[sub as usize] {
                        violations.push(MatroidViolation::NotHereditary {
                            set: to_set(mask),
                            subset: to_set(sub),
                        });
                    }
                }
            }
        }

        // Augmentation.
        for a in 0..full {
            if !independent[a as usize] {
                continue;
            }
            let size_a = a.count_ones();
            for b in 0..full {
                if !independent[b as usize] || size_a <= b.count_ones() {
                    continue;
                }
                let candidates = a & !b;
                let mut found = false;
                for i in 0..n {
                    if candidates >> i & 1 == 1 && independent[(b | 1 << i) as usize] {
                        found = true;
                        break;
                    }
                }
                if !found {
                    violations.push(MatroidViolation::NoAugmentation {
                        larger: to_set(a),
                        smaller: to_set(b),
                    });
                }
            }
        }

        // Consistency of the incremental helpers with the oracle.
        for mask in 0..full {
            if !independent[mask as usize] {
                continue;
            }
            let set = to_set(mask);
            for u in 0..n as ElementId {
                if mask >> u & 1 == 1 {
                    continue;
                }
                let expected = independent[(mask | 1 << u) as usize];
                if m.can_add(u, &set) != expected {
                    violations.push(MatroidViolation::InconsistentCanAdd {
                        set: set.clone(),
                        u,
                    });
                }
                for v in 0..n as ElementId {
                    if mask >> v & 1 == 0 {
                        continue;
                    }
                    let swapped = (mask & !(1 << v)) | 1 << u;
                    let expected = independent[swapped as usize];
                    if m.can_swap(u, v, &set) != expected {
                        violations.push(MatroidViolation::InconsistentCanSwap {
                            set: set.clone(),
                            u,
                            v,
                        });
                    }
                }
            }
        }

        Self { violations }
    }

    /// `true` if all axioms hold.
    pub fn is_matroid(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found.
    pub fn violations(&self) -> &[MatroidViolation] {
        &self.violations
    }

    /// Panics with a readable report when an axiom fails. For tests.
    #[track_caller]
    pub fn assert_matroid(&self) {
        assert!(
            self.is_matroid(),
            "matroid axioms violated ({} violations); first: {:?}",
            self.violations.len(),
            self.violations.first()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Not hereditary: only {0,1} and ∅ independent.
    struct Gap;
    impl Matroid for Gap {
        fn ground_size(&self) -> usize {
            2
        }
        fn is_independent(&self, set: &[ElementId]) -> bool {
            set.is_empty() || set.len() == 2
        }
    }

    #[test]
    fn hereditary_violation_detected() {
        let audit = MatroidAudit::exhaustive(&Gap);
        assert!(!audit.is_matroid());
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MatroidViolation::NotHereditary { .. })));
    }

    /// Not augmentable: independent sets are subsets of {0,1} or subsets of
    /// {2}, i.e. two "flats" with no exchange. {0,1} vs {2}: |A|=2 > |B|=1
    /// but neither 0 nor 1 can join {2}.
    struct TwoIslands;
    impl Matroid for TwoIslands {
        fn ground_size(&self) -> usize {
            3
        }
        fn is_independent(&self, set: &[ElementId]) -> bool {
            set.iter().all(|&u| u <= 1) || (set.len() <= 1 && set.iter().all(|&u| u == 2))
        }
    }

    #[test]
    fn augmentation_violation_detected() {
        let audit = MatroidAudit::exhaustive(&TwoIslands);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MatroidViolation::NoAugmentation { .. })));
    }

    /// Empty set dependent.
    struct NoEmpty;
    impl Matroid for NoEmpty {
        fn ground_size(&self) -> usize {
            1
        }
        fn is_independent(&self, set: &[ElementId]) -> bool {
            !set.is_empty()
        }
    }

    #[test]
    fn empty_set_violation_detected() {
        let audit = MatroidAudit::exhaustive(&NoEmpty);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MatroidViolation::EmptySetDependent)));
    }

    /// A valid rank-1 matroid but with a lying `can_add`.
    struct LyingCanAdd;
    impl Matroid for LyingCanAdd {
        fn ground_size(&self) -> usize {
            2
        }
        fn is_independent(&self, set: &[ElementId]) -> bool {
            set.len() <= 1
        }
        fn can_add(&self, _u: ElementId, _set: &[ElementId]) -> bool {
            true
        }
    }

    #[test]
    fn inconsistent_can_add_detected() {
        let audit = MatroidAudit::exhaustive(&LyingCanAdd);
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, MatroidViolation::InconsistentCanAdd { .. })));
    }

    #[test]
    #[should_panic(expected = "limited to 12")]
    fn large_ground_set_rejected() {
        struct Big;
        impl Matroid for Big {
            fn ground_size(&self) -> usize {
                13
            }
            fn is_independent(&self, _: &[ElementId]) -> bool {
                true
            }
        }
        let _ = MatroidAudit::exhaustive(&Big);
    }

    #[test]
    #[should_panic(expected = "matroid axioms violated")]
    fn assert_matroid_panics_on_violation() {
        MatroidAudit::exhaustive(&Gap).assert_matroid();
    }

    #[test]
    fn free_matroid_passes() {
        struct Free;
        impl Matroid for Free {
            fn ground_size(&self) -> usize {
                4
            }
            fn is_independent(&self, _: &[ElementId]) -> bool {
                true
            }
        }
        MatroidAudit::exhaustive(&Free).assert_matroid();
    }
}
