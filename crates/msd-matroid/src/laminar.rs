//! Laminar matroids: capacities on a nested (laminar) family of sets.
//!
//! A family of sets is *laminar* when any two members are disjoint or
//! nested. Given capacities `k_A` for each family member `A`, a set `S`
//! is independent iff `|S ∩ A| ≤ k_A` for every `A`. Laminar matroids
//! strictly generalize partition matroids (a partition plus a global
//! cap is the classic example — e.g. "at most 2 results per site, at most
//! 3 per domain, at most 6 overall") and give the local search of
//! Theorem 2 a hierarchically-constrained playground.

use crate::{ElementId, Matroid};

/// One capacity constraint of the laminar family.
#[derive(Debug, Clone)]
struct Constraint {
    /// Sorted members of the family set.
    members: Vec<ElementId>,
    capacity: u32,
}

/// A laminar matroid.
#[derive(Debug, Clone)]
pub struct LaminarMatroid {
    n: usize,
    constraints: Vec<Constraint>,
}

impl LaminarMatroid {
    /// Builds from `(set, capacity)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if an element is out of range or two family sets properly
    /// intersect (i.e. the family is not laminar).
    pub fn new(n: usize, family: Vec<(Vec<ElementId>, u32)>) -> Self {
        let mut constraints = Vec::with_capacity(family.len());
        for (i, (mut members, capacity)) in family.into_iter().enumerate() {
            members.sort_unstable();
            members.dedup();
            if let Some(&max) = members.last() {
                assert!(
                    (max as usize) < n,
                    "family set {i} references out-of-range element {max}"
                );
            }
            constraints.push(Constraint { members, capacity });
        }
        // Laminarity check: every pair is disjoint or nested.
        for i in 0..constraints.len() {
            for j in (i + 1)..constraints.len() {
                let a = &constraints[i].members;
                let b = &constraints[j].members;
                let inter = intersection_size(a, b);
                let nested = inter == a.len() || inter == b.len();
                let disjoint = inter == 0;
                assert!(
                    nested || disjoint,
                    "family sets {i} and {j} properly intersect — not laminar"
                );
            }
        }
        Self { n, constraints }
    }

    /// Convenience: a partition matroid plus a global cardinality cap,
    /// the canonical laminar example.
    pub fn partition_with_global_cap(
        n: usize,
        blocks: &[Vec<ElementId>],
        block_caps: &[u32],
        global_cap: u32,
    ) -> Self {
        assert_eq!(blocks.len(), block_caps.len(), "one capacity per block");
        let mut family: Vec<(Vec<ElementId>, u32)> = blocks
            .iter()
            .zip(block_caps)
            .map(|(b, &c)| (b.clone(), c))
            .collect();
        family.push(((0..n as ElementId).collect(), global_cap));
        Self::new(n, family)
    }

    /// Number of constraints in the family.
    pub fn family_size(&self) -> usize {
        self.constraints.len()
    }
}

fn intersection_size(a: &[ElementId], b: &[ElementId]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

impl Matroid for LaminarMatroid {
    fn ground_size(&self) -> usize {
        self.n
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        if set.iter().any(|&u| (u as usize) >= self.n) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let mut occupancy = 0u32;
            for &u in set {
                if c.members.binary_search(&u).is_ok() {
                    occupancy += 1;
                    if occupancy > c.capacity {
                        return false;
                    }
                }
            }
            true
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MatroidAudit;

    /// Blocks {0,1,2} cap 2, {3,4} cap 2, global cap 3.
    fn sample() -> LaminarMatroid {
        LaminarMatroid::partition_with_global_cap(5, &[vec![0, 1, 2], vec![3, 4]], &[2, 2], 3)
    }

    #[test]
    fn respects_block_and_global_caps() {
        let m = sample();
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0, 1, 3]));
        assert!(m.is_independent(&[0, 3, 4]));
        assert!(!m.is_independent(&[0, 1, 2])); // block 0 over capacity
        assert!(!m.is_independent(&[0, 1, 3, 4])); // global cap exceeded
    }

    #[test]
    fn rank_accounts_for_all_levels() {
        assert_eq!(sample().rank(), 3);
        // Without the global cap, rank = 4.
        let m = LaminarMatroid::new(5, vec![(vec![0, 1, 2], 2), (vec![3, 4], 2)]);
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn nested_family_is_accepted() {
        // {0} ⊂ {0,1} ⊂ {0,1,2,3}.
        let m = LaminarMatroid::new(
            4,
            vec![(vec![0], 1), (vec![0, 1], 1), (vec![0, 1, 2, 3], 2)],
        );
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[0, 1])); // middle constraint
        assert!(!m.is_independent(&[1, 2, 3])); // outer constraint
        assert_eq!(m.family_size(), 3);
    }

    #[test]
    #[should_panic(expected = "not laminar")]
    fn crossing_family_rejected() {
        let _ = LaminarMatroid::new(3, vec![(vec![0, 1], 1), (vec![1, 2], 1)]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_member_rejected() {
        let _ = LaminarMatroid::new(2, vec![(vec![5], 1)]);
    }

    #[test]
    fn out_of_range_elements_are_dependent() {
        assert!(!sample().is_independent(&[9]));
    }

    #[test]
    fn zero_capacity_makes_members_loops() {
        let m = LaminarMatroid::new(3, vec![(vec![0], 0)]);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1, 2]));
    }

    #[test]
    fn axioms_hold_on_partition_with_cap() {
        MatroidAudit::exhaustive(&sample()).assert_matroid();
    }

    #[test]
    fn axioms_hold_on_nested_chain() {
        let m = LaminarMatroid::new(
            5,
            vec![
                (vec![0, 1], 1),
                (vec![0, 1, 2, 3], 2),
                (vec![0, 1, 2, 3, 4], 3),
            ],
        );
        MatroidAudit::exhaustive(&m).assert_matroid();
    }

    #[test]
    fn axioms_hold_with_duplicated_members_in_input() {
        let m = LaminarMatroid::new(3, vec![(vec![0, 0, 1], 1)]);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }

    #[test]
    fn matches_partition_matroid_without_global_cap() {
        let laminar = LaminarMatroid::new(4, vec![(vec![0, 1], 1), (vec![2, 3], 1)]);
        let partition = crate::PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
        for mask in 0u32..16 {
            let set: Vec<ElementId> = (0..4).filter(|&i| mask >> i & 1 == 1).collect();
            assert_eq!(laminar.is_independent(&set), partition.is_independent(&set));
        }
    }
}
