//! Transversal matroids: systems of distinct representatives.
//!
//! Given a collection `C = {C_1, …, C_m}` of (possibly overlapping) subsets
//! of the universe, a set `S` is independent iff its elements can be matched
//! to *distinct* sets containing them — i.e. `S` is a partial transversal.
//! The paper's Section 1 uses this to select a set of database tuples that
//! "form a set of representatives for the collection".

use crate::matching::BipartiteGraph;
use crate::{ElementId, Matroid};

/// A transversal matroid induced by a set collection.
#[derive(Debug, Clone)]
pub struct TransversalMatroid {
    n: usize,
    /// `member_of[u]` = sorted indices of the sets containing `u`.
    member_of: Vec<Vec<u32>>,
    num_sets: usize,
}

impl TransversalMatroid {
    /// Builds from the collection itself: `sets[i]` lists the elements of
    /// `C_i`.
    ///
    /// # Panics
    ///
    /// Panics if a set references an element `≥ n`.
    pub fn new(n: usize, sets: &[Vec<ElementId>]) -> Self {
        let mut member_of = vec![Vec::new(); n];
        for (i, set) in sets.iter().enumerate() {
            for &u in set {
                assert!(
                    (u as usize) < n,
                    "set {i} references out-of-range element {u}"
                );
                member_of[u as usize].push(i as u32);
            }
        }
        for m in &mut member_of {
            m.sort_unstable();
            m.dedup();
        }
        Self {
            n,
            member_of,
            num_sets: sets.len(),
        }
    }

    /// Number of sets in the collection.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The sets containing element `u`.
    pub fn sets_containing(&self, u: ElementId) -> &[u32] {
        &self.member_of[u as usize]
    }

    /// Builds the bipartite graph between `set` (left) and the collection
    /// (right).
    fn graph_for(&self, set: &[ElementId]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(set.len(), self.num_sets);
        for (l, &u) in set.iter().enumerate() {
            for &c in &self.member_of[u as usize] {
                g.add_edge(l as u32, c);
            }
        }
        g
    }
}

impl Matroid for TransversalMatroid {
    fn ground_size(&self) -> usize {
        self.n
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        if set.iter().any(|&u| (u as usize) >= self.n) {
            return false;
        }
        if set.len() > self.num_sets {
            return false; // cannot saturate more elements than sets
        }
        self.graph_for(set).maximum_matching().saturates_left()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MatroidAudit;

    /// C_0 = {0, 1}, C_1 = {1, 2}, C_2 = {2, 3}.
    fn chain() -> TransversalMatroid {
        TransversalMatroid::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]])
    }

    #[test]
    fn partial_transversals_are_independent() {
        let m = chain();
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[1]));
        assert!(m.is_independent(&[0, 1])); // 0→C0, 1→C1
        assert!(m.is_independent(&[1, 2])); // 1→C0, 2→C1 (or C2)
        assert!(m.is_independent(&[0, 1, 2])); // 0→C0, 1→C1, 2→C2
        assert!(m.is_independent(&[1, 2, 3])); // 1→C0, 2→C1, 3→C2
    }

    #[test]
    fn oversubscribed_sets_are_dependent() {
        let m = chain();
        // 0 and 1 and 2 and 3 → only 3 sets, 4 elements.
        assert!(!m.is_independent(&[0, 1, 2, 3]));
        // Element 0 only belongs to C0, element 1 can move, but {0,1} with
        // a matroid on a single set:
        let single = TransversalMatroid::new(2, &[vec![0, 1]]);
        assert!(!single.is_independent(&[0, 1]));
        assert!(single.is_independent(&[0]));
        assert!(single.is_independent(&[1]));
    }

    #[test]
    fn element_in_no_set_is_a_loop() {
        // Element 1 belongs to no set → never independent with anything.
        let m = TransversalMatroid::new(2, &[vec![0]]);
        assert!(!m.is_independent(&[1]));
        assert!(m.is_independent(&[0]));
    }

    #[test]
    fn out_of_range_elements_are_dependent() {
        let m = chain();
        assert!(!m.is_independent(&[9]));
    }

    #[test]
    fn rank_is_maximum_matching_size() {
        let m = chain();
        assert_eq!(m.rank(), 3);
        let deficient = TransversalMatroid::new(3, &[vec![0, 1, 2]]);
        assert_eq!(deficient.rank(), 1);
    }

    #[test]
    fn duplicate_memberships_are_deduplicated() {
        let m = TransversalMatroid::new(2, &[vec![0, 0, 1]]);
        assert_eq!(m.sets_containing(0), &[0]);
        assert!(!m.is_independent(&[0, 1]));
    }

    #[test]
    fn accessors() {
        let m = chain();
        assert_eq!(m.num_sets(), 3);
        assert_eq!(m.sets_containing(1), &[0, 1]);
        assert_eq!(m.ground_size(), 4);
    }

    #[test]
    #[should_panic(expected = "out-of-range element")]
    fn out_of_range_set_member_rejected() {
        let _ = TransversalMatroid::new(2, &[vec![5]]);
    }

    #[test]
    fn axioms_hold_on_chain() {
        MatroidAudit::exhaustive(&chain()).assert_matroid();
    }

    #[test]
    fn axioms_hold_on_overlapping_collection() {
        let m = TransversalMatroid::new(5, &[vec![0, 1, 2], vec![1, 2, 3], vec![0, 4], vec![2]]);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }

    #[test]
    fn axioms_hold_with_loops_and_duplicates() {
        let m = TransversalMatroid::new(4, &[vec![0, 1], vec![0, 1]]);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }
}
