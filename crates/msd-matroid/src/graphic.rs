//! Graphic matroids: ground set = edges of a graph, independent sets =
//! forests.
//!
//! Graphic matroids round out the substrate with a structurally different
//! oracle (cycle detection via union-find) and power the workspace's
//! "diverse spanning backbone" integration tests: pick a maximally diverse
//! set of links subject to forming no cycle.

use crate::unionfind::UnionFind;
use crate::{ElementId, Matroid};

/// A graphic matroid over the edge set of an undirected multigraph.
///
/// Ground-set element `i` is the edge `edges[i] = (a, b)` on vertices
/// `0..num_vertices`. Self-loops are dependent as singletons (standard
/// matroid convention: a loop is never independent).
#[derive(Debug, Clone)]
pub struct GraphicMatroid {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphicMatroid {
    /// Builds from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `≥ num_vertices`.
    pub fn new(num_vertices: usize, edges: Vec<(u32, u32)>) -> Self {
        for (i, &(a, b)) in edges.iter().enumerate() {
            assert!(
                (a as usize) < num_vertices && (b as usize) < num_vertices,
                "edge {i} = ({a},{b}) references an out-of-range vertex"
            );
        }
        Self {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices in the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The endpoints of a ground-set element.
    pub fn edge(&self, e: ElementId) -> (u32, u32) {
        self.edges[e as usize]
    }
}

impl Matroid for GraphicMatroid {
    fn ground_size(&self) -> usize {
        self.edges.len()
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        if set.iter().any(|&e| (e as usize) >= self.edges.len()) {
            return false;
        }
        let mut uf = UnionFind::new(self.num_vertices);
        for &e in set {
            let (a, b) = self.edges[e as usize];
            if a == b || !uf.union(a, b) {
                return false; // self-loop or cycle
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MatroidAudit;

    /// Triangle on vertices 0,1,2 plus a pendant edge 2-3.
    fn triangle_plus_tail() -> GraphicMatroid {
        GraphicMatroid::new(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn forests_are_independent() {
        let m = triangle_plus_tail();
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0]));
        assert!(m.is_independent(&[0, 1, 3]));
        assert!(m.is_independent(&[1, 2, 3]));
    }

    #[test]
    fn cycles_are_dependent() {
        let m = triangle_plus_tail();
        assert!(!m.is_independent(&[0, 1, 2])); // the triangle
        assert!(!m.is_independent(&[0, 1, 2, 3]));
    }

    #[test]
    fn self_loops_are_dependent_singletons() {
        let m = GraphicMatroid::new(2, vec![(0, 0), (0, 1)]);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
    }

    #[test]
    fn parallel_edges_are_pairwise_dependent() {
        let m = GraphicMatroid::new(2, vec![(0, 1), (0, 1)]);
        assert!(m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
        assert!(!m.is_independent(&[0, 1]));
    }

    #[test]
    fn rank_is_spanning_forest_size() {
        // Connected graph on 4 vertices → rank 3.
        assert_eq!(triangle_plus_tail().rank(), 3);
        // Two components: rank = n - #components.
        let m = GraphicMatroid::new(4, vec![(0, 1), (2, 3)]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn out_of_range_edges_are_dependent() {
        let m = triangle_plus_tail();
        assert!(!m.is_independent(&[17]));
    }

    #[test]
    #[should_panic(expected = "out-of-range vertex")]
    fn bad_edge_rejected() {
        let _ = GraphicMatroid::new(2, vec![(0, 5)]);
    }

    #[test]
    fn accessors() {
        let m = triangle_plus_tail();
        assert_eq!(m.num_vertices(), 4);
        assert_eq!(m.edge(3), (2, 3));
        assert_eq!(m.ground_size(), 4);
    }

    #[test]
    fn axioms_hold_on_triangle_plus_tail() {
        MatroidAudit::exhaustive(&triangle_plus_tail()).assert_matroid();
    }

    #[test]
    fn axioms_hold_with_loops_and_parallels() {
        let m = GraphicMatroid::new(3, vec![(0, 0), (0, 1), (0, 1), (1, 2)]);
        MatroidAudit::exhaustive(&m).assert_matroid();
    }
}
