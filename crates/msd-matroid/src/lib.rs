//! Matroid substrate for max-sum diversification.
//!
//! Section 5 of Borodin et al. generalizes the cardinality constraint to an
//! arbitrary matroid `M = ⟨U, F⟩` and proves that single-swap local search
//! is a 2-approximation. This crate provides the independence oracles that
//! the local-search algorithm consumes:
//!
//! * [`Matroid`] — the oracle trait (independence test + helpers derived
//!   from it: extension tests, basis completion, rank computation),
//! * [`UniformMatroid`] — `|S| ≤ k` (the cardinality constraint),
//! * [`PartitionMatroid`] — per-block capacities (the paper's "ni tuples
//!   from database field i" scenario),
//! * [`TransversalMatroid`] — systems of distinct representatives over a
//!   collection of possibly-overlapping sets (the paper's second example),
//! * [`GraphicMatroid`] — forests of a graph,
//! * [`TruncatedMatroid`] — intersection with a uniform matroid, which the
//!   paper notes is again a matroid ("we could further impose the
//!   constraint that the set S has at most p elements"), and
//! * [`audit`] — exhaustive axiom verification (hereditary + augmentation)
//!   for test-sized ground sets.
//!
//! Internal algorithm helpers live in [`unionfind`] (for graphic matroids)
//! and [`matching`] (augmenting-path bipartite matching for transversal
//! matroids).

pub mod audit;
pub mod graphic;
pub mod laminar;
pub mod matching;
pub mod partition;
pub mod transversal;
pub mod truncated;
pub mod uniform;
pub mod unionfind;

pub use graphic::GraphicMatroid;
pub use laminar::LaminarMatroid;
pub use partition::PartitionMatroid;
pub use transversal::TransversalMatroid;
pub use truncated::TruncatedMatroid;
pub use uniform::UniformMatroid;

/// Identifier of a ground-set element (shared with the rest of the
/// workspace).
pub type ElementId = u32;

/// An independence oracle for a matroid `M = ⟨U, F⟩`.
///
/// Implementations must satisfy the matroid axioms:
///
/// * **Hereditary** — `∅ ∈ F`, and subsets of independent sets are
///   independent.
/// * **Augmentation** — if `A, B ∈ F` and `|A| > |B|` then some
///   `e ∈ A − B` has `B + e ∈ F`.
///
/// [`audit::MatroidAudit`] verifies both axioms exhaustively on small
/// ground sets; every implementation in this crate is tested against it.
pub trait Matroid {
    /// Ground-set size `|U|`.
    fn ground_size(&self) -> usize;

    /// `true` iff `set` (distinct elements, arbitrary order) is independent.
    fn is_independent(&self, set: &[ElementId]) -> bool;

    /// `true` iff `set + u` is independent, for `u ∉ set`.
    ///
    /// The default allocates; implementations override with incremental
    /// checks where cheap (uniform, partition).
    fn can_add(&self, u: ElementId, set: &[ElementId]) -> bool {
        let mut with = Vec::with_capacity(set.len() + 1);
        with.extend_from_slice(set);
        with.push(u);
        self.is_independent(&with)
    }

    /// `true` iff `set − v + u` is independent, for `v ∈ set`, `u ∉ set`.
    ///
    /// This is the swap test at the heart of the paper's local-search
    /// algorithm.
    fn can_swap(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> bool {
        let mut swapped: Vec<ElementId> = Vec::with_capacity(set.len());
        swapped.extend(set.iter().copied().filter(|&x| x != v));
        swapped.push(u);
        self.is_independent(&swapped)
    }

    /// Exchange-feasibility fast path for hot swap scans: `true` iff
    /// `set − out + inn` is independent, for `out ∈ set`, `inn ∉ set`.
    ///
    /// Semantically identical to [`Matroid::can_swap`]`(inn, out, set)` —
    /// the argument order names the exchange direction explicitly (`out`
    /// leaves, `inn` enters), matching the enumeration order of the
    /// dynamic session's constrained scan which probes every candidate
    /// column against every member. Families with structure cheaper than
    /// the generic swap test override this (uniform: O(1); partition:
    /// O(1) for same-block exchanges).
    fn exchange_feasible(&self, set: &[ElementId], out: ElementId, inn: ElementId) -> bool {
        self.can_swap(inn, out, set)
    }

    /// Greedily extends `set` to a basis (a maximal independent set)
    /// containing it, scanning elements in id order.
    ///
    /// # Panics
    ///
    /// Panics if `set` itself is not independent.
    fn extend_to_basis(&self, set: &[ElementId]) -> Vec<ElementId> {
        assert!(
            self.is_independent(set),
            "cannot extend a dependent set to a basis"
        );
        let mut basis = set.to_vec();
        for u in 0..self.ground_size() as ElementId {
            if !basis.contains(&u) && self.can_add(u, &basis) {
                basis.push(u);
            }
        }
        basis
    }

    /// The rank of the matroid (size of every basis).
    fn rank(&self) -> usize {
        self.extend_to_basis(&[]).len()
    }

    /// Rank of a subset: the size of a maximal independent subset of `set`.
    fn rank_of(&self, set: &[ElementId]) -> usize {
        let mut independent: Vec<ElementId> = Vec::new();
        for &u in set {
            if self.can_add(u, &independent) {
                independent.push(u);
            }
        }
        independent.len()
    }
}

impl<M: Matroid + ?Sized> Matroid for &M {
    fn ground_size(&self) -> usize {
        (**self).ground_size()
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        (**self).is_independent(set)
    }

    fn can_add(&self, u: ElementId, set: &[ElementId]) -> bool {
        (**self).can_add(u, set)
    }

    fn can_swap(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> bool {
        (**self).can_swap(u, v, set)
    }

    fn exchange_feasible(&self, set: &[ElementId], out: ElementId, inn: ElementId) -> bool {
        (**self).exchange_feasible(set, out, inn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_helpers_work_through_uniform_matroid() {
        let m = UniformMatroid::new(5, 3);
        assert!(m.can_add(0, &[1, 2]));
        assert!(!m.can_add(0, &[1, 2, 3]));
        assert!(m.can_swap(0, 3, &[1, 2, 3]));
        let basis = m.extend_to_basis(&[4]);
        assert_eq!(basis.len(), 3);
        assert!(basis.contains(&4));
        assert_eq!(m.rank(), 3);
        assert_eq!(m.rank_of(&[0, 1]), 2);
        assert_eq!(m.rank_of(&[0, 1, 2, 3, 4]), 3);
    }

    #[test]
    #[should_panic(expected = "dependent set")]
    fn extending_dependent_set_panics() {
        let m = UniformMatroid::new(5, 1);
        let _ = m.extend_to_basis(&[0, 1]);
    }

    #[test]
    fn reference_delegation() {
        let m = UniformMatroid::new(4, 2);
        let r: &dyn Matroid = &m;
        assert_eq!(r.ground_size(), 4);
        assert!(r.is_independent(&[0, 1]));
        assert!(!r.can_add(2, &[0, 1]));
        assert!(r.can_swap(2, 0, &[0, 1]));
        assert!(r.exchange_feasible(&[0, 1], 0, 2));
    }

    /// Every `exchange_feasible` override must agree with the generic
    /// `can_swap` on all (independent-set, out, in) triples of a small
    /// ground set — the fast paths are pure speedups, never semantics.
    #[test]
    fn exchange_feasible_agrees_with_can_swap_across_families() {
        let n = 6usize;
        let matroids: Vec<Box<dyn Matroid>> = vec![
            Box::new(UniformMatroid::new(n, 3)),
            Box::new(PartitionMatroid::new(vec![0, 0, 1, 1, 2, 2], vec![1, 2, 1])),
            Box::new(TruncatedMatroid::new(
                PartitionMatroid::new(vec![0, 0, 0, 1, 1, 1], vec![2, 2]),
                3,
            )),
            Box::new(GraphicMatroid::new(
                4,
                vec![(0, 1), (1, 2), (0, 2), (2, 3), (0, 3), (1, 3)],
            )),
            Box::new(LaminarMatroid::new(
                n,
                vec![((0..n as ElementId).collect(), 3), (vec![0, 1, 2], 2)],
            )),
            Box::new(TransversalMatroid::new(
                n,
                &[vec![0, 1, 2], vec![2, 3], vec![4, 5]],
            )),
        ];
        for m in &matroids {
            for mask in 0u32..(1 << n) {
                let set: Vec<ElementId> = (0..n as ElementId)
                    .filter(|&i| mask >> i & 1 == 1)
                    .collect();
                if !m.is_independent(&set) {
                    continue;
                }
                for &out in &set {
                    for inn in 0..n as ElementId {
                        if set.contains(&inn) {
                            continue;
                        }
                        assert_eq!(
                            m.exchange_feasible(&set, out, inn),
                            m.can_swap(inn, out, &set),
                            "{set:?} -{out} +{inn}"
                        );
                    }
                }
            }
        }
    }
}
