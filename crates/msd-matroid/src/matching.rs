//! Bipartite maximum matching via augmenting paths (Kuhn's algorithm).
//!
//! Internal engine for [`crate::TransversalMatroid`]'s independence oracle:
//! a set `S` is independent iff the bipartite graph between `S` and the set
//! collection admits a matching saturating `S`. Also used by the core
//! crate's Hassin-et-al dispersion algorithm tests.

/// A bipartite graph between `left` vertices `0..n_left` and `right`
/// vertices `0..n_right`, stored as adjacency lists on the left side.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_right: usize,
    /// `adj[l]` = right-neighbours of left vertex `l`.
    adj: Vec<Vec<u32>>,
}

impl BipartiteGraph {
    /// An empty graph with the given part sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_right,
            adj: vec![Vec::new(); n_left],
        }
    }

    /// Adds an edge `(l, r)`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: u32, r: u32) {
        assert!(
            (l as usize) < self.adj.len(),
            "left vertex {l} out of range"
        );
        assert!((r as usize) < self.n_right, "right vertex {r} out of range");
        self.adj[l as usize].push(r);
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Neighbours of a left vertex.
    pub fn neighbours(&self, l: u32) -> &[u32] {
        &self.adj[l as usize]
    }

    /// Computes a maximum matching; returns `match_of_left` where
    /// `match_of_left[l] == Some(r)` iff `l` is matched to `r`.
    pub fn maximum_matching(&self) -> Matching {
        let mut match_of_right: Vec<Option<u32>> = vec![None; self.n_right];
        let mut match_of_left: Vec<Option<u32>> = vec![None; self.adj.len()];
        let mut visited = vec![false; self.n_right];
        let mut size = 0usize;
        for l in 0..self.adj.len() as u32 {
            visited.iter_mut().for_each(|v| *v = false);
            if self.augment(l, &mut match_of_right, &mut visited) {
                size += 1;
            }
        }
        for (r, &ml) in match_of_right.iter().enumerate() {
            if let Some(l) = ml {
                match_of_left[l as usize] = Some(r as u32);
            }
        }
        Matching {
            match_of_left,
            match_of_right,
            size,
        }
    }

    /// Tries to find an augmenting path from left vertex `l`.
    fn augment(&self, l: u32, match_of_right: &mut [Option<u32>], visited: &mut [bool]) -> bool {
        for &r in &self.adj[l as usize] {
            let r_us = r as usize;
            if visited[r_us] {
                continue;
            }
            visited[r_us] = true;
            if match_of_right[r_us].is_none()
                || self.augment(match_of_right[r_us].unwrap(), match_of_right, visited)
            {
                match_of_right[r_us] = Some(l);
                return true;
            }
        }
        false
    }
}

/// Result of a maximum-matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `match_of_left[l]` = the right vertex matched to `l`, if any.
    pub match_of_left: Vec<Option<u32>>,
    /// `match_of_right[r]` = the left vertex matched to `r`, if any.
    pub match_of_right: Vec<Option<u32>>,
    /// Matching cardinality.
    pub size: usize,
}

impl Matching {
    /// `true` iff every left vertex is matched.
    pub fn saturates_left(&self) -> bool {
        self.size == self.match_of_left.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity_graph() {
        let mut g = BipartiteGraph::new(3, 3);
        for i in 0..3 {
            g.add_edge(i, i);
        }
        let m = g.maximum_matching();
        assert_eq!(m.size, 3);
        assert!(m.saturates_left());
        for i in 0..3u32 {
            assert_eq!(m.match_of_left[i as usize], Some(i));
        }
    }

    #[test]
    fn augmenting_path_reassigns_earlier_match() {
        // l0 - {r0}, l1 - {r0, r1}: greedy would match l0-r0 then l1 must
        // take r1 via augmentation... actually give l1 only r0 to force a
        // conflict, then add r1 to l1.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        let m = g.maximum_matching();
        assert_eq!(m.size, 2);
        assert_eq!(m.match_of_left[0], Some(0));
        assert_eq!(m.match_of_left[1], Some(1));
    }

    #[test]
    fn chain_augmentation() {
        // l0: {r0}; l1: {r0, r1}; l2: {r1, r2} — needs a chain of swaps.
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(2, 1);
        g.add_edge(2, 2);
        let m = g.maximum_matching();
        assert_eq!(m.size, 3);
        assert!(m.saturates_left());
    }

    #[test]
    fn deficient_graph_leaves_left_unsaturated() {
        // Two left vertices compete for one right vertex.
        let mut g = BipartiteGraph::new(2, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        let m = g.maximum_matching();
        assert_eq!(m.size, 1);
        assert!(!m.saturates_left());
        // match_of_right consistent with match_of_left
        let r0 = m.match_of_right[0].unwrap();
        assert_eq!(m.match_of_left[r0 as usize], Some(0));
    }

    #[test]
    fn isolated_left_vertex_is_unmatched() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 1);
        let m = g.maximum_matching();
        assert_eq!(m.size, 1);
        assert_eq!(m.match_of_left[1], None);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(0, 0);
        let m = g.maximum_matching();
        assert_eq!(m.size, 0);
        assert!(m.saturates_left()); // vacuously
    }

    #[test]
    fn accessors() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 2);
        assert_eq!(g.n_left(), 2);
        assert_eq!(g.n_right(), 3);
        assert_eq!(g.neighbours(0), &[2]);
        assert!(g.neighbours(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        BipartiteGraph::new(1, 1).add_edge(0, 5);
    }

    #[test]
    fn larger_random_like_instance_matches_hall_bound() {
        // Complete bipartite K_{4,6}: maximum matching is 4.
        let mut g = BipartiteGraph::new(4, 6);
        for l in 0..4 {
            for r in 0..6 {
                g.add_edge(l, r);
            }
        }
        assert_eq!(g.maximum_matching().size, 4);
    }
}
