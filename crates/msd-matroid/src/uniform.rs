//! The uniform matroid `U_{n,k}`: a set is independent iff `|S| ≤ k`.
//!
//! This is exactly the cardinality constraint of the paper's Section 4
//! (Max-Sum p Diversification); running the Section 5 local search over a
//! uniform matroid recovers the cardinality-constrained problem.

use crate::{ElementId, Matroid};

/// Uniform matroid over `n` elements with rank `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformMatroid {
    n: usize,
    k: usize,
}

impl UniformMatroid {
    /// Creates `U_{n,k}`. `k` is clamped to `n` (a rank above the ground
    /// size is meaningless).
    pub fn new(n: usize, k: usize) -> Self {
        Self { n, k: k.min(n) }
    }

    /// The rank bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Matroid for UniformMatroid {
    fn ground_size(&self) -> usize {
        self.n
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        set.len() <= self.k && set.iter().all(|&u| (u as usize) < self.n)
    }

    /// O(1): only the cardinality matters.
    fn can_add(&self, u: ElementId, set: &[ElementId]) -> bool {
        (u as usize) < self.n && set.len() < self.k
    }

    /// O(1): a swap never changes the cardinality.
    fn can_swap(&self, u: ElementId, _v: ElementId, set: &[ElementId]) -> bool {
        (u as usize) < self.n && set.len() <= self.k
    }

    /// O(1): every in-range exchange of a feasible set is feasible.
    fn exchange_feasible(&self, set: &[ElementId], _out: ElementId, inn: ElementId) -> bool {
        (inn as usize) < self.n && set.len() <= self.k
    }

    fn rank(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MatroidAudit;

    #[test]
    fn independence_is_cardinality() {
        let m = UniformMatroid::new(5, 2);
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[3]));
        assert!(m.is_independent(&[3, 0]));
        assert!(!m.is_independent(&[3, 0, 1]));
    }

    #[test]
    fn out_of_range_elements_are_dependent() {
        let m = UniformMatroid::new(3, 3);
        assert!(!m.is_independent(&[7]));
        assert!(!m.can_add(7, &[]));
    }

    #[test]
    fn rank_is_k() {
        assert_eq!(UniformMatroid::new(10, 4).rank(), 4);
        assert_eq!(UniformMatroid::new(3, 9).rank(), 3); // clamped
        assert_eq!(UniformMatroid::new(3, 9).k(), 3);
    }

    #[test]
    fn swap_preserves_cardinality() {
        let m = UniformMatroid::new(4, 2);
        assert!(m.can_swap(3, 0, &[0, 1]));
        assert!(!m.can_swap(9, 0, &[0, 1]));
    }

    #[test]
    fn axioms_hold() {
        for k in 0..=4 {
            MatroidAudit::exhaustive(&UniformMatroid::new(4, k)).assert_matroid();
        }
    }

    #[test]
    fn zero_rank_matroid_has_only_empty_independent_set() {
        let m = UniformMatroid::new(3, 0);
        assert!(m.is_independent(&[]));
        assert!(!m.is_independent(&[0]));
        assert_eq!(m.rank(), 0);
    }
}
