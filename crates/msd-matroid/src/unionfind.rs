//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! Internal helper for [`crate::GraphicMatroid`]'s cycle detection; exposed
//! publicly because downstream simulation code (clustered data generation)
//! also finds it useful.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// Parent pointers; roots point to themselves.
    parent: Vec<u32>,
    /// Component sizes, valid at roots only.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s component (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no path compression), usable without `&mut`.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merges the components of `a` and `b`. Returns `false` if they were
    /// already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// `true` iff `a` and `b` share a component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s component.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already joined
        assert!(uf.union(0, 2));
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(1, 4));
        assert_eq!(uf.components(), 2);
        assert_eq!(uf.component_size(3), 4);
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        for x in 0..6 {
            assert_eq!(uf.find_immutable(x), uf.find(x));
        }
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.component_size(0), n as u32);
        assert!(uf.connected(0, n as u32 - 1));
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
    }
}
