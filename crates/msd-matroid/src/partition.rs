//! Partition matroids: per-block capacities.
//!
//! The universe is partitioned into blocks `S_1, …, S_m`; a set is
//! independent iff it contains at most `k_i` elements of block `i`. The
//! paper's Section 1 motivates these for retrieving "ni tuples from a
//! specific database field i" and for balancing stock portfolios across
//! sectors; the Appendix counterexample (greedy fails on matroids) is a
//! two-block partition matroid.

use crate::{ElementId, Matroid};

/// A partition matroid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMatroid {
    /// `block_of[u]` = block index of element `u`.
    block_of: Vec<u32>,
    /// `capacity[b]` = maximum number of elements selectable from block `b`.
    capacity: Vec<u32>,
}

impl PartitionMatroid {
    /// Builds from a block assignment and per-block capacities.
    ///
    /// # Panics
    ///
    /// Panics if any element references a block `≥ capacity.len()`.
    pub fn new(block_of: Vec<u32>, capacity: Vec<u32>) -> Self {
        let m = capacity.len() as u32;
        for (u, &b) in block_of.iter().enumerate() {
            assert!(b < m, "element {u} assigned to out-of-range block {b}");
        }
        Self { block_of, capacity }
    }

    /// Builds from explicit blocks: `blocks[i]` lists the elements of block
    /// `i`, which must partition `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not form a partition of `0..n`.
    pub fn from_blocks(n: usize, blocks: &[Vec<ElementId>], capacity: Vec<u32>) -> Self {
        assert_eq!(blocks.len(), capacity.len(), "one capacity per block");
        let mut block_of = vec![u32::MAX; n];
        for (b, elems) in blocks.iter().enumerate() {
            for &u in elems {
                assert!((u as usize) < n, "element {u} out of range");
                assert_eq!(
                    block_of[u as usize],
                    u32::MAX,
                    "element {u} appears in two blocks"
                );
                block_of[u as usize] = b as u32;
            }
        }
        assert!(
            block_of.iter().all(|&b| b != u32::MAX),
            "blocks must cover every element"
        );
        Self::new(block_of, capacity)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.capacity.len()
    }

    /// Block of an element.
    pub fn block_of(&self, u: ElementId) -> u32 {
        self.block_of[u as usize]
    }

    /// Capacity of a block.
    pub fn capacity_of(&self, block: u32) -> u32 {
        self.capacity[block as usize]
    }

    /// Per-block occupancy of `set`.
    fn counts(&self, set: &[ElementId]) -> Vec<u32> {
        let mut counts = vec![0u32; self.capacity.len()];
        for &u in set {
            counts[self.block_of[u as usize] as usize] += 1;
        }
        counts
    }
}

impl Matroid for PartitionMatroid {
    fn ground_size(&self) -> usize {
        self.block_of.len()
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        if set.iter().any(|&u| (u as usize) >= self.block_of.len()) {
            return false;
        }
        self.counts(set)
            .iter()
            .zip(&self.capacity)
            .all(|(&c, &cap)| c <= cap)
    }

    /// O(|S|): count only `u`'s block.
    fn can_add(&self, u: ElementId, set: &[ElementId]) -> bool {
        if (u as usize) >= self.block_of.len() {
            return false;
        }
        let b = self.block_of[u as usize];
        let occupancy = set
            .iter()
            .filter(|&&v| self.block_of[v as usize] == b)
            .count() as u32;
        occupancy < self.capacity[b as usize]
    }

    /// O(|S|): the swap only matters within `u`'s block.
    fn can_swap(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> bool {
        if (u as usize) >= self.block_of.len() {
            return false;
        }
        let bu = self.block_of[u as usize];
        let occupancy = set
            .iter()
            .filter(|&&x| x != v && self.block_of[x as usize] == bu)
            .count() as u32;
        occupancy < self.capacity[bu as usize]
    }

    /// O(1) for same-block exchanges (a feasible set stays feasible when
    /// an element is replaced within its own block); O(|S|) otherwise.
    fn exchange_feasible(&self, set: &[ElementId], out: ElementId, inn: ElementId) -> bool {
        if (inn as usize) >= self.block_of.len() {
            return false;
        }
        let bi = self.block_of[inn as usize];
        if self.block_of[out as usize] == bi {
            return true;
        }
        self.can_swap(inn, out, set)
    }

    fn rank(&self) -> usize {
        // Rank = Σ min(|block|, capacity).
        let mut sizes = vec![0u32; self.capacity.len()];
        for &b in &self.block_of {
            sizes[b as usize] += 1;
        }
        sizes
            .iter()
            .zip(&self.capacity)
            .map(|(&s, &c)| s.min(c) as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MatroidAudit;

    /// Elements 0,1,2 in block 0 (cap 2); elements 3,4 in block 1 (cap 1).
    fn sample() -> PartitionMatroid {
        PartitionMatroid::new(vec![0, 0, 0, 1, 1], vec![2, 1])
    }

    #[test]
    fn independence_respects_block_capacities() {
        let m = sample();
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0, 1, 3]));
        assert!(!m.is_independent(&[0, 1, 2])); // block 0 over capacity
        assert!(!m.is_independent(&[3, 4])); // block 1 over capacity
    }

    #[test]
    fn can_add_counts_only_the_relevant_block() {
        let m = sample();
        assert!(m.can_add(2, &[0, 3]));
        assert!(!m.can_add(2, &[0, 1]));
        assert!(!m.can_add(4, &[3]));
        assert!(!m.can_add(9, &[]));
    }

    #[test]
    fn can_swap_within_and_across_blocks() {
        let m = sample();
        // Swap inside block 0 at capacity: fine.
        assert!(m.can_swap(2, 0, &[0, 1, 3]));
        // Swap bringing block 0 over capacity: rejected.
        assert!(!m.can_swap(2, 3, &[0, 1, 3]));
        // Swap across blocks freeing nothing in u's block: rejected.
        assert!(!m.can_swap(4, 0, &[0, 3]));
        // Swap replacing block 1's occupant: fine.
        assert!(m.can_swap(4, 3, &[0, 3]));
    }

    #[test]
    fn rank_sums_clamped_block_sizes() {
        assert_eq!(sample().rank(), 3);
        // Capacity exceeding block size is clamped by the block size.
        let m = PartitionMatroid::new(vec![0, 1], vec![5, 5]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn from_blocks_roundtrip() {
        let m = PartitionMatroid::from_blocks(5, &[vec![0, 1, 2], vec![3, 4]], vec![2, 1]);
        assert_eq!(m, sample());
        assert_eq!(m.num_blocks(), 2);
        assert_eq!(m.block_of(3), 1);
        assert_eq!(m.capacity_of(0), 2);
    }

    #[test]
    #[should_panic(expected = "two blocks")]
    fn overlapping_blocks_rejected() {
        let _ = PartitionMatroid::from_blocks(2, &[vec![0, 1], vec![1]], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "cover every element")]
    fn incomplete_blocks_rejected() {
        let _ = PartitionMatroid::from_blocks(3, &[vec![0, 1]], vec![1]);
    }

    #[test]
    #[should_panic(expected = "out-of-range block")]
    fn out_of_range_block_rejected() {
        let _ = PartitionMatroid::new(vec![0, 7], vec![1]);
    }

    #[test]
    fn axioms_hold() {
        MatroidAudit::exhaustive(&sample()).assert_matroid();
        MatroidAudit::exhaustive(&PartitionMatroid::new(vec![0, 1, 0, 1], vec![1, 2]))
            .assert_matroid();
        MatroidAudit::exhaustive(&PartitionMatroid::new(vec![0, 0, 0], vec![0])).assert_matroid();
    }

    #[test]
    fn uniform_matroid_is_single_block_partition() {
        let p = PartitionMatroid::new(vec![0; 4], vec![2]);
        let u = crate::UniformMatroid::new(4, 2);
        for mask in 0u32..16 {
            let set: Vec<ElementId> = (0..4).filter(|&i| mask >> i & 1 == 1).collect();
            assert_eq!(p.is_independent(&set), u.is_independent(&set));
        }
    }
}
