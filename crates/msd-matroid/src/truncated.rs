//! Truncation: the intersection of a matroid with a uniform matroid.
//!
//! The paper (Section 1, citing Schrijver) notes that *"the intersection of
//! any matroid with a uniform matroid is still a matroid so that … we could
//! further impose the constraint that the set S has at most p elements."*
//! [`TruncatedMatroid`] implements exactly this: independence in the inner
//! matroid **and** `|S| ≤ k`.

use crate::{ElementId, Matroid};

/// `M | k` — the inner matroid truncated to rank at most `k`.
#[derive(Debug, Clone)]
pub struct TruncatedMatroid<M> {
    inner: M,
    k: usize,
}

impl<M: Matroid> TruncatedMatroid<M> {
    /// Truncates `inner` to rank `k`.
    pub fn new(inner: M, k: usize) -> Self {
        Self { inner, k }
    }

    /// The cardinality bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The inner matroid.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Matroid> Matroid for TruncatedMatroid<M> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }

    fn is_independent(&self, set: &[ElementId]) -> bool {
        set.len() <= self.k && self.inner.is_independent(set)
    }

    fn can_add(&self, u: ElementId, set: &[ElementId]) -> bool {
        set.len() < self.k && self.inner.can_add(u, set)
    }

    fn can_swap(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> bool {
        set.len() <= self.k && self.inner.can_swap(u, v, set)
    }

    /// Delegates to the inner matroid's fast path (a swap never changes
    /// the cardinality, so the truncation bound cannot newly fail).
    fn exchange_feasible(&self, set: &[ElementId], out: ElementId, inn: ElementId) -> bool {
        set.len() <= self.k && self.inner.exchange_feasible(set, out, inn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::MatroidAudit;
    use crate::{GraphicMatroid, PartitionMatroid, UniformMatroid};

    #[test]
    fn truncation_caps_cardinality() {
        let m = TruncatedMatroid::new(UniformMatroid::new(6, 5), 2);
        assert!(m.is_independent(&[0, 5]));
        assert!(!m.is_independent(&[0, 1, 2]));
        assert_eq!(m.rank(), 2);
        assert_eq!(m.k(), 2);
    }

    #[test]
    fn truncation_keeps_inner_constraints() {
        // Partition {0,1} cap 1, {2,3} cap 1, truncated to 1 total.
        let inner = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
        let m = TruncatedMatroid::new(inner, 1);
        assert!(m.is_independent(&[0]));
        assert!(!m.is_independent(&[0, 2])); // inner-OK but over k
        assert!(!m.is_independent(&[0, 1])); // within k? no: len 2 > 1
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn can_add_and_swap_respect_both_constraints() {
        let inner = PartitionMatroid::new(vec![0, 0, 1], vec![1, 1]);
        let m = TruncatedMatroid::new(inner, 1);
        assert!(m.can_add(0, &[]));
        assert!(!m.can_add(2, &[0])); // over k
        assert!(m.can_swap(2, 0, &[0])); // swap keeps |S| = 1
        assert!(!m.can_swap(1, 0, &[0]) || m.inner().can_swap(1, 0, &[0]));
        // swapping 1 for 0 keeps block 0 occupancy at 1 → allowed
        assert!(m.can_swap(1, 0, &[0]));
    }

    #[test]
    fn axioms_hold_for_truncated_graphic_matroid() {
        let inner = GraphicMatroid::new(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        for k in 0..=3 {
            MatroidAudit::exhaustive(&TruncatedMatroid::new(inner.clone(), k)).assert_matroid();
        }
    }

    #[test]
    fn axioms_hold_for_truncated_partition_matroid() {
        let inner = PartitionMatroid::new(vec![0, 0, 1, 1], vec![2, 2]);
        for k in 0..=3 {
            MatroidAudit::exhaustive(&TruncatedMatroid::new(inner.clone(), k)).assert_matroid();
        }
    }

    #[test]
    fn inner_accessor() {
        let m = TruncatedMatroid::new(UniformMatroid::new(3, 3), 2);
        assert_eq!(m.inner().k(), 3);
        assert_eq!(m.ground_size(), 3);
    }
}
