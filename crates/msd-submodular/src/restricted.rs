//! Sub-universe views of an incremental oracle under a local id remap.
//!
//! The sharded dynamic engine in `msd-core` keeps one persistent
//! `DynamicSession` per shard, each operating over local ids
//! `{0, .., k-1}` that denote a subset of the global ground set. Those
//! sessions still need a quality oracle — and rebuilding one per shard
//! from scratch would lose the specialized incremental structure (and the
//! weight-update support) of the global function's oracle.
//!
//! [`RestrictedOracle`] solves this by *delegation with id remap*: it wraps
//! any [`IncrementalOracle`] (owned `Box`, or `&mut` for a transient
//! borrow) together with a local → global id map, translating every query
//! and mutation. The wrapped oracle keeps doing the incremental work; the
//! view only renames elements. All structural hints (`scan_cost_hint`,
//! `supports_weight_updates`, the cache-validity contracts) pass straight
//! through, so sessions over a restricted view are exactly as fast — and
//! keep their candidate caches exactly as warm — as over the global oracle.
//!
//! The wrapped oracle's current set must stay within the mapped ids for
//! the view to be a faithful restriction; the intended usage (a fresh
//! global oracle per shard, mutated only through the view) guarantees
//! this by construction.

use std::borrow::BorrowMut;
use std::marker::PhantomData;

use crate::incremental::IncrementalOracle;
use crate::ElementId;

/// An [`IncrementalOracle`] over the sub-universe `{0, .., ids.len()-1}`
/// where local element `i` denotes global element `ids[i]` of the wrapped
/// oracle.
///
/// `B` is the ownership mode of the wrapped oracle (`Box<O>` for a
/// session-owned view, `&mut O` for a transient reduce-scoped view); `O`
/// is the oracle type itself, usually a `dyn IncrementalOracle` flavour.
pub struct RestrictedOracle<B, O: ?Sized> {
    inner: B,
    ids: Vec<ElementId>,
    _oracle: PhantomData<fn() -> Box<O>>,
}

impl<B: std::fmt::Debug, O: ?Sized> std::fmt::Debug for RestrictedOracle<B, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestrictedOracle")
            .field("inner", &self.inner)
            .field("ids", &self.ids)
            .finish()
    }
}

impl<O: IncrementalOracle + ?Sized, B: BorrowMut<O>> RestrictedOracle<B, O> {
    /// Builds the view. The order of `ids` defines the local indexing.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range for the wrapped oracle.
    pub fn new(inner: B, ids: Vec<ElementId>) -> Self {
        let n = {
            let o: &O = inner.borrow();
            o.ground_size()
        };
        assert!(
            ids.iter().all(|&u| (u as usize) < n),
            "restricted id out of range"
        );
        Self {
            inner,
            ids,
            _oracle: PhantomData,
        }
    }

    /// The global id of local element `u`.
    #[inline]
    fn global(&self, u: ElementId) -> ElementId {
        self.ids[u as usize]
    }

    /// The local → global id map.
    pub fn ids(&self) -> &[ElementId] {
        &self.ids
    }

    /// Consumes the view, returning the wrapped oracle.
    pub fn into_inner(self) -> B {
        self.inner
    }

    #[inline]
    fn inner(&self) -> &O {
        self.inner.borrow()
    }

    #[inline]
    fn inner_mut(&mut self) -> &mut O {
        self.inner.borrow_mut()
    }
}

impl<O: IncrementalOracle + ?Sized, B: BorrowMut<O>> IncrementalOracle for RestrictedOracle<B, O> {
    fn ground_size(&self) -> usize {
        self.ids.len()
    }

    fn len(&self) -> usize {
        self.inner().len()
    }

    fn contains(&self, u: ElementId) -> bool {
        self.inner().contains(self.global(u))
    }

    fn value(&self) -> f64 {
        self.inner().value()
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.inner().marginal(self.global(u))
    }

    fn marginal_bound(&self, u: ElementId) -> f64 {
        self.inner().marginal_bound(self.global(u))
    }

    fn marginal_is_exact(&self, u: ElementId) -> bool {
        self.inner().marginal_is_exact(self.global(u))
    }

    fn refresh(&mut self, u: ElementId) -> f64 {
        let g = self.global(u);
        self.inner_mut().refresh(g)
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        self.inner().pair_marginal(self.global(u), self.global(v))
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        self.inner().swap_gain(self.global(u), self.global(v))
    }

    fn insert(&mut self, u: ElementId) {
        let g = self.global(u);
        self.inner_mut().insert(g);
    }

    fn remove(&mut self, u: ElementId) {
        let g = self.global(u);
        self.inner_mut().remove(g);
    }

    fn scan_cost_hint(&self) -> usize {
        self.inner().scan_cost_hint()
    }

    fn supports_weight_updates(&self) -> bool {
        self.inner().supports_weight_updates()
    }

    fn try_set_weight(&mut self, u: ElementId, value: f64) -> Option<f64> {
        let g = self.global(u);
        self.inner_mut().try_set_weight(g, value)
    }

    fn weight_updates_shift_uniformly(&self) -> bool {
        self.inner().weight_updates_shift_uniformly()
    }

    fn swap_gains_are_membership_independent(&self) -> bool {
        self.inner().swap_gains_are_membership_independent()
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        let globals: Vec<ElementId> = elems.iter().map(|&u| self.global(u)).collect();
        self.inner_mut().invalidate(&globals);
    }

    fn save_state(&self) -> crate::incremental::OracleState {
        // The id map is immutable; the inner oracle is the only mutable
        // state, so its snapshot (global-id addressed) is the view's.
        self.inner().save_state()
    }

    fn restore_state(&mut self, state: &crate::incremental::OracleState) {
        self.inner_mut().restore_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModularFunction, SetFunction};

    fn modular() -> ModularFunction {
        ModularFunction::new(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
    }

    #[test]
    fn queries_and_mutations_remap_to_global_ids() {
        let f = modular();
        let inner = f.incremental();
        let mut view: RestrictedOracle<_, dyn IncrementalOracle + '_> =
            RestrictedOracle::new(inner, vec![5, 0, 3]);
        assert_eq!(view.ground_size(), 3);
        assert!(view.is_empty());
        view.insert(0); // global 5
        view.insert(2); // global 3
        assert_eq!(view.len(), 2);
        assert!(view.contains(0) && view.contains(2) && !view.contains(1));
        assert_eq!(view.value(), 32.0 + 8.0);
        assert_eq!(view.marginal(1), 1.0); // global 0
        assert_eq!(view.swap_gain(1, 2), 1.0 - 8.0);
        view.remove(2);
        assert_eq!(view.value(), 32.0);
        let inner = view.into_inner();
        assert!(inner.contains(5) && !inner.contains(3));
    }

    #[test]
    fn weight_updates_and_hints_delegate() {
        let f = modular();
        let mut view: RestrictedOracle<_, dyn IncrementalOracle + '_> =
            RestrictedOracle::new(f.incremental(), vec![2, 4]);
        assert!(view.supports_weight_updates());
        assert!(view.weight_updates_shift_uniformly());
        assert!(view.swap_gains_are_membership_independent());
        assert_eq!(view.scan_cost_hint(), 1);
        assert_eq!(view.try_set_weight(0, 7.0), Some(4.0)); // global 2
        assert_eq!(view.marginal(0), 7.0);
        view.invalidate(&[0]); // restores the authoritative weight
        assert_eq!(view.marginal(0), 4.0);
    }

    #[test]
    fn borrowed_oracle_works_for_transient_views() {
        let f = modular();
        let mut inner = f.incremental();
        {
            let mut view: RestrictedOracle<_, dyn IncrementalOracle + '_> =
                RestrictedOracle::new(&mut *inner, vec![1, 2]);
            view.insert(0);
            assert_eq!(view.value(), 2.0);
        }
        assert!(inner.contains(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let f = modular();
        let _: RestrictedOracle<_, dyn IncrementalOracle + '_> =
            RestrictedOracle::new(f.incremental(), vec![6]);
    }
}
