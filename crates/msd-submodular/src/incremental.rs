//! Incremental marginal-gain oracles.
//!
//! Every algorithm in this workspace is a *candidate-scan loop*: Greedy B
//! evaluates `f_u(S)` for each `u ∉ S` at every step, local search and the
//! dynamic-update rule evaluate `f(S − v + u) − f(S)` for many `(u, v)`
//! pairs per swap. Evaluating those through the plain [`SetFunction`] value
//! oracle costs `O(cost(f))` per candidate *per step*, even though a step
//! changes `S` by a single element.
//!
//! [`IncrementalOracle`] is the stateful counterpart: it carries the
//! current set `S` and maintains per-element marginal caches that are
//! updated in `O(touched)` work on [`insert`](IncrementalOracle::insert) /
//! [`remove`](IncrementalOracle::remove), so that
//! [`marginal`](IncrementalOracle::marginal) is an O(1) read for every
//! structured function this crate ships:
//!
//! | function | `insert`/`remove` | `marginal` | `swap_gain` |
//! |---|---|---|---|
//! | [`ModularFunction`] | O(1) | O(1) | O(1) |
//! | [`CoverageFunction`] | O(Σ_{new/lost topics} degree) | O(1) | O(\|cov(u)\| + \|cov(v)\|) |
//! | [`FacilityLocationFunction`] | O(n · #changed clients) | O(1) | O(#clients) |
//! | [`crate::MixtureFunction`] | sum of components | sum | sum |
//! | any [`SetFunction`] | O(cost(f)) | O(cost(f)) (+ lazy bounds) | O(cost(f)) |
//!
//! The generic fallback ([`GenericOracle`]) additionally exposes *stale
//! upper bounds* ([`marginal_bound`](IncrementalOracle::marginal_bound)):
//! for submodular `f`, a marginal cached at an earlier (smaller) `S` only
//! shrinks as `S` grows, so the cached value remains a valid upper bound
//! until explicitly [`refresh`](IncrementalOracle::refresh)ed. That is the
//! invariant behind the Minoux lazy-greedy scan in `msd-core`.
//!
//! Obtain an oracle through [`SetFunction::incremental`] (or
//! [`SetFunction::incremental_sync`] for the thread-parallel scans); the
//! structured functions override those hooks to return their specialized
//! oracles.

use std::any::Any;
use std::fmt;

use crate::coverage::CoverageFunction;
use crate::facility::FacilityLocationFunction;
use crate::modular::ModularFunction;
use crate::{ElementId, SetFunction, ZeroFunction};

/// Opaque, bit-exact snapshot of an [`IncrementalOracle`]'s mutable state.
///
/// Produced by [`IncrementalOracle::save_state`] and consumed *by
/// reference* — one snapshot can be restored any number of times — by
/// [`IncrementalOracle::restore_state`]. The payload is type-erased so a
/// session holding `Box<dyn IncrementalOracle>` can checkpoint without
/// naming the concrete oracle type; each implementation downcasts its own
/// payload back on restore.
///
/// Snapshots capture only the *mutable* fields (membership, cached
/// marginals, running value sums, copy-on-write weight overrides); the
/// borrowed function data is shared and immutable, so saving is
/// `O(mutable state)` regardless of the wrapped function's size.
pub struct OracleState(Box<dyn Any + Send + Sync>);

impl OracleState {
    pub(crate) fn new<T: Any + Send + Sync>(payload: T) -> Self {
        Self(Box::new(payload))
    }

    /// # Panics
    ///
    /// Panics when the payload is not a `T` — the snapshot was produced
    /// by a different oracle type, a checkpoint/session pairing bug.
    pub(crate) fn downcast<T: Any>(&self) -> &T {
        self.0
            .downcast_ref::<T>()
            .expect("oracle state snapshot does not match this oracle type")
    }
}

impl fmt::Debug for OracleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OracleState(..)")
    }
}

/// A stateful value oracle over a mutable set `S`, with incrementally
/// maintained marginal gains.
///
/// Implementations must keep every query consistent with the underlying
/// [`SetFunction`]: `value() == f(S)`, `marginal(u) == f_u(S)`,
/// `swap_gain(u, v) == f(S − v + u) − f(S)` and
/// `pair_marginal(u, v) == f(S + u + v) − f(S)` (all up to floating-point
/// accumulation order).
pub trait IncrementalOracle {
    /// Ground-set size `n`.
    fn ground_size(&self) -> usize;

    /// `|S|`.
    fn len(&self) -> usize;

    /// `true` when `S = ∅`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` iff `u ∈ S`.
    fn contains(&self, u: ElementId) -> bool;

    /// `f(S)`.
    fn value(&self) -> f64;

    /// Exact marginal `f_u(S)`. O(1) for the specialized oracles; may cost
    /// a full oracle evaluation for the generic fallback.
    fn marginal(&self, u: ElementId) -> f64;

    /// An upper bound on `f_u(S)`, always O(1).
    ///
    /// For specialized oracles this *is* the exact marginal. The generic
    /// fallback returns the last refreshed value (valid by submodularity
    /// while `S` only grows) or `+∞` when nothing is cached.
    fn marginal_bound(&self, u: ElementId) -> f64 {
        self.marginal(u)
    }

    /// `true` when [`marginal_bound`](Self::marginal_bound) is the exact
    /// current marginal (always true for specialized oracles).
    fn marginal_is_exact(&self, _u: ElementId) -> bool {
        true
    }

    /// Recomputes the exact marginal, tightening the cached bound, and
    /// returns it.
    fn refresh(&mut self, u: ElementId) -> f64 {
        self.marginal(u)
    }

    /// Pair marginal `f(S + u + v) − f(S)` for distinct `u, v ∉ S`.
    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64;

    /// Swap gain `f(S − v + u) − f(S)` for `v ∈ S`, `u ∉ S`.
    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64;

    /// Adds `u` to `S`, updating caches in `O(touched)`.
    ///
    /// # Panics
    ///
    /// Panics if `u ∈ S`.
    fn insert(&mut self, u: ElementId);

    /// Removes `u` from `S`, updating caches in `O(touched)`.
    ///
    /// # Panics
    ///
    /// Panics if `u ∉ S`.
    fn remove(&mut self, u: ElementId);

    /// Relative cost of one [`marginal`](Self::marginal) /
    /// [`swap_gain`](Self::swap_gain) read, normalized so `1` is the O(1)
    /// arithmetic of the modular oracle (coverage ≈ cover-list walks,
    /// facility ≈ one pass over its clients, generic ≈ a full value-oracle
    /// evaluation). Pure *scheduling hint* consumed by the thread-parallel
    /// scans' work floor in `msd-core` — it must never affect results.
    fn scan_cost_hint(&self) -> usize {
        1
    }

    /// `true` when the oracle carries per-element modular weight data that
    /// [`try_set_weight`](Self::try_set_weight) can update in place.
    fn supports_weight_updates(&self) -> bool {
        false
    }

    /// Point weight update for oracles backed by modular weights: sets
    /// `w(u) = value`, repairs `value()` and the marginal caches in O(1),
    /// and returns the previous weight. Oracles without a modular notion
    /// of per-element weight return `None` (callers fall back to a
    /// rebuild). This is the weight-perturbation repair hook of the
    /// persistent dynamic session in `msd-core`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite `value` where supported.
    fn try_set_weight(&mut self, u: ElementId, value: f64) -> Option<f64> {
        let _ = (u, value);
        None
    }

    /// `true` when a [`try_set_weight`](Self::try_set_weight) on element
    /// `u` changes every swap gain / marginal involving `u` by the *same*
    /// amount, independently of the other element — i.e. the update is a
    /// uniform shift of `u`'s whole gain row. This holds for the modular
    /// family (`w(u)` enters every expression as a lone additive term) and
    /// for coefficient-weighted mixtures of modular components.
    ///
    /// This is the order-preservation contract behind the bounded
    /// best-swap candidate cache of `msd-core`'s `DynamicSession`: a
    /// uniform shift cannot reorder the cached per-member candidate
    /// ranking, so the cache survives the perturbation. An oracle with
    /// element interactions in its weight updates must override this to
    /// `false`, which makes the session invalidate its candidate ranks and
    /// fall back to a full scan (never wrong, just slower). Like
    /// [`scan_cost_hint`](Self::scan_cost_hint), this is a scheduling /
    /// cache-validity hint — it must never affect results.
    fn weight_updates_shift_uniformly(&self) -> bool {
        self.supports_weight_updates()
    }

    /// `true` when [`swap_gain`](Self::swap_gain) does not depend on the
    /// rest of the current set: `f(S − v + u) − f(S)` is a function of
    /// `u` and `v` alone. This holds for the modular family
    /// (`w(u) − w(v)`), the zero function, and coefficient-weighted
    /// mixtures of such components; coverage / facility / generic gains
    /// genuinely interact with `S` and must keep the default `false`.
    ///
    /// This is the membership-change contract behind keeping the bounded
    /// best-swap candidate cache of `msd-core`'s `DynamicSession` warm
    /// *across committed swaps*: with a membership-independent quality
    /// part, the swap-gain change of every surviving cache row decomposes
    /// into a row-uniform term plus a per-candidate term `λ·(d(x, v_in) −
    /// d(x, u_out))` the session can repair exactly. Like
    /// [`scan_cost_hint`](Self::scan_cost_hint), this is a cache-validity
    /// hint — a conservative `false` costs a full scan, never a wrong
    /// answer.
    fn swap_gains_are_membership_independent(&self) -> bool {
        false
    }

    /// Invalidates cached per-element state for `elems`, re-deriving it
    /// from the underlying function in `O(Σ touched)` — the repair hook a
    /// persistent session calls when function data for specific elements
    /// was refreshed, instead of discarding the whole oracle. For oracles
    /// whose caches are exact this re-derives (and, when nothing changed,
    /// preserves) the cached values; the generic fallback drops its lazy
    /// upper bounds for `elems`; the modular oracle restores the
    /// authoritative weights of the wrapped function, undoing any
    /// [`try_set_weight`](Self::try_set_weight) overrides.
    fn invalidate(&mut self, elems: &[ElementId]);

    /// Captures a bit-exact snapshot of the oracle's mutable state.
    ///
    /// Together with [`restore_state`](Self::restore_state) this is the
    /// transactional-rollback hook behind `msd-core`'s
    /// `SessionCheckpoint`. Replaying *inverse* mutations (`insert`
    /// undoing `remove`, `try_set_weight` re-applying a displaced value)
    /// re-derives the cached floats through a different accumulation
    /// history, so it is not IEEE-round-trip safe — only a state snapshot
    /// restores the running value sums and marginal caches bit-for-bit.
    fn save_state(&self) -> OracleState;

    /// Restores mutable state captured by
    /// [`save_state`](Self::save_state) on this oracle (or on an oracle
    /// of the same type over the same function data).
    ///
    /// # Panics
    ///
    /// Panics when `state` was produced by an incompatible oracle — a
    /// checkpoint/session pairing bug, not a data fault.
    fn restore_state(&mut self, state: &OracleState);
}

/// Shared membership bookkeeping for the oracle implementations.
#[derive(Debug, Clone)]
pub(crate) struct Membership {
    pub(crate) in_set: Vec<bool>,
    pub(crate) size: usize,
}

impl Membership {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            in_set: vec![false; n],
            size: 0,
        }
    }

    pub(crate) fn contains(&self, u: ElementId) -> bool {
        self.in_set[u as usize]
    }

    pub(crate) fn insert(&mut self, u: ElementId) {
        assert!(
            !self.in_set[u as usize],
            "element {u} already in oracle set"
        );
        self.in_set[u as usize] = true;
        self.size += 1;
    }

    pub(crate) fn remove(&mut self, u: ElementId) {
        assert!(self.in_set[u as usize], "element {u} not in oracle set");
        self.in_set[u as usize] = false;
        self.size -= 1;
    }
}

// Per-oracle [`OracleState`] payloads. Private named structs (rather than
// tuples) so a snapshot can never downcast into a different oracle type
// that happens to share the same field shape.

#[derive(Clone)]
struct ModularState {
    own: Vec<f64>,
    members: Membership,
    value: f64,
}

#[derive(Clone)]
struct ZeroState {
    members: Membership,
}

#[derive(Clone)]
struct CoverageState {
    members: Membership,
    count: Vec<u32>,
    cache: Vec<f64>,
    value: f64,
}

#[derive(Clone)]
struct FacilityState {
    members: Membership,
    member_list: Vec<ElementId>,
    best: Vec<f64>,
    provider: Vec<ElementId>,
    second: Vec<f64>,
    cache: Vec<f64>,
    value: f64,
}

struct MixtureState {
    parts: Vec<OracleState>,
    members: Membership,
}

#[derive(Clone)]
struct GenericState {
    members: Vec<ElementId>,
    in_set: Vec<bool>,
    value: f64,
    bound: Vec<f64>,
    stamp: Vec<u64>,
    version: u64,
}

// ---------------------------------------------------------------------------
// Modular
// ---------------------------------------------------------------------------

/// O(1)-everything oracle for [`ModularFunction`].
///
/// Weights read from the wrapped function's slice until the first
/// [`IncrementalOracle::try_set_weight`] (the dynamic-session weight
/// perturbation), which copies them into a session-local override —
/// copy-on-write, so greedy-style consumers keep the zero-copy borrow.
/// [`IncrementalOracle::invalidate`] restores the function's
/// authoritative values entry by entry.
#[derive(Debug, Clone)]
pub struct ModularOracle<'a> {
    f: &'a ModularFunction,
    /// Session-local weight override; empty until the first
    /// `try_set_weight`.
    own: Vec<f64>,
    members: Membership,
    value: f64,
}

impl<'a> ModularOracle<'a> {
    /// Oracle over the empty set.
    pub fn new(f: &'a ModularFunction) -> Self {
        Self {
            f,
            own: Vec::new(),
            members: Membership::new(f.ground_size()),
            value: 0.0,
        }
    }

    /// The effective weights: the override when one exists, the wrapped
    /// function's otherwise.
    #[inline]
    fn weights(&self) -> &[f64] {
        if self.own.is_empty() {
            self.f.weights()
        } else {
            &self.own
        }
    }

    /// Re-reads the weight of `u` from the wrapped function, repairing
    /// `value` when `u` is a member (the `invalidate` hook; a no-op
    /// while no override exists).
    fn reload_weight(&mut self, u: ElementId) {
        if self.own.is_empty() {
            return;
        }
        let old = self.own[u as usize];
        let new = self.f.weight(u);
        self.own[u as usize] = new;
        if self.members.contains(u) {
            self.value += new - old;
        }
    }
}

impl IncrementalOracle for ModularOracle<'_> {
    fn ground_size(&self) -> usize {
        self.f.ground_size()
    }

    fn len(&self) -> usize {
        self.members.size
    }

    fn contains(&self, u: ElementId) -> bool {
        self.members.contains(u)
    }

    fn value(&self) -> f64 {
        self.value
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.weights()[u as usize]
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        self.weights()[u as usize] + self.weights()[v as usize]
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        self.weights()[u as usize] - self.weights()[v as usize]
    }

    fn insert(&mut self, u: ElementId) {
        self.members.insert(u);
        self.value += self.weights()[u as usize];
    }

    fn remove(&mut self, u: ElementId) {
        self.members.remove(u);
        self.value -= self.weights()[u as usize];
    }

    fn supports_weight_updates(&self) -> bool {
        true
    }

    fn try_set_weight(&mut self, u: ElementId, value: f64) -> Option<f64> {
        assert!(
            value.is_finite() && value >= 0.0,
            "weight of element {u} must be finite and non-negative, got {value}"
        );
        if self.own.is_empty() {
            self.own = self.f.weights().to_vec();
        }
        let old = std::mem::replace(&mut self.own[u as usize], value);
        if self.members.contains(u) {
            self.value += value - old;
        }
        Some(old)
    }

    fn swap_gains_are_membership_independent(&self) -> bool {
        // swap_gain(u, v) = w(u) − w(v) regardless of S.
        true
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        for &u in elems {
            self.reload_weight(u);
        }
    }

    fn save_state(&self) -> OracleState {
        OracleState::new(ModularState {
            own: self.own.clone(),
            members: self.members.clone(),
            value: self.value,
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &ModularState = state.downcast();
        self.own.clone_from(&s.own);
        self.members.clone_from(&s.members);
        self.value = s.value;
    }
}

// ---------------------------------------------------------------------------
// Zero
// ---------------------------------------------------------------------------

/// Trivial oracle for [`ZeroFunction`] (keeps the pure-dispersion greedy
/// free of oracle overhead).
#[derive(Debug, Clone)]
pub struct ZeroOracle {
    members: Membership,
}

impl ZeroOracle {
    /// Oracle over the empty set.
    pub fn new(f: &ZeroFunction) -> Self {
        Self {
            members: Membership::new(f.ground_size()),
        }
    }
}

impl IncrementalOracle for ZeroOracle {
    fn ground_size(&self) -> usize {
        self.members.in_set.len()
    }

    fn len(&self) -> usize {
        self.members.size
    }

    fn contains(&self, u: ElementId) -> bool {
        self.members.contains(u)
    }

    fn value(&self) -> f64 {
        0.0
    }

    fn marginal(&self, _u: ElementId) -> f64 {
        0.0
    }

    fn pair_marginal(&self, _u: ElementId, _v: ElementId) -> f64 {
        0.0
    }

    fn swap_gain(&self, _u: ElementId, _v: ElementId) -> f64 {
        0.0
    }

    fn insert(&mut self, u: ElementId) {
        self.members.insert(u);
    }

    fn remove(&mut self, u: ElementId) {
        self.members.remove(u);
    }

    fn swap_gains_are_membership_independent(&self) -> bool {
        true
    }

    fn invalidate(&mut self, _elems: &[ElementId]) {}

    fn save_state(&self) -> OracleState {
        OracleState::new(ZeroState {
            members: self.members.clone(),
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &ZeroState = state.downcast();
        self.members.clone_from(&s.members);
    }
}

// ---------------------------------------------------------------------------
// Coverage
// ---------------------------------------------------------------------------

/// Coverage oracle: maintains per-topic cover counts and, through an
/// inverted topic→elements index, the exact marginal of *every* element.
///
/// `insert`/`remove` touch only the elements covering topics whose covered
/// state flipped — `O(Σ_{flipped t} degree(t))` — and `marginal` is an O(1)
/// array read.
#[derive(Debug, Clone)]
pub struct CoverageOracle<'a> {
    f: &'a CoverageFunction,
    members: Membership,
    /// `count[t]` = number of members covering topic `t`.
    count: Vec<u32>,
    /// `cache[u]` = exact marginal `f_u(S)`.
    cache: Vec<f64>,
    /// `inv[t]` = elements covering topic `t`.
    inv: Vec<Vec<ElementId>>,
    value: f64,
    /// Scan-cost hint: 1 + 2·(mean cover size), fixed at construction.
    cost_hint: usize,
}

impl<'a> CoverageOracle<'a> {
    /// Oracle over the empty set. O(total cover size) setup.
    pub fn new(f: &'a CoverageFunction) -> Self {
        let n = f.ground_size();
        let t = f.num_topics();
        let mut inv: Vec<Vec<ElementId>> = vec![Vec::new(); t];
        let mut cache = vec![0.0; n];
        let mut total_cover = 0usize;
        for (u, slot) in cache.iter_mut().enumerate() {
            for &topic in f.covered_by(u as ElementId) {
                inv[topic as usize].push(u as ElementId);
                *slot += f.topic_weight(topic);
            }
            total_cover += f.covered_by(u as ElementId).len();
        }
        Self {
            f,
            members: Membership::new(n),
            count: vec![0; t],
            cache,
            inv,
            value: 0.0,
            // One swap-gain read walks cov(u) + cov(v) with binary
            // searches; 2·mean-cover (+1 so it never hits zero) tracks it.
            cost_hint: 1 + 2 * total_cover / n.max(1),
        }
    }

    /// `true` iff sorted cover list of `x` contains `t` (binary search —
    /// cover lists are sorted and deduplicated at construction).
    fn covers(&self, x: ElementId, t: u32) -> bool {
        self.f.covered_by(x).binary_search(&t).is_ok()
    }
}

impl IncrementalOracle for CoverageOracle<'_> {
    fn ground_size(&self) -> usize {
        self.cache.len()
    }

    fn len(&self) -> usize {
        self.members.size
    }

    fn contains(&self, u: ElementId) -> bool {
        self.members.contains(u)
    }

    fn value(&self) -> f64 {
        self.value
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.cache[u as usize]
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        debug_assert!(u != v);
        let mut total = 0.0;
        for &t in self.f.covered_by(u) {
            if self.count[t as usize] == 0 {
                total += self.f.topic_weight(t);
            }
        }
        for &t in self.f.covered_by(v) {
            if self.count[t as usize] == 0 && !self.covers(u, t) {
                total += self.f.topic_weight(t);
            }
        }
        total
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        debug_assert!(self.contains(v) && !self.contains(u));
        let mut gain = 0.0;
        // Topics newly covered: uncovered before the swap and covered by u
        // (a topic covered only by v and re-covered by u nets zero).
        for &t in self.f.covered_by(u) {
            if self.count[t as usize] == 0 {
                gain += self.f.topic_weight(t);
            }
        }
        // Topics lost when v leaves and u does not replace it.
        for &t in self.f.covered_by(v) {
            if self.count[t as usize] == 1 && !self.covers(u, t) {
                gain -= self.f.topic_weight(t);
            }
        }
        gain
    }

    fn insert(&mut self, u: ElementId) {
        self.members.insert(u);
        for &t in self.f.covered_by(u) {
            let c = &mut self.count[t as usize];
            *c += 1;
            if *c == 1 {
                let w = self.f.topic_weight(t);
                self.value += w;
                for &x in &self.inv[t as usize] {
                    self.cache[x as usize] -= w;
                }
            }
        }
    }

    fn remove(&mut self, u: ElementId) {
        self.members.remove(u);
        for &t in self.f.covered_by(u) {
            let c = &mut self.count[t as usize];
            *c -= 1;
            if *c == 0 {
                let w = self.f.topic_weight(t);
                self.value -= w;
                for &x in &self.inv[t as usize] {
                    self.cache[x as usize] += w;
                }
            }
        }
    }

    fn scan_cost_hint(&self) -> usize {
        self.cost_hint
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        // Re-derive each element's marginal from the cover counts:
        // f_u(S) = Σ_{t ∈ cov(u), count[t] = 0} w(t) — O(|cov(u)|) each.
        for &u in elems {
            let mut m = 0.0;
            for &t in self.f.covered_by(u) {
                if self.count[t as usize] == 0 {
                    m += self.f.topic_weight(t);
                }
            }
            self.cache[u as usize] = m;
        }
    }

    fn save_state(&self) -> OracleState {
        OracleState::new(CoverageState {
            members: self.members.clone(),
            count: self.count.clone(),
            cache: self.cache.clone(),
            value: self.value,
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &CoverageState = state.downcast();
        self.members.clone_from(&s.members);
        self.count.clone_from(&s.count);
        self.cache.clone_from(&s.cache);
        self.value = s.value;
    }
}

// ---------------------------------------------------------------------------
// Facility location
// ---------------------------------------------------------------------------

/// Facility-location oracle: maintains per-client best / second-best served
/// similarity (plus the providing element) and the exact marginal of every
/// element.
///
/// `insert` costs `O(n)` per client whose best similarity improves;
/// `remove` rescans members for clients that lose their top-2 provider;
/// `marginal` is an O(1) read and `swap_gain` is one `O(#clients)` sweep
/// (versus `O(#clients · |S|)` through the value oracle).
#[derive(Debug, Clone)]
pub struct FacilityOracle<'a> {
    f: &'a FacilityLocationFunction,
    members: Membership,
    member_list: Vec<ElementId>,
    /// Best served similarity per client (0 for the empty set).
    best: Vec<f64>,
    /// Member providing `best`, `u32::MAX` when none.
    provider: Vec<ElementId>,
    /// Best similarity over `S` minus the provider (0 when |S| ≤ 1).
    second: Vec<f64>,
    /// `cache[u]` = exact marginal `f_u(S)`.
    cache: Vec<f64>,
    value: f64,
}

const NO_PROVIDER: ElementId = ElementId::MAX;

/// Chunk width of the branchless [`FacilityOracle::shift_client`] sweep
/// (8 f64 lanes; see the matching constant on `DistanceMatrix`'s row
/// kernel in `msd-metric`).
const SHIFT_LANES: usize = 8;

impl<'a> FacilityOracle<'a> {
    /// Oracle over the empty set. O(#clients · n) setup.
    pub fn new(f: &'a FacilityLocationFunction) -> Self {
        let n = f.ground_size();
        let c = f.num_clients();
        let mut cache = vec![0.0; n];
        for client in 0..c {
            let w = f.client_weight(client);
            let row = f.sim_row(client);
            for (u, &s) in row.iter().enumerate() {
                cache[u] += w * s;
            }
        }
        Self {
            f,
            members: Membership::new(n),
            member_list: Vec::new(),
            best: vec![0.0; c],
            provider: vec![NO_PROVIDER; c],
            second: vec![0.0; c],
            cache,
            value: 0.0,
        }
    }

    /// Applies the cache delta for client `client` whose best similarity
    /// moves from `old` to `new`.
    ///
    /// This is the facility oracle's hot row sweep — O(n) per client whose
    /// best provider changes, executed on every insert/remove. The walk is
    /// branchless (`(s − old)⁺ − (s − new)⁺` is 0 for untouched elements,
    /// and `x + w·0 == x`) and runs as fixed [`SHIFT_LANES`]-wide chunks
    /// over the parallel `row`/`cache` slices with a scalar tail, the
    /// shape LLVM auto-vectorizes; `max(0)` maps to vector-max, so the
    /// chunk body is straight-line SIMD arithmetic. Slice-oracle audits
    /// (including chunk-boundary row lengths) pin the semantics.
    fn shift_client(&mut self, client: usize, old: f64, new: f64) {
        if old == new {
            return;
        }
        let w = self.f.client_weight(client);
        let row = self.f.sim_row(client);
        let cache = &mut self.cache[..row.len()];
        let mut c_chunks = cache.chunks_exact_mut(SHIFT_LANES);
        let mut r_chunks = row.chunks_exact(SHIFT_LANES);
        for (c, r) in (&mut c_chunks).zip(&mut r_chunks) {
            for k in 0..SHIFT_LANES {
                let before = (r[k] - old).max(0.0);
                let after = (r[k] - new).max(0.0);
                c[k] += w * (after - before);
            }
        }
        for (c, &s) in c_chunks
            .into_remainder()
            .iter_mut()
            .zip(r_chunks.remainder())
        {
            let before = (s - old).max(0.0);
            let after = (s - new).max(0.0);
            *c += w * (after - before);
        }
    }

    /// Recomputes best/second/provider for `client` by scanning members.
    fn rescan_client(&mut self, client: usize) {
        let row = self.f.sim_row(client);
        let (mut best, mut second, mut provider) = (0.0_f64, 0.0_f64, NO_PROVIDER);
        for &m in &self.member_list {
            let s = row[m as usize];
            if s > best {
                second = best;
                best = s;
                provider = m;
            } else if s > second {
                second = s;
            }
        }
        self.best[client] = best;
        self.second[client] = second;
        self.provider[client] = provider;
    }
}

impl IncrementalOracle for FacilityOracle<'_> {
    fn ground_size(&self) -> usize {
        self.cache.len()
    }

    fn len(&self) -> usize {
        self.members.size
    }

    fn contains(&self, u: ElementId) -> bool {
        self.members.contains(u)
    }

    fn value(&self) -> f64 {
        self.value
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.cache[u as usize]
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        debug_assert!(u != v);
        let mut total = 0.0;
        for client in 0..self.best.len() {
            let row = self.f.sim_row(client);
            let best = self.best[client];
            let joint = row[u as usize].max(row[v as usize]);
            if joint > best {
                total += self.f.client_weight(client) * (joint - best);
            }
        }
        total
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        debug_assert!(self.contains(v) && !self.contains(u));
        let mut total = 0.0;
        for client in 0..self.best.len() {
            let row = self.f.sim_row(client);
            let without_v = if self.provider[client] == v {
                self.second[client]
            } else {
                self.best[client]
            };
            let new_best = without_v.max(row[u as usize]);
            let delta = new_best - self.best[client];
            if delta != 0.0 {
                total += self.f.client_weight(client) * delta;
            }
        }
        total
    }

    fn insert(&mut self, u: ElementId) {
        self.members.insert(u);
        self.value += self.cache[u as usize];
        self.member_list.push(u);
        for client in 0..self.best.len() {
            let s = self.f.sim_row(client)[u as usize];
            if s > self.best[client] {
                let old = self.best[client];
                self.second[client] = old;
                self.best[client] = s;
                self.provider[client] = u;
                self.shift_client(client, old, s);
            } else if s > self.second[client] {
                self.second[client] = s;
            }
        }
    }

    fn remove(&mut self, u: ElementId) {
        self.members.remove(u);
        let idx = self
            .member_list
            .iter()
            .position(|&x| x == u)
            .expect("member list out of sync");
        self.member_list.swap_remove(idx);
        for client in 0..self.best.len() {
            let s = self.f.sim_row(client)[u as usize];
            // Only clients for which u was (possibly tied for) top-2 can
            // change.
            if self.provider[client] == u || s >= self.second[client] {
                let old = self.best[client];
                self.rescan_client(client);
                let new = self.best[client];
                if new != old {
                    self.value -= self.f.client_weight(client) * (old - new);
                    self.shift_client(client, old, new);
                }
            }
        }
    }

    fn scan_cost_hint(&self) -> usize {
        // One swap-gain read sweeps every client.
        self.best.len().max(1)
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        // Re-derive each element's marginal from the per-client bests:
        // f_u(S) = Σ_c w_c · (s(c, u) − best_c)⁺ — O(#clients) each.
        for &u in elems {
            let mut m = 0.0;
            for client in 0..self.best.len() {
                let s = self.f.sim_row(client)[u as usize];
                let delta = s - self.best[client];
                if delta > 0.0 {
                    m += self.f.client_weight(client) * delta;
                }
            }
            self.cache[u as usize] = m;
        }
    }

    fn save_state(&self) -> OracleState {
        OracleState::new(FacilityState {
            members: self.members.clone(),
            member_list: self.member_list.clone(),
            best: self.best.clone(),
            provider: self.provider.clone(),
            second: self.second.clone(),
            cache: self.cache.clone(),
            value: self.value,
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &FacilityState = state.downcast();
        self.members.clone_from(&s.members);
        self.member_list.clone_from(&s.member_list);
        self.best.clone_from(&s.best);
        self.provider.clone_from(&s.provider);
        self.second.clone_from(&s.second);
        self.cache.clone_from(&s.cache);
        self.value = s.value;
    }
}

// ---------------------------------------------------------------------------
// Mixture
// ---------------------------------------------------------------------------

/// Oracle for [`crate::MixtureFunction`]: a weighted composition of its
/// components' oracles, so every query and mutation costs the sum of the
/// component costs (each specialized where possible).
///
/// Generic over the boxed oracle type so the serial path composes plain
/// `dyn IncrementalOracle` parts while the thread-parallel path
/// ([`SyncMixtureOracle`]) composes `dyn IncrementalOracle + Send + Sync`
/// parts obtained via `SetFunction::incremental_sync`.
pub struct MixtureOracle<O: IncrementalOracle + ?Sized> {
    parts: Vec<(f64, Box<O>)>,
    members: Membership,
}

/// [`MixtureOracle`] whose component oracles are shareable across threads.
pub type SyncMixtureOracle<'a> = MixtureOracle<dyn IncrementalOracle + Send + Sync + 'a>;

impl<O: IncrementalOracle + ?Sized> MixtureOracle<O> {
    /// Composes pre-built component oracles (used by
    /// `MixtureFunction::incremental` / `incremental_sync`).
    ///
    /// # Panics
    ///
    /// Panics if a component's ground size differs from `n`.
    pub fn from_parts(n: usize, parts: Vec<(f64, Box<O>)>) -> Self {
        for (_, p) in &parts {
            assert_eq!(p.ground_size(), n, "component ground size mismatch");
        }
        Self {
            parts,
            members: Membership::new(n),
        }
    }
}

impl<O: IncrementalOracle + ?Sized> IncrementalOracle for MixtureOracle<O> {
    fn ground_size(&self) -> usize {
        self.members.in_set.len()
    }

    fn len(&self) -> usize {
        self.members.size
    }

    fn contains(&self, u: ElementId) -> bool {
        self.members.contains(u)
    }

    fn value(&self) -> f64 {
        self.parts.iter().map(|(c, p)| c * p.value()).sum()
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.parts.iter().map(|(c, p)| c * p.marginal(u)).sum()
    }

    fn marginal_bound(&self, u: ElementId) -> f64 {
        self.parts
            .iter()
            // A zero coefficient must contribute 0 even when the component's
            // lazy bound is still +∞ (0 · ∞ = NaN would poison the whole
            // lazy-greedy scan).
            .map(|(c, p)| {
                if *c == 0.0 {
                    0.0
                } else {
                    c * p.marginal_bound(u)
                }
            })
            .sum()
    }

    fn marginal_is_exact(&self, u: ElementId) -> bool {
        self.parts.iter().all(|(_, p)| p.marginal_is_exact(u))
    }

    fn refresh(&mut self, u: ElementId) -> f64 {
        self.parts.iter_mut().map(|(c, p)| *c * p.refresh(u)).sum()
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        self.parts
            .iter()
            .map(|(c, p)| c * p.pair_marginal(u, v))
            .sum()
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        self.parts.iter().map(|(c, p)| c * p.swap_gain(u, v)).sum()
    }

    fn insert(&mut self, u: ElementId) {
        self.members.insert(u);
        for (_, p) in &mut self.parts {
            p.insert(u);
        }
    }

    fn remove(&mut self, u: ElementId) {
        self.members.remove(u);
        for (_, p) in &mut self.parts {
            p.remove(u);
        }
    }

    fn scan_cost_hint(&self) -> usize {
        self.parts
            .iter()
            .map(|(_, p)| p.scan_cost_hint())
            .sum::<usize>()
            .max(1)
    }

    fn supports_weight_updates(&self) -> bool {
        // All-or-nothing so a weight update can never be applied to only
        // some components (mixtures of modular functions support it).
        !self.parts.is_empty() && self.parts.iter().all(|(_, p)| p.supports_weight_updates())
    }

    fn try_set_weight(&mut self, u: ElementId, value: f64) -> Option<f64> {
        if !self.supports_weight_updates() {
            return None;
        }
        let mut old = 0.0;
        for (c, p) in &mut self.parts {
            old += *c
                * p.try_set_weight(u, value)
                    .expect("component advertised weight-update support");
        }
        Some(old)
    }

    fn weight_updates_shift_uniformly(&self) -> bool {
        // A coefficient-weighted sum of uniform row shifts is itself a
        // uniform row shift.
        self.supports_weight_updates()
            && self
                .parts
                .iter()
                .all(|(_, p)| p.weight_updates_shift_uniformly())
    }

    fn swap_gains_are_membership_independent(&self) -> bool {
        // A coefficient-weighted sum of membership-independent gains is
        // itself membership-independent.
        self.parts
            .iter()
            .all(|(_, p)| p.swap_gains_are_membership_independent())
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        for (_, p) in &mut self.parts {
            p.invalidate(elems);
        }
    }

    fn save_state(&self) -> OracleState {
        OracleState::new(MixtureState {
            parts: self.parts.iter().map(|(_, p)| p.save_state()).collect(),
            members: self.members.clone(),
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &MixtureState = state.downcast();
        assert_eq!(
            s.parts.len(),
            self.parts.len(),
            "mixture snapshot component count mismatch"
        );
        for ((_, p), part_state) in self.parts.iter_mut().zip(&s.parts) {
            p.restore_state(part_state);
        }
        self.members.clone_from(&s.members);
    }
}

// ---------------------------------------------------------------------------
// Generic fallback
// ---------------------------------------------------------------------------

/// Fallback oracle wrapping any [`SetFunction`] through its value oracle.
///
/// `marginal` delegates to the underlying oracle (`O(cost(f))`), but the
/// oracle additionally maintains *lazy upper bounds*: [`refresh`] caches
/// the exact marginal, and — because `f` is submodular — that cached value
/// remains a valid upper bound as long as `S` only grows. `remove`
/// invalidates all bounds (marginals may increase when the set shrinks).
///
/// **Contract**: the bound semantics (and the lazy-greedy scan built on
/// them) are only sound for submodular `f`. Wrapping a non-submodular
/// function still yields exact `value`/`marginal`/`swap_gain` queries,
/// but `marginal_bound` may under-estimate after insertions.
///
/// [`refresh`]: IncrementalOracle::refresh
#[derive(Debug, Clone)]
pub struct GenericOracle<'a, F: ?Sized> {
    f: &'a F,
    members: Vec<ElementId>,
    in_set: Vec<bool>,
    value: f64,
    /// Last refreshed marginal; `+∞` when never refreshed.
    bound: Vec<f64>,
    /// Version stamp at which `bound[u]` was exact.
    stamp: Vec<u64>,
    version: u64,
}

impl<'a, F: SetFunction + ?Sized> GenericOracle<'a, F> {
    /// Oracle over the empty set.
    pub fn new(f: &'a F) -> Self {
        let n = f.ground_size();
        Self {
            f,
            members: Vec::new(),
            in_set: vec![false; n],
            value: 0.0,
            bound: vec![f64::INFINITY; n],
            stamp: vec![u64::MAX; n],
            version: 0,
        }
    }
}

impl<F: SetFunction + ?Sized> IncrementalOracle for GenericOracle<'_, F> {
    fn ground_size(&self) -> usize {
        self.in_set.len()
    }

    fn len(&self) -> usize {
        self.members.len()
    }

    fn contains(&self, u: ElementId) -> bool {
        self.in_set[u as usize]
    }

    fn value(&self) -> f64 {
        self.value
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.f.marginal(u, &self.members)
    }

    fn marginal_bound(&self, u: ElementId) -> f64 {
        self.bound[u as usize]
    }

    fn marginal_is_exact(&self, u: ElementId) -> bool {
        self.stamp[u as usize] == self.version
    }

    fn refresh(&mut self, u: ElementId) -> f64 {
        let m = self.f.marginal(u, &self.members);
        self.bound[u as usize] = m;
        self.stamp[u as usize] = self.version;
        m
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        debug_assert!(u != v && !self.contains(u) && !self.contains(v));
        let mut with: Vec<ElementId> = Vec::with_capacity(self.members.len() + 2);
        with.extend_from_slice(&self.members);
        with.push(u);
        with.push(v);
        self.f.value(&with) - self.value
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        self.f.swap_gain(u, v, &self.members)
    }

    fn insert(&mut self, u: ElementId) {
        assert!(
            !self.in_set[u as usize],
            "element {u} already in oracle set"
        );
        self.value += self.refresh(u);
        self.in_set[u as usize] = true;
        self.members.push(u);
        // Bounds cached for smaller sets stay valid upper bounds
        // (submodularity); only the exactness stamps expire.
        self.version += 1;
    }

    fn remove(&mut self, u: ElementId) {
        assert!(self.in_set[u as usize], "element {u} not in oracle set");
        self.in_set[u as usize] = false;
        let idx = self
            .members
            .iter()
            .position(|&x| x == u)
            .expect("member list out of sync");
        self.members.swap_remove(idx);
        self.value = self.f.value(&self.members);
        // Marginals can grow when the set shrinks: all bounds are invalid.
        self.bound.fill(f64::INFINITY);
        self.version += 1;
    }

    fn scan_cost_hint(&self) -> usize {
        // Exact reads re-evaluate the wrapped value oracle over slices of
        // the current set; the ground size is the only structure-free
        // proxy for that cost.
        self.in_set.len().max(1)
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        // The lazily-cached bounds are the only per-element state.
        for &u in elems {
            self.bound[u as usize] = f64::INFINITY;
            self.stamp[u as usize] = u64::MAX;
        }
    }

    fn save_state(&self) -> OracleState {
        OracleState::new(GenericState {
            members: self.members.clone(),
            in_set: self.in_set.clone(),
            value: self.value,
            bound: self.bound.clone(),
            stamp: self.stamp.clone(),
            version: self.version,
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &GenericState = state.downcast();
        self.members.clone_from(&s.members);
        self.in_set.clone_from(&s.in_set);
        self.value = s.value;
        self.bound.clone_from(&s.bound);
        self.stamp.clone_from(&s.stamp);
        self.version = s.version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixtureFunction;

    fn coverage() -> CoverageFunction {
        CoverageFunction::new(
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![3],
                vec![0, 1, 2, 3],
                vec![],
                vec![2, 4],
            ],
            vec![1.0, 2.0, 4.0, 8.0, 16.0],
        )
    }

    fn facility() -> FacilityLocationFunction {
        FacilityLocationFunction::new(
            vec![
                vec![1.0, 0.2, 0.0, 0.7, 0.7],
                vec![0.1, 0.9, 0.3, 0.9, 0.2],
                vec![0.0, 0.4, 0.8, 0.1, 0.6],
            ],
            vec![1.0, 2.0, 1.5],
        )
    }

    /// Drives `oracle` through a scripted insert/remove sequence, checking
    /// every query against the slice-based ground truth after each step.
    fn audit_against_slices<F: SetFunction>(f: &F, oracle: &mut dyn IncrementalOracle) {
        let n = f.ground_size();
        let script: Vec<(bool, ElementId)> = vec![
            (true, 0),
            (true, 3),
            (true, 1),
            (false, 3),
            (true, 5 % n as ElementId),
            (false, 0),
            (true, 2),
        ];
        let mut mirror: Vec<ElementId> = Vec::new();
        for (add, u) in script {
            if u as usize >= n {
                continue;
            }
            if add {
                if mirror.contains(&u) {
                    continue;
                }
                oracle.insert(u);
                mirror.push(u);
            } else {
                if !mirror.contains(&u) {
                    continue;
                }
                oracle.remove(u);
                mirror.retain(|&x| x != u);
            }
            assert_eq!(oracle.len(), mirror.len());
            assert!(
                (oracle.value() - f.value(&mirror)).abs() < 1e-9,
                "value drifted after {:?}",
                (add, u)
            );
            for x in 0..n as ElementId {
                assert_eq!(oracle.contains(x), mirror.contains(&x));
                if !mirror.contains(&x) {
                    let expected = f.marginal(x, &mirror);
                    assert!(
                        (oracle.marginal(x) - expected).abs() < 1e-9,
                        "marginal({x}) = {} expected {expected} after {:?}",
                        oracle.marginal(x),
                        (add, u)
                    );
                    assert!(oracle.marginal_bound(x) >= expected - 1e-9);
                    for &v in &mirror {
                        let expected = f.swap_gain(x, v, &mirror);
                        assert!(
                            (oracle.swap_gain(x, v) - expected).abs() < 1e-9,
                            "swap_gain({x},{v}) drifted"
                        );
                    }
                    for y in 0..n as ElementId {
                        if y != x && !mirror.contains(&y) {
                            let mut with = mirror.clone();
                            with.push(x);
                            with.push(y);
                            let expected = f.value(&with) - f.value(&mirror);
                            assert!(
                                (oracle.pair_marginal(x, y) - expected).abs() < 1e-9,
                                "pair_marginal({x},{y}) drifted"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn modular_oracle_matches_slices() {
        let f = ModularFunction::new(vec![0.5, 2.0, 0.0, 3.25, 1.0, 0.75]);
        audit_against_slices(&f, &mut ModularOracle::new(&f));
    }

    #[test]
    fn coverage_oracle_matches_slices() {
        let f = coverage();
        audit_against_slices(&f, &mut CoverageOracle::new(&f));
    }

    #[test]
    fn facility_oracle_matches_slices() {
        let f = facility();
        audit_against_slices(&f, &mut FacilityOracle::new(&f));
    }

    #[test]
    fn facility_shift_kernel_matches_slices_across_chunk_boundaries() {
        // Ground sizes straddling the SHIFT_LANES chunking: one full chunk
        // exactly, odd tails, and sub-chunk rows. Every insert/remove runs
        // shift_client over rows of these lengths; the marginals must stay
        // equal to the slice-recomputed ground truth.
        for n in [3usize, 8, 9, 16, 21, 27] {
            let clients = n / 2 + 2;
            let sim: Vec<Vec<f64>> = (0..clients)
                .map(|c| {
                    (0..n)
                        .map(|u| ((c * 31 + u * 17) % 97) as f64 / 97.0)
                        .collect()
                })
                .collect();
            let weights: Vec<f64> = (0..clients).map(|c| 0.5 + (c % 5) as f64 * 0.3).collect();
            let f = FacilityLocationFunction::new(sim, weights);
            let mut oracle = FacilityOracle::new(&f);
            let mut mirror: Vec<ElementId> = Vec::new();
            let script: Vec<ElementId> = (0..n as ElementId)
                .chain([0, (n / 2) as ElementId])
                .collect();
            for u in script {
                if mirror.contains(&u) {
                    oracle.remove(u);
                    mirror.retain(|&x| x != u);
                } else {
                    oracle.insert(u);
                    mirror.push(u);
                }
                assert!(
                    (oracle.value() - f.value(&mirror)).abs() < 1e-9,
                    "n={n}: value drifted after touching {u}"
                );
                for x in 0..n as ElementId {
                    if !mirror.contains(&x) {
                        let expected = f.marginal(x, &mirror);
                        assert!(
                            (oracle.marginal(x) - expected).abs() < 1e-9,
                            "n={n}: marginal({x}) = {} expected {expected}",
                            oracle.marginal(x)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_oracle_matches_slices() {
        let f = ZeroFunction::new(6);
        audit_against_slices(&f, &mut ZeroOracle::new(&f));
    }

    #[test]
    fn generic_oracle_matches_slices() {
        let f = coverage();
        audit_against_slices(&f, &mut GenericOracle::new(&f));
    }

    #[test]
    fn mixture_oracle_matches_slices() {
        let f = MixtureFunction::new(6)
            .with(
                0.5,
                ModularFunction::new(vec![1.0, 0.0, 2.0, 0.5, 1.5, 0.25]),
            )
            .with(2.0, coverage());
        audit_against_slices(&f, &mut *f.incremental());
    }

    #[test]
    fn dispatch_picks_specialized_oracles() {
        // Via SetFunction::incremental the structured functions return
        // their O(1)-read oracles; behaviourally indistinguishable, so just
        // audit through the trait hook.
        let cov = coverage();
        audit_against_slices(&cov, &mut *cov.incremental());
        let fac = facility();
        audit_against_slices(&fac, &mut *fac.incremental());
        let z = ZeroFunction::new(5);
        audit_against_slices(&z, &mut *z.incremental());
    }

    #[test]
    fn zero_coefficient_mixture_component_keeps_bounds_finite() {
        // A 0-weighted component with an unrefreshed generic bound (+∞)
        // must not turn the mixture bound into NaN (0 · ∞).
        struct Opaque(usize);
        impl SetFunction for Opaque {
            fn ground_size(&self) -> usize {
                self.0
            }
            fn value(&self, set: &[ElementId]) -> f64 {
                set.len() as f64
            }
        }
        let f = MixtureFunction::new(4)
            .with(1.0, ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]))
            .with(0.0, Opaque(4));
        let oracle = f.incremental();
        for u in 0..4 {
            let bound = oracle.marginal_bound(u);
            assert!(bound.is_finite(), "bound({u}) = {bound}");
            assert!(bound >= oracle.marginal(u) - 1e-12);
        }
    }

    #[test]
    fn incremental_from_seeds_the_set() {
        let f = coverage();
        let oracle = f.incremental_from(&[1, 3]);
        assert_eq!(oracle.len(), 2);
        assert!(oracle.contains(1) && oracle.contains(3));
        assert!((oracle.value() - f.value(&[1, 3])).abs() < 1e-12);
    }

    #[test]
    fn generic_bounds_are_lazy_and_tighten_on_refresh() {
        let f = coverage();
        let mut o = GenericOracle::new(&f);
        assert!(o.marginal_bound(0).is_infinite());
        assert!(!o.marginal_is_exact(0));
        let exact = o.refresh(0);
        assert!(o.marginal_is_exact(0));
        assert_eq!(o.marginal_bound(0), exact);
        // Growing the set keeps the bound valid but stale.
        o.insert(3);
        assert!(!o.marginal_is_exact(0));
        assert!(o.marginal_bound(0) >= o.marginal(0));
        // Shrinking invalidates.
        o.remove(3);
        assert!(o.marginal_bound(0).is_infinite());
    }

    #[test]
    fn invalidate_is_an_identity_repair_when_nothing_changed() {
        // With unchanged function data, invalidate must re-derive exactly
        // the state the incremental maintenance reached (up to FP noise).
        let cov = coverage();
        let fac = facility();
        let modular = ModularFunction::new(vec![0.5, 2.0, 0.0, 3.25, 1.0, 0.75]);
        let mix = MixtureFunction::new(6)
            .with(0.5, modular.clone())
            .with(2.0, coverage());
        let all: Vec<ElementId> = (0..6).collect();
        let oracles: Vec<(&dyn SetFunction, Box<dyn IncrementalOracle>)> = vec![
            (&cov, cov.incremental()),
            (&fac, fac.incremental()),
            (&modular, modular.incremental()),
            (&mix, mix.incremental()),
        ];
        for (f, mut oracle) in oracles {
            let n = f.ground_size();
            oracle.insert(1);
            oracle.insert(4 % n as ElementId);
            let mirror: Vec<ElementId> = vec![1, 4 % n as ElementId];
            oracle.invalidate(&all[..n]);
            for u in 0..n as ElementId {
                if !mirror.contains(&u) {
                    let expected = f.marginal(u, &mirror);
                    assert!(
                        (oracle.marginal(u) - expected).abs() < 1e-9,
                        "marginal({u}) drifted after invalidate"
                    );
                }
            }
            assert!((oracle.value() - f.value(&mirror)).abs() < 1e-9);
        }
    }

    #[test]
    fn save_restore_round_trips_bit_exactly() {
        // Snapshot → further mutations → restore must reproduce the
        // saved value, membership, and every marginal with == equality
        // (the SessionCheckpoint contract), across all oracle families.
        let cov = coverage();
        let fac = facility();
        let modular = ModularFunction::new(vec![0.5, 2.0, 0.0, 3.25, 1.0, 0.75]);
        let mix = MixtureFunction::new(6)
            .with(0.5, modular.clone())
            .with(2.0, coverage());
        let zero = ZeroFunction::new(6);
        let mut oracles: Vec<Box<dyn IncrementalOracle + '_>> = vec![
            cov.incremental(),
            fac.incremental(),
            modular.incremental(),
            mix.incremental(),
            Box::new(GenericOracle::new(&cov)),
            Box::new(ZeroOracle::new(&zero)),
        ];
        for oracle in &mut oracles {
            let n = oracle.ground_size() as ElementId;
            oracle.insert(1);
            oracle.insert(3);
            if oracle.supports_weight_updates() {
                oracle.try_set_weight(3, 9.5);
            }
            let saved = oracle.save_state();
            let value = oracle.value();
            let marginals: Vec<f64> = (0..n).map(|u| oracle.marginal(u)).collect();
            let members: Vec<bool> = (0..n).map(|u| oracle.contains(u)).collect();
            // Diverge: swap membership around, poke weights.
            oracle.remove(3);
            oracle.insert(0);
            oracle.insert(4);
            if oracle.supports_weight_updates() {
                oracle.try_set_weight(0, 0.125);
            }
            oracle.restore_state(&saved);
            assert_eq!(oracle.len(), 2);
            assert!(oracle.value() == value, "value not bit-identical");
            for u in 0..n {
                assert!(
                    oracle.marginal(u) == marginals[u as usize],
                    "marginal({u}) not bit-identical after restore"
                );
                assert_eq!(oracle.contains(u), members[u as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match this oracle type")]
    fn restore_rejects_foreign_snapshots() {
        let cov = coverage();
        let mut o = cov.incremental();
        let zero = ZeroOracle::new(&ZeroFunction::new(6)).save_state();
        o.restore_state(&zero);
    }

    #[test]
    fn modular_weight_updates_repair_value_and_marginals() {
        let f = ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]);
        let mut o = f.incremental_from(&[1, 3]);
        assert!(o.supports_weight_updates());
        // Member weight update shifts the value; outsider update does not.
        assert_eq!(o.try_set_weight(3, 10.0), Some(4.0));
        assert_eq!(o.value(), 12.0);
        assert_eq!(o.try_set_weight(0, 7.0), Some(1.0));
        assert_eq!(o.value(), 12.0);
        assert_eq!(o.marginal(0), 7.0);
        assert_eq!(o.swap_gain(0, 1), 5.0);
        // invalidate restores the wrapped function's authoritative data.
        o.invalidate(&[0, 3]);
        assert_eq!(o.value(), 6.0);
        assert_eq!(o.marginal(0), 1.0);
    }

    #[test]
    fn weight_updates_are_unsupported_off_the_modular_family() {
        let cov = coverage();
        let mut o = cov.incremental();
        assert!(!o.supports_weight_updates());
        assert_eq!(o.try_set_weight(0, 1.0), None);
        let fac = facility();
        assert!(!fac.incremental().supports_weight_updates());
        // Mixtures forward all-or-nothing: one non-modular part disables.
        let mix = MixtureFunction::new(6)
            .with(1.0, ModularFunction::uniform(6, 1.0))
            .with(1.0, coverage());
        assert!(!mix.incremental().supports_weight_updates());
        let modular_mix = MixtureFunction::new(4)
            .with(2.0, ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]))
            .with(0.5, ModularFunction::uniform(4, 2.0));
        let mut o = modular_mix.incremental();
        assert!(o.supports_weight_updates());
        // Previous effective weight: 2.0·2.0 + 0.5·2.0 = 5.0.
        assert_eq!(o.try_set_weight(1, 6.0), Some(5.0));
        assert_eq!(o.marginal(1), 2.5 * 6.0);
    }

    #[test]
    fn weight_update_uniformity_tracks_the_modular_family() {
        // The candidate-cache validity hint: modular-family oracles shift
        // an element's whole gain row uniformly on try_set_weight; oracles
        // without weight updates report false (nothing to preserve).
        let modular = ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(modular.incremental().weight_updates_shift_uniformly());
        let cov = coverage();
        assert!(!cov.incremental().weight_updates_shift_uniformly());
        let modular_mix = MixtureFunction::new(4)
            .with(2.0, ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]))
            .with(0.5, ModularFunction::uniform(4, 2.0));
        assert!(modular_mix.incremental().weight_updates_shift_uniformly());
        let mixed = MixtureFunction::new(6)
            .with(1.0, ModularFunction::uniform(6, 1.0))
            .with(1.0, coverage());
        assert!(!mixed.incremental().weight_updates_shift_uniformly());
        // And the claim itself: a modular try_set_weight moves every swap
        // gain involving the element by the same delta.
        let f = ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]);
        let mut o = f.incremental_from(&[2]);
        let before: Vec<f64> = [0u32, 1, 3].iter().map(|&v| o.swap_gain(v, 2)).collect();
        o.try_set_weight(2, 5.5);
        for (i, &v) in [0u32, 1, 3].iter().enumerate() {
            assert!((o.swap_gain(v, 2) - (before[i] - 2.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_gain_membership_independence_tracks_the_modular_family() {
        // The cache-across-swaps validity hint: modular-family swap gains
        // are w(u) − w(v) regardless of S; coverage / facility / generic
        // gains interact with the set and must stay conservative.
        let modular = ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(modular
            .incremental()
            .swap_gains_are_membership_independent());
        assert!(ZeroFunction::new(4)
            .incremental()
            .swap_gains_are_membership_independent());
        let cov = coverage();
        assert!(!cov.incremental().swap_gains_are_membership_independent());
        assert!(!facility()
            .incremental()
            .swap_gains_are_membership_independent());
        assert!(!GenericOracle::new(&cov).swap_gains_are_membership_independent());
        let modular_mix = MixtureFunction::new(4)
            .with(2.0, ModularFunction::new(vec![1.0, 2.0, 3.0, 4.0]))
            .with(0.5, ModularFunction::uniform(4, 2.0));
        assert!(modular_mix
            .incremental()
            .swap_gains_are_membership_independent());
        let mixed = MixtureFunction::new(6)
            .with(1.0, ModularFunction::uniform(6, 1.0))
            .with(1.0, coverage());
        assert!(!mixed.incremental().swap_gains_are_membership_independent());
        // And the claim itself: the modular swap gain is the same for
        // every carrier set.
        let mut o = modular.incremental_from(&[2]);
        let g = o.swap_gain(0, 2);
        o.insert(3);
        assert_eq!(o.swap_gain(0, 2), g);
    }

    #[test]
    fn scan_cost_hints_rank_families_sensibly() {
        let modular = ModularFunction::uniform(8, 1.0);
        assert_eq!(modular.incremental().scan_cost_hint(), 1);
        let cov = coverage();
        let fac = facility();
        assert!(cov.incremental().scan_cost_hint() >= 2);
        assert_eq!(fac.incremental().scan_cost_hint(), 3);
        assert_eq!(GenericOracle::new(&cov).scan_cost_hint(), 6);
        let mix = MixtureFunction::new(6)
            .with(1.0, ModularFunction::uniform(6, 1.0))
            .with(1.0, coverage());
        assert_eq!(
            mix.incremental().scan_cost_hint(),
            1 + cov.incremental().scan_cost_hint()
        );
    }

    #[test]
    #[should_panic(expected = "already in oracle set")]
    fn double_insert_panics() {
        let f = coverage();
        let mut o = CoverageOracle::new(&f);
        o.insert(1);
        o.insert(1);
    }

    #[test]
    #[should_panic(expected = "not in oracle set")]
    fn absent_remove_panics() {
        let f = facility();
        let mut o = FacilityOracle::new(&f);
        o.remove(0);
    }
}
