//! Shared-base modular quality with per-tenant copy-on-write deltas.
//!
//! The multi-tenant serving layer in `msd-core` runs `k` sessions over the
//! *same* corpus-wide modular weight vector. [`ModularOracle`]'s
//! copy-on-write override is session-local but clones the **full** weight
//! slice on the first `try_set_weight`, so `k` tenants that each touch a
//! handful of weights still pay `k·O(n)` memory. This module generalizes
//! the metric-overlay trick (`msd-metric`'s `OverlayMetric`) to the quality
//! side:
//!
//! * [`WeightOverlay`] — one immutable `Arc<[f64]>` base vector shared by
//!   every tenant, plus a sparse per-tenant delta map, `O(Δ_w)` memory per
//!   tenant instead of `O(n)`;
//! * [`SharedModularOracle`] — an [`IncrementalOracle`] over the overlay
//!   whose every floating-point operation matches [`ModularOracle`]
//!   bit-for-bit (same read → same add, in the same order), so a tenant
//!   served through the overlay is bit-identical to one served through an
//!   owned modular oracle.
//!
//! The overlay's sparse deltas are exportable in a deterministic sorted
//! order ([`SharedModularOracle::weight_deltas`]), which is what makes
//! tenant eviction snapshots plain-old-data.
//!
//! [`ModularOracle`]: crate::ModularOracle

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::sync::Arc;

use crate::incremental::{IncrementalOracle, Membership, OracleState};
use crate::ElementId;

/// One shared immutable base weight vector plus sparse per-holder deltas.
///
/// Reads go through a dirty bitmap: an element with no delta reads the
/// shared base in O(1) with no hashing; an element that was overridden
/// reads its delta. Memory is `O(n)` once for the base (shared across all
/// holders via `Arc`) plus `O(Δ_w)` per holder for the delta map — the
/// bitmap is `n` *bits* of bookkeeping, not `n` floats.
#[derive(Debug, Clone)]
pub struct WeightOverlay {
    base: Arc<[f64]>,
    deltas: HashMap<ElementId, f64>,
    dirty: Vec<bool>,
}

impl WeightOverlay {
    /// Overlay with no deltas over `base`.
    ///
    /// # Panics
    ///
    /// Panics when any base weight is negative or non-finite (the modular
    /// quality contract).
    pub fn new(base: Arc<[f64]>) -> Self {
        for (u, &w) in base.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of element {u} must be finite and non-negative, got {w}"
            );
        }
        let n = base.len();
        Self {
            base,
            deltas: HashMap::new(),
            dirty: vec![false; n],
        }
    }

    /// The shared base vector.
    pub fn base(&self) -> &Arc<[f64]> {
        &self.base
    }

    /// Ground-set size `n`.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when the ground set is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Effective weight of `u`: the delta when one exists, the shared base
    /// otherwise.
    #[inline]
    pub fn weight(&self, u: ElementId) -> f64 {
        if self.dirty[u as usize] {
            self.deltas[&u]
        } else {
            self.base[u as usize]
        }
    }

    /// Overrides `w(u) = value`, returning the previous effective weight.
    pub fn set(&mut self, u: ElementId, value: f64) -> f64 {
        if self.dirty[u as usize] {
            #[allow(clippy::unwrap_used)] // dirty[u] ⇒ the delta exists
            std::mem::replace(self.deltas.get_mut(&u).unwrap(), value)
        } else {
            self.dirty[u as usize] = true;
            self.deltas.insert(u, value);
            self.base[u as usize]
        }
    }

    /// Drops the delta of `u`, restoring the shared base as authoritative.
    /// Returns the displaced delta, or `None` when `u` had none.
    pub fn clear(&mut self, u: ElementId) -> Option<f64> {
        if !self.dirty[u as usize] {
            return None;
        }
        self.dirty[u as usize] = false;
        self.deltas.remove(&u)
    }

    /// Number of overridden elements (the per-holder `Δ_w`).
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// The sparse deltas sorted by element id — a deterministic
    /// plain-old-data export for snapshots and audits.
    pub fn deltas_sorted(&self) -> Vec<(ElementId, f64)> {
        let mut out: Vec<(ElementId, f64)> = self.deltas.iter().map(|(&u, &w)| (u, w)).collect();
        out.sort_unstable_by_key(|&(u, _)| u);
        out
    }
}

/// Per-oracle [`OracleState`] payload (see `incremental.rs` for why these
/// are named structs).
#[derive(Clone)]
struct SharedModularState {
    deltas: HashMap<ElementId, f64>,
    dirty: Vec<bool>,
    members: Membership,
    value: f64,
}

/// Modular-quality oracle over a [`WeightOverlay`]: the shared-base
/// counterpart of [`ModularOracle`](crate::ModularOracle).
///
/// Every floating-point operation mirrors the owned oracle exactly —
/// `insert` adds `w(u)`, `remove` subtracts it, `try_set_weight` applies
/// `value += new − old` when `u` is a member — so a session driven by this
/// oracle produces bit-identical trajectories to one driven by
/// `ModularOracle` over equal weights. What changes is the memory story:
/// `try_set_weight` records an `O(1)` sparse delta instead of cloning the
/// `O(n)` weight slice.
#[derive(Debug, Clone)]
pub struct SharedModularOracle {
    overlay: WeightOverlay,
    members: Membership,
    value: f64,
}

impl SharedModularOracle {
    /// Oracle over the empty set sharing `base`.
    pub fn new(base: Arc<[f64]>) -> Self {
        let overlay = WeightOverlay::new(base);
        let n = overlay.len();
        Self {
            overlay,
            members: Membership::new(n),
            value: 0.0,
        }
    }

    /// The shared base vector this oracle reads through.
    pub fn base(&self) -> &Arc<[f64]> {
        self.overlay.base()
    }

    /// Number of per-tenant weight overrides currently held (`Δ_w`).
    pub fn delta_count(&self) -> usize {
        self.overlay.delta_count()
    }

    /// The sparse weight overrides sorted by element id.
    pub fn weight_deltas(&self) -> Vec<(ElementId, f64)> {
        self.overlay.deltas_sorted()
    }

    /// Rebuilds an oracle from snapshot parts **without** re-accumulating
    /// `value` — the captured float is restored verbatim, which is what
    /// makes evict → attach round-trips bit-identical (replaying inserts
    /// would re-derive `value` through a different accumulation history).
    ///
    /// # Panics
    ///
    /// Panics when `in_set` length differs from the base length, when a
    /// delta element is out of range, or when a delta weight violates the
    /// modular contract.
    pub fn from_parts(
        base: Arc<[f64]>,
        deltas: &[(ElementId, f64)],
        in_set: &[bool],
        value: f64,
    ) -> Self {
        let mut oracle = Self::new(base);
        assert_eq!(
            in_set.len(),
            oracle.overlay.len(),
            "membership mask length must match the shared base length"
        );
        for &(u, w) in deltas {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of element {u} must be finite and non-negative, got {w}"
            );
            oracle.overlay.set(u, w);
        }
        let mut members = Membership::new(in_set.len());
        for (u, &inside) in in_set.iter().enumerate() {
            if inside {
                members.insert(u as ElementId);
            }
        }
        oracle.members = members;
        oracle.value = value;
        oracle
    }
}

impl IncrementalOracle for SharedModularOracle {
    fn ground_size(&self) -> usize {
        self.overlay.len()
    }

    fn len(&self) -> usize {
        self.members.size
    }

    fn contains(&self, u: ElementId) -> bool {
        self.members.contains(u)
    }

    fn value(&self) -> f64 {
        self.value
    }

    fn marginal(&self, u: ElementId) -> f64 {
        self.overlay.weight(u)
    }

    fn pair_marginal(&self, u: ElementId, v: ElementId) -> f64 {
        self.overlay.weight(u) + self.overlay.weight(v)
    }

    fn swap_gain(&self, u: ElementId, v: ElementId) -> f64 {
        self.overlay.weight(u) - self.overlay.weight(v)
    }

    fn insert(&mut self, u: ElementId) {
        self.members.insert(u);
        self.value += self.overlay.weight(u);
    }

    fn remove(&mut self, u: ElementId) {
        self.members.remove(u);
        self.value -= self.overlay.weight(u);
    }

    fn supports_weight_updates(&self) -> bool {
        true
    }

    fn try_set_weight(&mut self, u: ElementId, value: f64) -> Option<f64> {
        assert!(
            value.is_finite() && value >= 0.0,
            "weight of element {u} must be finite and non-negative, got {value}"
        );
        let old = self.overlay.set(u, value);
        if self.members.contains(u) {
            self.value += value - old;
        }
        Some(old)
    }

    fn swap_gains_are_membership_independent(&self) -> bool {
        // swap_gain(u, v) = w(u) − w(v) regardless of S.
        true
    }

    fn invalidate(&mut self, elems: &[ElementId]) {
        // Restores the shared base as authoritative for `elems`, exactly
        // like `ModularOracle::reload_weight` re-reads the wrapped
        // function.
        for &u in elems {
            if let Some(old) = self.overlay.clear(u) {
                let new = self.overlay.weight(u);
                if self.members.contains(u) {
                    self.value += new - old;
                }
            }
        }
    }

    fn save_state(&self) -> OracleState {
        OracleState::new(SharedModularState {
            deltas: self.overlay.deltas.clone(),
            dirty: self.overlay.dirty.clone(),
            members: self.members.clone(),
            value: self.value,
        })
    }

    fn restore_state(&mut self, state: &OracleState) {
        let s: &SharedModularState = state.downcast();
        self.overlay.deltas.clone_from(&s.deltas);
        self.overlay.dirty.clone_from(&s.dirty);
        self.members.clone_from(&s.members);
        self.value = s.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModularFunction, ModularOracle};

    fn base(n: usize) -> Arc<[f64]> {
        (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect()
    }

    #[test]
    fn matches_owned_modular_oracle_bitwise() {
        let weights: Vec<f64> = base(8).to_vec();
        let f = ModularFunction::new(weights.clone());
        let mut owned = ModularOracle::new(&f);
        let mut shared = SharedModularOracle::new(base(8));

        let script: [(u8, ElementId, f64); 9] = [
            (0, 2, 0.0),
            (0, 5, 0.0),
            (2, 5, 0.625),
            (0, 7, 0.0),
            (1, 2, 0.0),
            (2, 2, 0.125),
            (0, 2, 0.0),
            (2, 0, 3.5),
            (1, 5, 0.0),
        ];
        for &(op, u, w) in &script {
            match op {
                0 => {
                    owned.insert(u);
                    shared.insert(u);
                }
                1 => {
                    owned.remove(u);
                    shared.remove(u);
                }
                _ => {
                    assert_eq!(owned.try_set_weight(u, w), shared.try_set_weight(u, w));
                }
            }
            assert_eq!(owned.value().to_bits(), shared.value().to_bits());
            for x in 0..8 {
                assert_eq!(owned.marginal(x).to_bits(), shared.marginal(x).to_bits());
                assert_eq!(
                    owned.swap_gain(x, 2).to_bits(),
                    shared.swap_gain(x, 2).to_bits()
                );
            }
        }
        // The owned oracle cloned all 8 weights on the first override; the
        // shared one holds exactly the touched elements.
        assert_eq!(shared.delta_count(), 3);
    }

    #[test]
    fn invalidate_restores_shared_base() {
        let mut o = SharedModularOracle::new(base(4));
        o.insert(1);
        let v0 = o.value();
        o.try_set_weight(1, 9.0);
        o.try_set_weight(3, 2.0);
        assert_eq!(o.delta_count(), 2);
        o.invalidate(&[1, 3, 0]);
        assert_eq!(o.delta_count(), 0);
        assert_eq!(o.value().to_bits(), v0.to_bits());
        assert_eq!(o.marginal(3), 0.25);
    }

    #[test]
    fn save_restore_round_trips_bitwise() {
        let mut o = SharedModularOracle::new(base(6));
        o.insert(0);
        o.insert(4);
        o.try_set_weight(4, 0.3);
        let snap = o.save_state();
        let (v, d) = (o.value(), o.delta_count());
        o.remove(4);
        o.try_set_weight(0, 7.0);
        o.restore_state(&snap);
        assert_eq!(o.value().to_bits(), v.to_bits());
        assert_eq!(o.delta_count(), d);
        assert!(o.contains(4));
        assert_eq!(o.marginal(4), 0.3);
    }

    #[test]
    fn from_parts_restores_value_verbatim() {
        let mut o = SharedModularOracle::new(base(5));
        o.insert(2);
        o.insert(3);
        o.try_set_weight(3, 0.8);
        let deltas = o.weight_deltas();
        let in_set: Vec<bool> = (0..5).map(|u| o.contains(u)).collect();
        let rebuilt =
            SharedModularOracle::from_parts(o.base().clone(), &deltas, &in_set, o.value());
        assert_eq!(rebuilt.value().to_bits(), o.value().to_bits());
        assert_eq!(rebuilt.weight_deltas(), deltas);
        for u in 0..5 {
            assert_eq!(rebuilt.contains(u), o.contains(u));
            assert_eq!(rebuilt.marginal(u).to_bits(), o.marginal(u).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn rejects_negative_weight() {
        let mut o = SharedModularOracle::new(base(3));
        o.try_set_weight(0, -1.0);
    }
}
