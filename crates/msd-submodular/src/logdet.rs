//! Log-determinant set functions.
//!
//! For a symmetric positive semi-definite kernel `L` (e.g. a Gram matrix
//! of item embeddings), the function
//!
//! ```text
//! f(S) = log det(I + L_S)
//! ```
//!
//! (`L_S` = the principal submatrix indexed by `S`) is normalized,
//! monotone and submodular — the objective behind determinantal point
//! processes, a standard diversity-aware quality model in the
//! recommendation literature that grew out of the diversification line of
//! work this paper anchors. Including it exercises Theorem 1/Theorem 2 on
//! a quality function that is *not* decomposable per element at all.
//!
//! The determinant is computed by an in-house Cholesky factorization
//! (O(|S|³) per oracle call), keeping the workspace dependency-free.

use crate::{ElementId, SetFunction};

/// `f(S) = log det(I + L_S)` for a PSD kernel `L`.
#[derive(Debug, Clone)]
pub struct LogDetFunction {
    n: usize,
    /// Row-major dense kernel.
    kernel: Vec<f64>,
}

impl LogDetFunction {
    /// Builds from a dense symmetric kernel given in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != n²`, the matrix is asymmetric beyond
    /// `1e-9`, or any entry is non-finite. Positive semi-definiteness is
    /// *not* checked here (it is O(n³)); a non-PSD kernel will surface as
    /// a panic during evaluation when `I + L_S` fails to factorize. Use
    /// [`LogDetFunction::from_gram`] to construct a guaranteed-PSD kernel.
    pub fn new(n: usize, kernel: Vec<f64>) -> Self {
        assert_eq!(kernel.len(), n * n, "kernel must be n x n");
        for i in 0..n {
            for j in 0..n {
                let a = kernel[i * n + j];
                assert!(a.is_finite(), "kernel[{i}][{j}] must be finite");
                let b = kernel[j * n + i];
                assert!(
                    (a - b).abs() <= 1e-9,
                    "kernel must be symmetric at ({i},{j})"
                );
            }
        }
        Self { n, kernel }
    }

    /// Builds the Gram kernel `L[i][j] = ⟨x_i, x_j⟩` of feature vectors —
    /// PSD by construction.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have inconsistent dimensions.
    pub fn from_gram(features: &[Vec<f64>]) -> Self {
        let n = features.len();
        let dim = features.first().map_or(0, Vec::len);
        for (i, f) in features.iter().enumerate() {
            assert_eq!(f.len(), dim, "feature vector {i} has wrong dimension");
        }
        let mut kernel = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let dot: f64 = features[i]
                    .iter()
                    .zip(&features[j])
                    .map(|(a, b)| a * b)
                    .sum();
                kernel[i * n + j] = dot;
                kernel[j * n + i] = dot;
            }
        }
        Self { n, kernel }
    }

    /// Kernel entry `L[i][j]`.
    pub fn kernel(&self, i: ElementId, j: ElementId) -> f64 {
        self.kernel[i as usize * self.n + j as usize]
    }

    /// `log det(I + L_S)` via Cholesky of the |S|×|S| principal submatrix.
    fn log_det_plus_identity(&self, set: &[ElementId]) -> f64 {
        let k = set.len();
        if k == 0 {
            return 0.0;
        }
        // Build A = I + L_S (row-major, k x k), then factorize A = C·Cᵀ
        // in place; log det A = 2·Σ log C[i][i].
        let mut a = vec![0.0; k * k];
        for (i, &si) in set.iter().enumerate() {
            for (j, &sj) in set.iter().enumerate() {
                a[i * k + j] = self.kernel(si, sj) + if i == j { 1.0 } else { 0.0 };
            }
        }
        let mut log_det = 0.0;
        for i in 0..k {
            for j in 0..=i {
                let mut sum = a[i * k + j];
                for t in 0..j {
                    sum -= a[i * k + t] * a[j * k + t];
                }
                if i == j {
                    assert!(
                        sum > 0.0,
                        "I + L_S is not positive definite — the kernel is not PSD"
                    );
                    let c = sum.sqrt();
                    a[i * k + i] = c;
                    log_det += 2.0 * c.ln();
                } else {
                    a[i * k + j] = sum / a[j * k + j];
                }
            }
        }
        log_det
    }
}

impl SetFunction for LogDetFunction {
    fn ground_size(&self) -> usize {
        self.n
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        self.log_det_plus_identity(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::FunctionAudit;

    #[test]
    fn diagonal_kernel_decomposes_into_logs() {
        // L = diag(d): f(S) = Σ log(1 + d_i) — effectively modular.
        let n = 4;
        let mut kernel = vec![0.0; n * n];
        for (i, d) in [0.5, 1.0, 3.0, 0.0].into_iter().enumerate() {
            kernel[i * n + i] = d;
        }
        let f = LogDetFunction::new(n, kernel);
        assert_eq!(f.value(&[]), 0.0);
        assert!((f.value(&[0]) - 1.5_f64.ln()).abs() < 1e-12);
        assert!((f.value(&[0, 2]) - (1.5_f64.ln() + 4.0_f64.ln())).abs() < 1e-12);
        assert_eq!(f.value(&[3]), 0.0);
    }

    #[test]
    fn correlated_items_are_worth_less_together() {
        // Two nearly identical vectors and one orthogonal vector.
        let f = LogDetFunction::from_gram(&[vec![1.0, 0.0], vec![0.99, 0.01], vec![0.0, 1.0]]);
        let redundant = f.value(&[0, 1]);
        let diverse = f.value(&[0, 2]);
        assert!(
            diverse > redundant,
            "orthogonal pair {diverse} must beat near-duplicate pair {redundant}"
        );
    }

    #[test]
    fn gram_kernel_is_monotone_submodular() {
        let f = LogDetFunction::from_gram(&[
            vec![1.0, 0.2, 0.0],
            vec![0.3, 0.8, 0.1],
            vec![0.0, 0.5, 0.9],
            vec![0.4, 0.4, 0.4],
            vec![0.1, 0.0, 1.2],
        ]);
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }

    #[test]
    fn diagonal_kernel_is_monotone_submodular() {
        let n = 5;
        let mut kernel = vec![0.0; n * n];
        for i in 0..n {
            kernel[i * n + i] = 0.3 * (i as f64 + 1.0);
        }
        FunctionAudit::exhaustive(&LogDetFunction::new(n, kernel)).assert_monotone_submodular();
    }

    #[test]
    fn order_of_set_does_not_matter() {
        let f = LogDetFunction::from_gram(&[vec![1.0, 0.1], vec![0.2, 0.9], vec![0.5, 0.5]]);
        assert!((f.value(&[0, 1, 2]) - f.value(&[2, 0, 1])).abs() < 1e-12);
    }

    #[test]
    fn kernel_accessor() {
        let f = LogDetFunction::from_gram(&[vec![2.0], vec![1.0]]);
        assert_eq!(f.kernel(0, 0), 4.0);
        assert_eq!(f.kernel(0, 1), 2.0);
        assert_eq!(f.ground_size(), 2);
    }

    #[test]
    #[should_panic(expected = "n x n")]
    fn wrong_kernel_size_rejected() {
        let _ = LogDetFunction::new(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_kernel_rejected() {
        let _ = LogDetFunction::new(2, vec![1.0, 0.5, 0.2, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not PSD")]
    fn non_psd_kernel_panics_at_evaluation() {
        // L = [[0, 2], [2, 0]] → I + L_S has a negative eigenvalue on {0,1}.
        let f = LogDetFunction::new(2, vec![0.0, 2.0, 2.0, 0.0]);
        let _ = f.value(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn ragged_features_rejected() {
        let _ = LogDetFunction::from_gram(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
