//! Set-function substrate for max-sum diversification.
//!
//! The quality term `f(S)` of the paper's objective
//! `φ(S) = f(S) + λ·Σ d(u,v)` is a *normalized monotone submodular* set
//! function accessed through a value oracle. This crate provides:
//!
//! * [`SetFunction`] — the value-oracle trait (`f(S)` and the marginal
//!   `f_u(S) = f(S + u) − f(S)`),
//! * [`modular`] — weighted (modular/linear) functions, the setting of the
//!   original Gollapudi–Sharma problem and of the paper's dynamic-update
//!   section,
//! * [`coverage`] — weighted coverage functions,
//! * [`facility`] — facility-location functions,
//! * [`saturated`] — concave-over-modular functions (√, log, capped),
//! * [`mixture`] — non-negative linear combinations (submodularity is
//!   closed under these), and
//! * [`audit`] — empirical monotonicity/submodularity verification used by
//!   the property-test suites.
//!
//! # Oracle conventions
//!
//! Sets are slices of [`ElementId`]s with no duplicates; order is
//! irrelevant. All provided functions are normalized (`f(∅) = 0`),
//! monotone, and submodular — each module's tests audit those axioms via
//! [`audit`].

pub mod audit;
pub mod coverage;
pub mod facility;
pub mod incremental;
pub mod logdet;
pub mod mixture;
pub mod modular;
pub mod restricted;
pub mod saturated;
pub mod shared;

pub use coverage::CoverageFunction;
pub use facility::FacilityLocationFunction;
pub use incremental::{
    CoverageOracle, FacilityOracle, GenericOracle, IncrementalOracle, MixtureOracle, ModularOracle,
    OracleState, SyncMixtureOracle, ZeroOracle,
};
pub use logdet::LogDetFunction;
pub use mixture::MixtureFunction;
pub use modular::ModularFunction;
pub use restricted::RestrictedOracle;
pub use saturated::{ConcaveOverModular, ConcaveShape};
pub use shared::{SharedModularOracle, WeightOverlay};

/// Identifier of a ground-set element (shared with `msd-metric`).
pub type ElementId = u32;

/// A normalized set function `f : 2^U → ℝ≥0` accessed by value oracle.
///
/// Implementations provided by this crate are monotone and submodular;
/// the trait itself does not enforce those properties (the paper's
/// counterexample experiments intentionally use degenerate functions).
pub trait SetFunction {
    /// Ground-set size `|U|`.
    fn ground_size(&self) -> usize;

    /// `f(S)`. `set` contains distinct elements in arbitrary order.
    fn value(&self, set: &[ElementId]) -> f64;

    /// Marginal gain `f_u(S) = f(S + u) − f(S)`.
    ///
    /// The default computes two oracle values; implementations override it
    /// with O(1)/O(|S|) incremental formulas where possible.
    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        let mut with: Vec<ElementId> = Vec::with_capacity(set.len() + 1);
        with.extend_from_slice(set);
        with.push(u);
        self.value(&with) - self.value(set)
    }

    /// `f({u})` — the singleton value, used by several initializers.
    fn singleton(&self, u: ElementId) -> f64 {
        self.value(&[u])
    }

    /// Swap gain `f(S − v + u) − f(S)` for `v ∈ set`, `u ∉ set`.
    ///
    /// This is the quality component of the local-search and
    /// dynamic-update swap tests (Sections 5 and 6). The default evaluates
    /// the oracle twice; [`ModularFunction`] overrides it with the O(1)
    /// formula `w(u) − w(v)`.
    fn swap_gain(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> f64 {
        let mut swapped: Vec<ElementId> = Vec::with_capacity(set.len());
        swapped.extend(set.iter().copied().filter(|&x| x != v));
        swapped.push(u);
        self.value(&swapped) - self.value(set)
    }

    /// A stateful [`IncrementalOracle`] over the empty set.
    ///
    /// The default wraps the value oracle in a [`GenericOracle`] (exact
    /// marginals at `O(cost(f))` per read, plus lazy upper bounds). The
    /// structured functions of this crate override it with oracles whose
    /// marginal reads are O(1) and whose mutations are `O(touched)` — see
    /// [`incremental`] for the complexity table.
    fn incremental<'a>(&'a self) -> Box<dyn IncrementalOracle + 'a> {
        Box::new(GenericOracle::new(self))
    }

    /// [`Self::incremental`] pre-seeded with `set`.
    fn incremental_from<'a>(&'a self, set: &[ElementId]) -> Box<dyn IncrementalOracle + 'a> {
        let mut oracle = self.incremental();
        for &u in set {
            oracle.insert(u);
        }
        oracle
    }

    /// Thread-shareable variant of [`Self::incremental`] for the parallel
    /// candidate scans (`msd-core`'s `parallel` feature).
    ///
    /// Like [`Self::incremental`], the structured functions override this
    /// with their specialized oracles; anything else falls back to the
    /// [`GenericOracle`], whose exact marginal reads cost a full oracle
    /// evaluation per candidate. Note that a *by-reference* quality type
    /// (`F = &G`) takes the fallback — build problems with owned quality
    /// functions when using the parallel scans.
    fn incremental_sync<'a>(&'a self) -> Box<dyn IncrementalOracle + Send + Sync + 'a>
    where
        Self: Sync,
    {
        Box::new(GenericOracle::new(self))
    }
}

impl<F: SetFunction + ?Sized> SetFunction for &F {
    fn ground_size(&self) -> usize {
        (**self).ground_size()
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        (**self).value(set)
    }

    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        (**self).marginal(u, set)
    }

    fn singleton(&self, u: ElementId) -> f64 {
        (**self).singleton(u)
    }

    fn swap_gain(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> f64 {
        (**self).swap_gain(u, v, set)
    }

    fn incremental<'a>(&'a self) -> Box<dyn IncrementalOracle + 'a> {
        (**self).incremental()
    }

    // `incremental_sync` cannot forward here: proving `F: Sync` from
    // `&F: Sync` is beyond the trait solver, so a by-reference quality
    // (`F = &G`) falls back to the generic oracle on the parallel path.
    // Method-call autoderef means `problem.quality().incremental_sync()`
    // still dispatches on the owned `F`'s override in every normal case;
    // only problems *constructed with a reference as the quality type*
    // pay the fallback. Prefer owned qualities for `parallel`.
}

/// Shared-ownership quality: one corpus-wide function driving any number
/// of tenant sessions (the multi-tenant serving layer in `msd-core`)
/// without cloning its weight/coverage/similarity tables. Oracle
/// construction forwards to the inner function's specialized override, so
/// an `Arc<ModularFunction>` still gets the O(1) modular oracle — each
/// oracle instance keeps its *own* session-local mutable state (e.g.
/// [`ModularOracle`]'s copy-on-write weights), so per-tenant weight
/// perturbations never touch the shared base.
impl<F: SetFunction + ?Sized> SetFunction for std::sync::Arc<F> {
    fn ground_size(&self) -> usize {
        (**self).ground_size()
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        (**self).value(set)
    }

    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        (**self).marginal(u, set)
    }

    fn singleton(&self, u: ElementId) -> f64 {
        (**self).singleton(u)
    }

    fn swap_gain(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> f64 {
        (**self).swap_gain(u, v, set)
    }

    fn incremental<'a>(&'a self) -> Box<dyn IncrementalOracle + 'a> {
        (**self).incremental()
    }

    // As with `&F`, `incremental_sync` cannot forward (`Arc<F>: Sync`
    // does not let the solver conclude `F: Sync`); `Arc`-typed qualities
    // fall back to the generic oracle on the parallel path. The serving
    // layer borrows `&F` per tenant instead, which dispatches on the
    // owned function's override.
}

/// The identically-zero function.
///
/// With `f ≡ 0` the diversification objective degenerates to max-sum
/// *dispersion*; Corollary 1 of the paper derives the Ravi–Rosenkrantz–Tayi
/// greedy's 2-approximation exactly this way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroFunction {
    ground: usize,
}

impl ZeroFunction {
    /// Zero function over a ground set of size `n`.
    pub fn new(n: usize) -> Self {
        Self { ground: n }
    }
}

impl SetFunction for ZeroFunction {
    fn ground_size(&self) -> usize {
        self.ground
    }

    fn value(&self, _set: &[ElementId]) -> f64 {
        0.0
    }

    fn marginal(&self, _u: ElementId, _set: &[ElementId]) -> f64 {
        0.0
    }

    fn incremental<'a>(&'a self) -> Box<dyn IncrementalOracle + 'a> {
        Box::new(ZeroOracle::new(self))
    }

    fn incremental_sync<'a>(&'a self) -> Box<dyn IncrementalOracle + Send + Sync + 'a> {
        Box::new(ZeroOracle::new(self))
    }
}

/// A wrapper that counts value-oracle calls.
///
/// Submodular-maximization algorithms are conventionally measured in oracle
/// queries; the experiment harness reports these counts alongside wall
/// times.
#[derive(Debug)]
pub struct CountingOracle<F> {
    inner: F,
    value_calls: std::cell::Cell<u64>,
    marginal_calls: std::cell::Cell<u64>,
}

impl<F: SetFunction> CountingOracle<F> {
    /// Wraps a function, starting all counters at zero.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            value_calls: std::cell::Cell::new(0),
            marginal_calls: std::cell::Cell::new(0),
        }
    }

    /// Number of `value` calls so far.
    pub fn value_calls(&self) -> u64 {
        self.value_calls.get()
    }

    /// Number of `marginal` calls so far.
    pub fn marginal_calls(&self) -> u64 {
        self.marginal_calls.get()
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.value_calls.set(0);
        self.marginal_calls.set(0);
    }

    /// Unwraps the inner function.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: SetFunction> SetFunction for CountingOracle<F> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        self.value_calls.set(self.value_calls.get() + 1);
        self.inner.value(set)
    }

    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        self.marginal_calls.set(self.marginal_calls.get() + 1);
        self.inner.marginal(u, set)
    }

    fn swap_gain(&self, u: ElementId, v: ElementId, set: &[ElementId]) -> f64 {
        self.marginal_calls.set(self.marginal_calls.get() + 1);
        self.inner.swap_gain(u, v, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_function_is_identically_zero() {
        let f = ZeroFunction::new(10);
        assert_eq!(f.ground_size(), 10);
        assert_eq!(f.value(&[]), 0.0);
        assert_eq!(f.value(&[1, 2, 3]), 0.0);
        assert_eq!(f.marginal(5, &[1]), 0.0);
        assert_eq!(f.singleton(9), 0.0);
    }

    #[test]
    fn default_marginal_is_value_difference() {
        // Cardinality function via the default-marginal path.
        struct Card(usize);
        impl SetFunction for Card {
            fn ground_size(&self) -> usize {
                self.0
            }
            fn value(&self, set: &[ElementId]) -> f64 {
                set.len() as f64
            }
        }
        let f = Card(5);
        assert_eq!(f.marginal(4, &[0, 1]), 1.0);
        assert_eq!(f.singleton(0), 1.0);
    }

    #[test]
    fn counting_oracle_counts() {
        let f = CountingOracle::new(ZeroFunction::new(3));
        let _ = f.value(&[0]);
        let _ = f.value(&[0, 1]);
        let _ = f.marginal(2, &[0]);
        assert_eq!(f.value_calls(), 2);
        assert_eq!(f.marginal_calls(), 1);
        f.reset();
        assert_eq!(f.value_calls(), 0);
        assert_eq!(f.marginal_calls(), 0);
        assert_eq!(f.into_inner().ground_size(), 3);
    }

    #[test]
    fn reference_delegation() {
        let f = ZeroFunction::new(4);
        let r: &dyn SetFunction = &f;
        assert_eq!(r.ground_size(), 4);
        assert_eq!(r.value(&[0, 1]), 0.0);
        assert_eq!(r.marginal(0, &[]), 0.0);
        assert_eq!(r.singleton(1), 0.0);
    }
}
