//! Weighted coverage functions.
//!
//! `f(S) = Σ_{topic t covered by S} w(t)` where each element covers a set of
//! topics. Coverage is the canonical monotone submodular function and models
//! the paper's motivating database scenario: a query result "covers" the
//! facets it is relevant to, and additional results covering the same facets
//! give no extra quality.

use crate::{ElementId, SetFunction};

/// A weighted coverage function over a universe of `topics`.
///
/// Element `u` covers the topic set `covers[u]`; topic `t` has weight
/// `topic_weights[t] ≥ 0`.
#[derive(Debug, Clone)]
pub struct CoverageFunction {
    /// `covers[u]` = sorted topic ids covered by element `u`.
    covers: Vec<Vec<u32>>,
    topic_weights: Vec<f64>,
}

impl CoverageFunction {
    /// Builds a coverage function.
    ///
    /// # Panics
    ///
    /// Panics if a topic id is out of range or a weight is negative or
    /// non-finite.
    pub fn new(mut covers: Vec<Vec<u32>>, topic_weights: Vec<f64>) -> Self {
        let t = topic_weights.len() as u32;
        for (topic, &w) in topic_weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of topic {topic} must be finite and non-negative, got {w}"
            );
        }
        for (u, c) in covers.iter_mut().enumerate() {
            c.sort_unstable();
            c.dedup();
            if let Some(&max) = c.last() {
                assert!(max < t, "element {u} covers out-of-range topic {max}");
            }
        }
        Self {
            covers,
            topic_weights,
        }
    }

    /// Unweighted coverage (every topic has weight 1).
    pub fn unweighted(covers: Vec<Vec<u32>>, num_topics: usize) -> Self {
        Self::new(covers, vec![1.0; num_topics])
    }

    /// Number of topics in the universe.
    pub fn num_topics(&self) -> usize {
        self.topic_weights.len()
    }

    /// Topics covered by one element (sorted, deduplicated).
    pub fn covered_by(&self, u: ElementId) -> &[u32] {
        &self.covers[u as usize]
    }

    /// Weight of one topic.
    pub fn topic_weight(&self, t: u32) -> f64 {
        self.topic_weights[t as usize]
    }

    /// All topic weights.
    pub fn topic_weights(&self) -> &[f64] {
        &self.topic_weights
    }

    /// Marks the topics covered by `set` in `seen` and returns the total
    /// weight of newly-marked topics.
    fn cover_into(&self, set: &[ElementId], seen: &mut [bool]) -> f64 {
        let mut total = 0.0;
        for &u in set {
            for &t in &self.covers[u as usize] {
                let t = t as usize;
                if !seen[t] {
                    seen[t] = true;
                    total += self.topic_weights[t];
                }
            }
        }
        total
    }
}

impl SetFunction for CoverageFunction {
    fn ground_size(&self) -> usize {
        self.covers.len()
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        let mut seen = vec![false; self.topic_weights.len()];
        self.cover_into(set, &mut seen)
    }

    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        let mut seen = vec![false; self.topic_weights.len()];
        self.cover_into(set, &mut seen);
        self.covers[u as usize]
            .iter()
            .filter(|&&t| !seen[t as usize])
            .map(|&t| self.topic_weights[t as usize])
            .sum()
    }

    fn incremental<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + 'a> {
        Box::new(crate::CoverageOracle::new(self))
    }

    fn incremental_sync<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + Send + Sync + 'a> {
        Box::new(crate::CoverageOracle::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::FunctionAudit;

    fn sample() -> CoverageFunction {
        CoverageFunction::new(
            vec![vec![0, 1], vec![1, 2], vec![3], vec![0, 1, 2, 3]],
            vec![1.0, 2.0, 4.0, 8.0],
        )
    }

    #[test]
    fn value_counts_each_topic_once() {
        let f = sample();
        assert_eq!(f.value(&[]), 0.0);
        assert_eq!(f.value(&[0]), 3.0); // topics 0, 1
        assert_eq!(f.value(&[0, 1]), 7.0); // topics 0, 1, 2
        assert_eq!(f.value(&[0, 1, 2]), 15.0); // all topics
        assert_eq!(f.value(&[3]), 15.0); // element 3 covers everything
        assert_eq!(f.value(&[3, 0, 1, 2]), 15.0);
    }

    #[test]
    fn marginal_is_weight_of_new_topics() {
        let f = sample();
        assert_eq!(f.marginal(1, &[0]), 4.0); // only topic 2 is new
        assert_eq!(f.marginal(3, &[0, 1]), 8.0); // only topic 3 is new
        assert_eq!(f.marginal(0, &[3]), 0.0); // nothing new
    }

    #[test]
    fn duplicate_topics_in_cover_are_deduplicated() {
        let f = CoverageFunction::new(vec![vec![0, 0, 0]], vec![5.0]);
        assert_eq!(f.value(&[0]), 5.0);
        assert_eq!(f.covered_by(0), &[0]);
    }

    #[test]
    fn unweighted_counts_topics() {
        let f = CoverageFunction::unweighted(vec![vec![0], vec![1], vec![0, 1]], 2);
        assert_eq!(f.value(&[0, 1]), 2.0);
        assert_eq!(f.value(&[2]), 2.0);
        assert_eq!(f.num_topics(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range topic")]
    fn out_of_range_topic_rejected() {
        let _ = CoverageFunction::new(vec![vec![5]], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_topic_weight_rejected() {
        let _ = CoverageFunction::new(vec![vec![0]], vec![-1.0]);
    }

    #[test]
    fn axioms_hold() {
        FunctionAudit::exhaustive(&sample()).assert_monotone_submodular();
    }

    #[test]
    fn axioms_hold_on_disjoint_and_nested_covers() {
        let f = CoverageFunction::new(
            vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![3], vec![]],
            vec![1.0, 1.0, 1.0, 1.0],
        );
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }

    #[test]
    fn element_covering_nothing_has_zero_marginal() {
        let f = CoverageFunction::new(vec![vec![0], vec![]], vec![1.0]);
        assert_eq!(f.marginal(1, &[]), 0.0);
        assert_eq!(f.singleton(1), 0.0);
    }
}
