//! Modular (linear/weighted) set functions.
//!
//! A modular function is `f(S) = Σ_{u ∈ S} w(u)` for element weights
//! `w(u) ≥ 0`. This is the setting of the Gollapudi–Sharma diversification
//! problem (reduced to dispersion via `d'(u,v) = w(u)+w(v)+2λd(u,v)`) and
//! of the paper's dynamic-update section, where individual weights are
//! perturbed over time (perturbation types I and II).

use crate::{ElementId, SetFunction};

/// A weighted modular function `f(S) = Σ_{u∈S} w(u)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModularFunction {
    weights: Vec<f64>,
}

impl ModularFunction {
    /// Builds from per-element weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite — the paper assumes
    /// non-negative quality throughout (e.g. the weight-increase analysis
    /// of Theorem 3 uses "the original weight of s is non-negative").
    pub fn new(weights: Vec<f64>) -> Self {
        for (u, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of element {u} must be finite and non-negative, got {w}"
            );
        }
        Self { weights }
    }

    /// A uniform weight for every element.
    pub fn uniform(n: usize, w: f64) -> Self {
        Self::new(vec![w; n])
    }

    /// Weight of one element.
    pub fn weight(&self, u: ElementId) -> f64 {
        self.weights[u as usize]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Overwrites the weight of `u` (used by the dynamic-update driver).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite weights.
    pub fn set_weight(&mut self, u: ElementId, w: f64) {
        assert!(
            w.is_finite() && w >= 0.0,
            "weight of element {u} must be finite and non-negative, got {w}"
        );
        self.weights[u as usize] = w;
    }

    /// Total weight of the ground set (an upper bound on `f`).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

impl SetFunction for ModularFunction {
    fn ground_size(&self) -> usize {
        self.weights.len()
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        set.iter().map(|&u| self.weights[u as usize]).sum()
    }

    /// O(1): the marginal of a modular function is the weight itself,
    /// independent of `S`.
    fn marginal(&self, u: ElementId, _set: &[ElementId]) -> f64 {
        self.weights[u as usize]
    }

    fn singleton(&self, u: ElementId) -> f64 {
        self.weights[u as usize]
    }

    /// O(1): swapping `v` for `u` changes the value by `w(u) − w(v)`.
    fn swap_gain(&self, u: ElementId, v: ElementId, _set: &[ElementId]) -> f64 {
        self.weights[u as usize] - self.weights[v as usize]
    }

    fn incremental<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + 'a> {
        Box::new(crate::ModularOracle::new(self))
    }

    fn incremental_sync<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + Send + Sync + 'a> {
        Box::new(crate::ModularOracle::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::FunctionAudit;

    #[test]
    fn value_is_weight_sum() {
        let f = ModularFunction::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(f.value(&[]), 0.0);
        assert_eq!(f.value(&[0, 2]), 5.0);
        assert_eq!(f.value(&[0, 1, 2]), 7.0);
        assert_eq!(f.total_weight(), 7.0);
    }

    #[test]
    fn marginal_ignores_the_set() {
        let f = ModularFunction::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(f.marginal(1, &[]), 2.0);
        assert_eq!(f.marginal(1, &[0, 2]), 2.0);
        assert_eq!(f.singleton(2), 4.0);
    }

    #[test]
    fn uniform_weights() {
        let f = ModularFunction::uniform(4, 0.5);
        assert_eq!(f.value(&[0, 1, 2, 3]), 2.0);
        assert_eq!(f.weight(3), 0.5);
    }

    #[test]
    fn set_weight_updates() {
        let mut f = ModularFunction::uniform(3, 1.0);
        f.set_weight(1, 9.0);
        assert_eq!(f.weight(1), 9.0);
        assert_eq!(f.value(&[0, 1]), 10.0);
        assert_eq!(f.weights(), &[1.0, 9.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = ModularFunction::new(vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_update_rejected() {
        ModularFunction::uniform(2, 1.0).set_weight(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_rejected() {
        let _ = ModularFunction::new(vec![f64::NAN]);
    }

    #[test]
    fn axioms_hold() {
        let f = ModularFunction::new(vec![0.3, 0.0, 2.5, 1.1, 0.7]);
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }
}
