//! Non-negative mixtures of set functions.
//!
//! Monotone submodular functions are closed under non-negative linear
//! combinations; mixtures let applications blend, say, a modular relevance
//! score with a coverage term and a facility-location representativeness
//! term — the exact structure of the Lin–Bilmes summarization objectives
//! cited in Section 4 of the paper.

use crate::{ElementId, SetFunction};

/// `f(S) = Σ_i c_i · f_i(S)` with `c_i ≥ 0`.
///
/// Components are stored as `Send + Sync` trait objects so mixtures work
/// on the thread-parallel scans (`msd-core`'s `parallel` feature) exactly
/// like the other structured functions; every quality function in this
/// crate satisfies the bound.
pub struct MixtureFunction {
    components: Vec<(f64, Box<dyn SetFunction + Send + Sync>)>,
    ground: usize,
}

impl std::fmt::Debug for MixtureFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixtureFunction")
            .field("components", &self.components.len())
            .field("ground", &self.ground)
            .finish()
    }
}

impl MixtureFunction {
    /// Creates an empty mixture (the zero function) over `n` elements.
    pub fn new(n: usize) -> Self {
        Self {
            components: Vec::new(),
            ground: n,
        }
    }

    /// Adds a weighted component; returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `coefficient` is negative/non-finite or the component's
    /// ground size differs from the mixture's.
    #[must_use]
    pub fn with(
        mut self,
        coefficient: f64,
        component: impl SetFunction + Send + Sync + 'static,
    ) -> Self {
        assert!(
            coefficient.is_finite() && coefficient >= 0.0,
            "mixture coefficient must be finite and non-negative, got {coefficient}"
        );
        assert_eq!(
            component.ground_size(),
            self.ground,
            "component ground size mismatch"
        );
        self.components.push((coefficient, Box::new(component)));
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the mixture has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl SetFunction for MixtureFunction {
    fn ground_size(&self) -> usize {
        self.ground
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        self.components.iter().map(|(c, f)| c * f.value(set)).sum()
    }

    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        self.components
            .iter()
            .map(|(c, f)| c * f.marginal(u, set))
            .sum()
    }

    fn incremental<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + 'a> {
        Box::new(crate::incremental::MixtureOracle::from_parts(
            self.ground,
            self.components
                .iter()
                .map(|(c, f)| (*c, f.incremental()))
                .collect(),
        ))
    }

    fn incremental_sync<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + Send + Sync + 'a> {
        Box::new(crate::incremental::SyncMixtureOracle::from_parts(
            self.ground,
            self.components
                .iter()
                .map(|(c, f)| {
                    let part: Box<dyn crate::IncrementalOracle + Send + Sync + 'a> =
                        f.incremental_sync();
                    (*c, part)
                })
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::FunctionAudit;
    use crate::{CoverageFunction, ModularFunction};

    fn sample() -> MixtureFunction {
        MixtureFunction::new(3)
            .with(2.0, ModularFunction::new(vec![1.0, 0.5, 0.0]))
            .with(
                1.0,
                CoverageFunction::new(vec![vec![0], vec![0, 1], vec![1]], vec![3.0, 5.0]),
            )
    }

    #[test]
    fn value_is_weighted_sum_of_components() {
        let f = sample();
        // f({0}) = 2·1.0 + 1·3.0 = 5
        assert_eq!(f.value(&[0]), 5.0);
        // f({0,1}) = 2·1.5 + 1·8.0 = 11
        assert_eq!(f.value(&[0, 1]), 11.0);
        assert_eq!(f.value(&[]), 0.0);
    }

    #[test]
    fn marginal_is_weighted_sum_of_marginals() {
        let f = sample();
        // marginal(2, {0}) = 2·0 + 1·5 = 5 (topic 1 is new)
        assert_eq!(f.marginal(2, &[0]), 5.0);
    }

    #[test]
    fn empty_mixture_is_zero() {
        let f = MixtureFunction::new(4);
        assert!(f.is_empty());
        assert_eq!(f.value(&[0, 1, 2]), 0.0);
        assert_eq!(f.marginal(3, &[]), 0.0);
    }

    #[test]
    fn mixture_of_monotone_submodular_is_monotone_submodular() {
        FunctionAudit::exhaustive(&sample()).assert_monotone_submodular();
    }

    #[test]
    fn zero_coefficient_component_is_inert() {
        let f = MixtureFunction::new(2)
            .with(0.0, ModularFunction::new(vec![100.0, 100.0]))
            .with(1.0, ModularFunction::new(vec![1.0, 2.0]));
        assert_eq!(f.value(&[0, 1]), 3.0);
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ground size mismatch")]
    fn ground_size_mismatch_rejected() {
        let _ = MixtureFunction::new(3).with(1.0, ModularFunction::new(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coefficient_rejected() {
        let _ = MixtureFunction::new(1).with(-1.0, ModularFunction::new(vec![1.0]));
    }
}
