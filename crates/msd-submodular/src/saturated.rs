//! Concave-over-modular functions.
//!
//! For a non-decreasing concave `g : ℝ≥0 → ℝ≥0` with `g(0) = 0` and
//! non-negative weights `w`, the composition `f(S) = g(Σ_{u∈S} w(u))` is
//! normalized, monotone and submodular. These "saturating" functions model
//! the paper's motivating observation that *"users begin to gradually lose
//! interest the more results they have to consider … additional query
//! results can improve the overall quality but at a decreasing rate"*
//! (Section 1). They are the simplest strictly-submodular quality functions
//! and exercise the gap between the paper's Greedy B (which handles them,
//! Theorem 1) and the Gollapudi–Sharma reduction (which does not).

use crate::{ElementId, SetFunction};

/// The concave shape applied on top of the modular sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConcaveShape {
    /// `g(x) = √x`.
    Sqrt,
    /// `g(x) = ln(1 + x)`.
    Log1p,
    /// `g(x) = min(x, cap)` — fully saturates at `cap ≥ 0`.
    Capped {
        /// Saturation threshold.
        cap: f64,
    },
    /// `g(x) = x^exponent` for `exponent ∈ (0, 1]`.
    Power {
        /// Exponent in `(0, 1]`; `1.0` degenerates to modular.
        exponent: f64,
    },
}

impl ConcaveShape {
    /// Evaluates the shape at `x ≥ 0`.
    pub fn apply(self, x: f64) -> f64 {
        debug_assert!(x >= 0.0);
        match self {
            ConcaveShape::Sqrt => x.sqrt(),
            ConcaveShape::Log1p => x.ln_1p(),
            ConcaveShape::Capped { cap } => x.min(cap),
            ConcaveShape::Power { exponent } => x.powf(exponent),
        }
    }

    fn validate(self) {
        match self {
            ConcaveShape::Capped { cap } => {
                assert!(
                    cap.is_finite() && cap >= 0.0,
                    "cap must be finite and >= 0, got {cap}"
                );
            }
            ConcaveShape::Power { exponent } => {
                assert!(
                    exponent > 0.0 && exponent <= 1.0,
                    "exponent must lie in (0, 1], got {exponent}"
                );
            }
            ConcaveShape::Sqrt | ConcaveShape::Log1p => {}
        }
    }
}

/// `f(S) = g(Σ_{u∈S} w(u))` for a concave shape `g`.
#[derive(Debug, Clone)]
pub struct ConcaveOverModular {
    weights: Vec<f64>,
    shape: ConcaveShape,
}

impl ConcaveOverModular {
    /// Builds from weights and a shape.
    ///
    /// # Panics
    ///
    /// Panics on negative/non-finite weights or invalid shape parameters.
    pub fn new(weights: Vec<f64>, shape: ConcaveShape) -> Self {
        shape.validate();
        for (u, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of element {u} must be finite and non-negative, got {w}"
            );
        }
        Self { weights, shape }
    }

    /// Convenience: `√(Σ w)` over uniform unit weights — i.e. `√|S|`.
    pub fn sqrt_cardinality(n: usize) -> Self {
        Self::new(vec![1.0; n], ConcaveShape::Sqrt)
    }

    /// The shape in use.
    pub fn shape(&self) -> ConcaveShape {
        self.shape
    }

    /// Per-element weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn weight_sum(&self, set: &[ElementId]) -> f64 {
        set.iter().map(|&u| self.weights[u as usize]).sum()
    }
}

impl SetFunction for ConcaveOverModular {
    fn ground_size(&self) -> usize {
        self.weights.len()
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        self.shape.apply(self.weight_sum(set))
    }

    /// O(|S|): one pass to compute the modular sum, then two shape
    /// evaluations.
    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        let base = self.weight_sum(set);
        self.shape.apply(base + self.weights[u as usize]) - self.shape.apply(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::FunctionAudit;

    #[test]
    fn sqrt_cardinality_values() {
        let f = ConcaveOverModular::sqrt_cardinality(5);
        assert_eq!(f.value(&[]), 0.0);
        assert_eq!(f.value(&[0]), 1.0);
        assert_eq!(f.value(&[0, 1, 2, 3]), 2.0);
        assert!((f.marginal(4, &[0, 1, 2]) - (2.0 - 3f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn all_shapes_are_monotone_submodular() {
        let weights = vec![0.5, 1.5, 0.0, 2.0, 0.7];
        for shape in [
            ConcaveShape::Sqrt,
            ConcaveShape::Log1p,
            ConcaveShape::Capped { cap: 2.0 },
            ConcaveShape::Power { exponent: 0.3 },
            ConcaveShape::Power { exponent: 1.0 },
        ] {
            let f = ConcaveOverModular::new(weights.clone(), shape);
            FunctionAudit::exhaustive(&f).assert_monotone_submodular();
        }
    }

    #[test]
    fn capped_shape_saturates() {
        let f = ConcaveOverModular::new(vec![1.0; 5], ConcaveShape::Capped { cap: 2.5 });
        assert_eq!(f.value(&[0, 1]), 2.0);
        assert_eq!(f.value(&[0, 1, 2]), 2.5);
        assert_eq!(f.value(&[0, 1, 2, 3, 4]), 2.5);
        assert_eq!(f.marginal(3, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn power_one_is_modular() {
        let f = ConcaveOverModular::new(vec![1.0, 2.0, 3.0], ConcaveShape::Power { exponent: 1.0 });
        assert_eq!(f.value(&[0, 2]), 4.0);
        assert_eq!(f.marginal(1, &[0, 2]), 2.0);
    }

    #[test]
    fn log1p_values() {
        let f = ConcaveOverModular::new(vec![1.0, 1.0], ConcaveShape::Log1p);
        assert!((f.value(&[0]) - 2f64.ln()).abs() < 1e-12);
        assert!((f.value(&[0, 1]) - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exponent must lie in (0, 1]")]
    fn superlinear_power_rejected() {
        let _ = ConcaveOverModular::new(vec![1.0], ConcaveShape::Power { exponent: 1.5 });
    }

    #[test]
    #[should_panic(expected = "cap must be finite")]
    fn negative_cap_rejected() {
        let _ = ConcaveOverModular::new(vec![1.0], ConcaveShape::Capped { cap: -1.0 });
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = ConcaveOverModular::new(vec![-1.0], ConcaveShape::Sqrt);
    }

    #[test]
    fn accessors() {
        let f = ConcaveOverModular::new(vec![1.0, 2.0], ConcaveShape::Sqrt);
        assert_eq!(f.weights(), &[1.0, 2.0]);
        assert_eq!(f.shape(), ConcaveShape::Sqrt);
    }
}
