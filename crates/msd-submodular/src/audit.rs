//! Empirical verification of set-function axioms.
//!
//! [`FunctionAudit::exhaustive`] checks normalization, monotonicity and
//! submodularity over *all* subsets of the ground set (so it is only usable
//! for `|U| ≲ 15`); [`FunctionAudit::sampled`] checks random chains for
//! larger ground sets. Both are used throughout the workspace's tests to
//! certify that quality functions fed into Theorem 1 / Theorem 2 actually
//! satisfy the theorems' hypotheses.

use crate::{ElementId, SetFunction};

/// Floating tolerance for axiom comparisons.
pub const TOLERANCE: f64 = 1e-9;

/// One violated axiom with a witness.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionViolation {
    /// `f(∅) != 0`.
    NotNormalized { value: f64 },
    /// `f(S) > f(T)` for some `S ⊆ T`.
    NotMonotone {
        subset: Vec<ElementId>,
        superset: Vec<ElementId>,
        gap: f64,
    },
    /// `f_u(S) < f_u(T)` for some `S ⊆ T`, `u ∉ T` (diminishing returns
    /// fails).
    NotSubmodular {
        subset: Vec<ElementId>,
        superset: Vec<ElementId>,
        u: ElementId,
        gap: f64,
    },
    /// `marginal(u, S)` disagrees with `f(S+u) − f(S)`.
    InconsistentMarginal {
        set: Vec<ElementId>,
        u: ElementId,
        reported: f64,
        actual: f64,
    },
    /// `swap_gain(u, v, S)` disagrees with `f(S−v+u) − f(S)`.
    InconsistentSwapGain {
        set: Vec<ElementId>,
        u: ElementId,
        v: ElementId,
        reported: f64,
        actual: f64,
    },
}

/// Audit report for a set function.
#[derive(Debug, Clone)]
pub struct FunctionAudit {
    violations: Vec<FunctionViolation>,
}

impl FunctionAudit {
    /// Exhaustive audit over all `2^n` subsets.
    ///
    /// # Panics
    ///
    /// Panics if the ground set has more than 20 elements (the audit would
    /// not terminate in reasonable time).
    pub fn exhaustive<F: SetFunction>(f: &F) -> Self {
        let n = f.ground_size();
        assert!(n <= 20, "exhaustive audit limited to 20 elements, got {n}");
        let mut violations = Vec::new();

        let empty = f.value(&[]);
        if empty.abs() > TOLERANCE {
            violations.push(FunctionViolation::NotNormalized { value: empty });
        }

        let subsets: Vec<Vec<ElementId>> = (0u32..(1 << n))
            .map(|mask| {
                (0..n as ElementId)
                    .filter(|&i| mask >> i & 1 == 1)
                    .collect()
            })
            .collect();
        let values: Vec<f64> = subsets.iter().map(|s| f.value(s)).collect();

        for mask in 0u32..(1 << n) {
            let s = &subsets[mask as usize];
            let fs = values[mask as usize];
            for u in 0..n as ElementId {
                if mask >> u & 1 == 1 {
                    continue;
                }
                let with = mask | (1 << u);
                let actual = values[with as usize] - fs;

                // Marginal consistency.
                let reported = f.marginal(u, s);
                if (reported - actual).abs() > TOLERANCE {
                    violations.push(FunctionViolation::InconsistentMarginal {
                        set: s.clone(),
                        u,
                        reported,
                        actual,
                    });
                }

                // Monotonicity: marginal must be >= 0.
                if actual < -TOLERANCE {
                    violations.push(FunctionViolation::NotMonotone {
                        subset: s.clone(),
                        superset: subsets[with as usize].clone(),
                        gap: -actual,
                    });
                }

                // Swap-gain consistency for every v ∈ S.
                for v in 0..n as ElementId {
                    if mask >> v & 1 == 0 {
                        continue;
                    }
                    let swapped = (mask & !(1 << v)) | (1 << u);
                    let actual = values[swapped as usize] - fs;
                    let reported = f.swap_gain(u, v, s);
                    if (reported - actual).abs() > TOLERANCE {
                        violations.push(FunctionViolation::InconsistentSwapGain {
                            set: s.clone(),
                            u,
                            v,
                            reported,
                            actual,
                        });
                    }
                }
            }
        }

        // Submodularity: for S ⊆ T and u ∉ T, f_u(S) ≥ f_u(T).
        // Iterate over all pairs (S, T) with S ⊆ T by enumerating T and its
        // submasks.
        for t_mask in 0u32..(1 << n) {
            let mut s_mask = t_mask;
            loop {
                // s_mask ⊆ t_mask
                for u in 0..n as ElementId {
                    if t_mask >> u & 1 == 1 {
                        continue;
                    }
                    let gain_s = values[(s_mask | 1 << u) as usize] - values[s_mask as usize];
                    let gain_t = values[(t_mask | 1 << u) as usize] - values[t_mask as usize];
                    if gain_t - gain_s > TOLERANCE {
                        violations.push(FunctionViolation::NotSubmodular {
                            subset: subsets[s_mask as usize].clone(),
                            superset: subsets[t_mask as usize].clone(),
                            u,
                            gap: gain_t - gain_s,
                        });
                    }
                }
                if s_mask == 0 {
                    break;
                }
                s_mask = (s_mask - 1) & t_mask;
            }
        }

        Self { violations }
    }

    /// Sampled audit: checks `samples` random (S ⊆ T, u) triples using the
    /// caller-supplied picker (`pick(k)` returns a value in `0..k`).
    pub fn sampled<F: SetFunction>(
        f: &F,
        samples: usize,
        mut pick: impl FnMut(usize) -> usize,
    ) -> Self {
        let n = f.ground_size();
        let mut violations = Vec::new();
        let empty = f.value(&[]);
        if empty.abs() > TOLERANCE {
            violations.push(FunctionViolation::NotNormalized { value: empty });
        }
        if n == 0 {
            return Self { violations };
        }
        for _ in 0..samples {
            // Random T, random S ⊆ T, random u ∉ T.
            let mut t: Vec<ElementId> = Vec::new();
            let mut outside: Vec<ElementId> = Vec::new();
            for e in 0..n as ElementId {
                if pick(3) != 0 {
                    // ~2/3 chance in T
                    t.push(e);
                } else {
                    outside.push(e);
                }
            }
            if outside.is_empty() {
                continue;
            }
            let u = outside[pick(outside.len())];
            let s: Vec<ElementId> = t.iter().copied().filter(|_| pick(2) == 0).collect();

            let ft = f.value(&t);
            let fs = f.value(&s);
            let gain_t = f.marginal(u, &t);
            let gain_s = f.marginal(u, &s);

            if fs - ft > TOLERANCE {
                violations.push(FunctionViolation::NotMonotone {
                    subset: s.clone(),
                    superset: t.clone(),
                    gap: fs - ft,
                });
            }
            if gain_t - gain_s > TOLERANCE {
                violations.push(FunctionViolation::NotSubmodular {
                    subset: s,
                    superset: t,
                    u,
                    gap: gain_t - gain_s,
                });
            }
        }
        Self { violations }
    }

    /// `true` if no axiom was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found.
    pub fn violations(&self) -> &[FunctionViolation] {
        &self.violations
    }

    /// Panics with a readable report when an axiom fails. For tests.
    #[track_caller]
    pub fn assert_monotone_submodular(&self) {
        assert!(
            self.is_clean(),
            "set-function axioms violated ({} violations); first: {:?}",
            self.violations.len(),
            self.violations.first()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Card(usize);
    impl SetFunction for Card {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn value(&self, set: &[ElementId]) -> f64 {
            set.len() as f64
        }
    }

    #[test]
    fn cardinality_is_monotone_submodular() {
        FunctionAudit::exhaustive(&Card(6)).assert_monotone_submodular();
    }

    /// `f(S) = |S|²` is supermodular (strictly increasing marginals).
    struct Square(usize);
    impl SetFunction for Square {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn value(&self, set: &[ElementId]) -> f64 {
            (set.len() * set.len()) as f64
        }
    }

    #[test]
    fn supermodular_function_is_flagged() {
        let audit = FunctionAudit::exhaustive(&Square(4));
        assert!(!audit.is_clean());
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, FunctionViolation::NotSubmodular { .. })));
    }

    /// A non-monotone function: value decreases when element 0 is present.
    struct Dip(usize);
    impl SetFunction for Dip {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn value(&self, set: &[ElementId]) -> f64 {
            set.len() as f64 - if set.contains(&0) { 1.5 } else { 0.0 }
        }
    }

    #[test]
    fn non_monotone_function_is_flagged() {
        let audit = FunctionAudit::exhaustive(&Dip(4));
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, FunctionViolation::NotMonotone { .. })));
    }

    /// Not normalized: f(∅) = 1.
    struct Offset(usize);
    impl SetFunction for Offset {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn value(&self, set: &[ElementId]) -> f64 {
            1.0 + set.len() as f64
        }
    }

    #[test]
    fn unnormalized_function_is_flagged() {
        let audit = FunctionAudit::exhaustive(&Offset(3));
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, FunctionViolation::NotNormalized { .. })));
    }

    /// Marginal oracle that lies.
    struct LyingMarginal(usize);
    impl SetFunction for LyingMarginal {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn value(&self, set: &[ElementId]) -> f64 {
            set.len() as f64
        }
        fn marginal(&self, _u: ElementId, _set: &[ElementId]) -> f64 {
            42.0
        }
    }

    #[test]
    fn inconsistent_marginal_is_flagged() {
        let audit = FunctionAudit::exhaustive(&LyingMarginal(3));
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, FunctionViolation::InconsistentMarginal { .. })));
    }

    #[test]
    fn sampled_audit_flags_supermodular() {
        let mut i = 0u64;
        let audit = FunctionAudit::sampled(&Square(10), 200, |k| {
            i = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((i >> 33) % k as u64) as usize
        });
        assert!(!audit.is_clean());
    }

    #[test]
    fn sampled_audit_passes_cardinality() {
        let mut i = 7u64;
        let audit = FunctionAudit::sampled(&Card(12), 200, |k| {
            i = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((i >> 33) % k as u64) as usize
        });
        audit.assert_monotone_submodular();
    }

    #[test]
    fn sampled_audit_on_empty_ground_set() {
        let audit = FunctionAudit::sampled(&Card(0), 10, |k| k.saturating_sub(1));
        assert!(audit.is_clean());
    }

    #[test]
    #[should_panic(expected = "limited to 20")]
    fn exhaustive_audit_rejects_large_ground_sets() {
        let _ = FunctionAudit::exhaustive(&Card(21));
    }
}
