//! Facility-location functions.
//!
//! `f(S) = Σ_{client c} w(c) · max_{u ∈ S} sim(c, u)` — every client is
//! served by its most similar selected element. This is the
//! "representativeness" term of the Lin–Bilmes document-summarization
//! objectives cited by the paper (Section 4), and a standard monotone
//! submodular function.

use crate::{ElementId, SetFunction};

/// A facility-location function.
///
/// `sim[c][u] ≥ 0` is the benefit client `c` receives from element `u`;
/// clients receive the maximum benefit over the selected set (0 for the
/// empty set, so the function is normalized).
#[derive(Debug, Clone)]
pub struct FacilityLocationFunction {
    /// `sim[c]` = row of similarities from client `c` to every element.
    sim: Vec<Vec<f64>>,
    client_weights: Vec<f64>,
    ground: usize,
}

impl FacilityLocationFunction {
    /// Builds from a client-by-element similarity matrix and client weights.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths, weights mismatch the number
    /// of clients, or any entry is negative or non-finite.
    pub fn new(sim: Vec<Vec<f64>>, client_weights: Vec<f64>) -> Self {
        assert_eq!(
            sim.len(),
            client_weights.len(),
            "one weight per client required"
        );
        let ground = sim.first().map_or(0, Vec::len);
        for (c, row) in sim.iter().enumerate() {
            assert_eq!(row.len(), ground, "similarity row {c} has wrong length");
            for (u, &s) in row.iter().enumerate() {
                assert!(
                    s.is_finite() && s >= 0.0,
                    "similarity sim[{c}][{u}] must be finite and non-negative, got {s}"
                );
            }
        }
        for (c, &w) in client_weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight of client {c} must be finite and non-negative, got {w}"
            );
        }
        Self {
            sim,
            client_weights,
            ground,
        }
    }

    /// Self-representation variant: the clients are the ground set itself
    /// with unit weights (`sim` square). Common in summarization, where
    /// `f(S)` measures how well `S` represents the corpus.
    pub fn self_representing(sim: Vec<Vec<f64>>) -> Self {
        let n = sim.len();
        Self::new(sim, vec![1.0; n])
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.client_weights.len()
    }

    /// Similarity row of one client (indexed by element).
    pub fn sim_row(&self, client: usize) -> &[f64] {
        &self.sim[client]
    }

    /// Weight of one client.
    pub fn client_weight(&self, client: usize) -> f64 {
        self.client_weights[client]
    }
}

impl SetFunction for FacilityLocationFunction {
    fn ground_size(&self) -> usize {
        self.ground
    }

    fn value(&self, set: &[ElementId]) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        self.sim
            .iter()
            .zip(&self.client_weights)
            .map(|(row, &w)| {
                let best = set.iter().map(|&u| row[u as usize]).fold(0.0_f64, f64::max);
                w * best
            })
            .sum()
    }

    fn marginal(&self, u: ElementId, set: &[ElementId]) -> f64 {
        self.sim
            .iter()
            .zip(&self.client_weights)
            .map(|(row, &w)| {
                let current = set.iter().map(|&v| row[v as usize]).fold(0.0_f64, f64::max);
                w * (row[u as usize] - current).max(0.0)
            })
            .sum()
    }

    fn incremental<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + 'a> {
        Box::new(crate::FacilityOracle::new(self))
    }

    fn incremental_sync<'a>(&'a self) -> Box<dyn crate::IncrementalOracle + Send + Sync + 'a> {
        Box::new(crate::FacilityOracle::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::FunctionAudit;

    fn sample() -> FacilityLocationFunction {
        // 3 clients, 3 elements.
        FacilityLocationFunction::new(
            vec![
                vec![1.0, 0.2, 0.0],
                vec![0.1, 0.9, 0.3],
                vec![0.0, 0.4, 0.8],
            ],
            vec![1.0, 2.0, 1.0],
        )
    }

    #[test]
    fn value_takes_best_representative_per_client() {
        let f = sample();
        assert_eq!(f.value(&[]), 0.0);
        // Only element 0: clients get 1.0, 0.1, 0.0 weighted 1,2,1 → 1.2
        assert!((f.value(&[0]) - 1.2).abs() < 1e-12);
        // Elements 0 and 2: clients get max(1.0,0.0), max(0.1,0.3), max(0.0,0.8)
        //   → 1.0 + 2·0.3 + 0.8 = 2.4
        assert!((f.value(&[0, 2]) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn marginal_counts_only_improvements() {
        let f = sample();
        // Adding 1 to {0}: client0 max stays 1.0; client1 improves 0.1→0.9
        // (+2·0.8); client2 improves 0→0.4 (+0.4). Total 2.0.
        assert!((f.marginal(1, &[0]) - 2.0).abs() < 1e-12);
        // Adding 0 to {0} is not meaningful, but adding an element that
        // improves nothing gives zero:
        let g = FacilityLocationFunction::new(vec![vec![1.0, 0.5]], vec![1.0]);
        assert_eq!(g.marginal(1, &[0]), 0.0);
    }

    #[test]
    fn self_representing_square_matrix() {
        let f = FacilityLocationFunction::self_representing(vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
        assert_eq!(f.num_clients(), 2);
        assert_eq!(f.ground_size(), 2);
        assert_eq!(f.value(&[0]), 1.5);
        assert_eq!(f.value(&[0, 1]), 2.0);
    }

    #[test]
    fn axioms_hold() {
        FunctionAudit::exhaustive(&sample()).assert_monotone_submodular();
    }

    #[test]
    fn axioms_hold_on_degenerate_rows() {
        let f = FacilityLocationFunction::new(
            vec![vec![0.0, 0.0, 0.0], vec![3.0, 3.0, 3.0]],
            vec![1.0, 1.0],
        );
        FunctionAudit::exhaustive(&f).assert_monotone_submodular();
    }

    #[test]
    #[should_panic(expected = "one weight per client")]
    fn weight_count_mismatch_rejected() {
        let _ = FacilityLocationFunction::new(vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn ragged_rows_rejected() {
        let _ = FacilityLocationFunction::new(vec![vec![1.0, 2.0], vec![1.0]], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_similarity_rejected() {
        let _ = FacilityLocationFunction::new(vec![vec![-0.1]], vec![1.0]);
    }

    #[test]
    fn empty_function() {
        let f = FacilityLocationFunction::new(vec![], vec![]);
        assert_eq!(f.ground_size(), 0);
        assert_eq!(f.value(&[]), 0.0);
    }
}
