//! Multi-tenant query serving over one shared corpus.
//!
//! The paper frames max-sum diversification as a *query-time* problem:
//! many users issue queries with different `p`, `λ` and quality `f` over
//! one corpus. Running a [`DynamicSession`] per user used to cost a full
//! metric clone each (`O(n²)` for a dense matrix). [`ServingFrontend`]
//! removes that: every tenant session reads one immutable `Arc<M>` base
//! metric through a private copy-on-write [`OverlayMetric`], so a
//! tenant's `set_distance` perturbations land in its overlay — never the
//! shared base — and resident memory is `O(n²) + k·O(Δ)` for `k` tenants
//! with `Δ` perturbed pairs each, instead of `k·O(n²)`. Weight
//! perturbations repair the tenant's own incremental oracle (session
//! state by construction), so quality state never crosses tenants
//! either.
//!
//! The frontend consumes a **tagged request stream**
//! ([`ServingRequest`]): perturbations are queued per tenant and
//! coalesced into a single validated batch application
//! ([`DynamicSession::try_apply_batch`]) when that tenant's next query
//! arrives — the batch path scans at most once over the union scope,
//! which is where the perturb→query throughput comes from.
//!
//! # Fault tolerance and admission control
//!
//! The frontend is an *ingestion boundary*: request content is
//! untrusted, so no submitted perturbation can panic it. Malformed
//! batches (NaN distances, out-of-range ids, availability violations)
//! are rejected whole at flush time — the tenant's session rolls back
//! bit-for-bit and the query answers from the last good state, carrying
//! the typed error in [`QueryResponse::rejected`]. An optional
//! [`AdmissionPolicy`] adds backpressure ([`SubmitError::QueueFull`]
//! from [`ServingFrontend::try_submit`] when a tenant's queue is at
//! depth), burst-spreading (each query flushes at most
//! `max_flush_per_query` entries, the lag reported as
//! [`TenantStats::staleness`]), and quarantine: a tenant whose flushes
//! keep failing is isolated — queue dropped, submissions refused,
//! queries still served from its last good checkpoint — without
//! perturbing any other tenant, and re-opened via
//! [`ServingFrontend::recover`].
//!
//! ```
//! use std::sync::Arc;
//! use msd_core::{ServingFrontend, ServingRequest, SessionPerturbation};
//! use msd_metric::{DistanceMatrix, Metric};
//! use msd_submodular::ModularFunction;
//!
//! let base = Arc::new(DistanceMatrix::from_fn(8, |u, v| {
//!     1.0 + f64::from((u + v) % 4) * 0.25
//! }));
//! let quality = ModularFunction::new(vec![0.9, 0.3, 0.8, 0.2, 0.7, 0.1, 0.6, 0.4]);
//!
//! let mut frontend = ServingFrontend::new(Arc::clone(&base));
//! let alice = frontend.add_tenant(&quality, 0.3, &[0, 2, 4]);
//! let bob = frontend.add_tenant(&quality, 1.5, &[1, 3, 5]);
//!
//! let responses = frontend.process([
//!     ServingRequest::Perturb {
//!         tenant: alice,
//!         perturbation: SessionPerturbation::SetDistance { u: 0, v: 5, value: 1.9 },
//!     },
//!     ServingRequest::Query { tenant: alice },
//!     ServingRequest::Query { tenant: bob },
//! ]);
//! assert_eq!(responses.len(), 2);
//! assert_eq!(responses[0].flushed, 1); // alice's pending batch coalesced
//! // The shared base is untouched by alice's perturbation.
//! assert_eq!(base.distance(0, 5), 1.0 + 0.25);
//! ```
//!
//! The fault path, end to end — a rejected batch rolls back whole, a
//! repeat poisoner is quarantined, recovery restores service:
//!
//! ```
//! use std::sync::Arc;
//! use msd_core::{AdmissionPolicy, ServingFrontend, SessionPerturbation, SubmitError};
//! use msd_metric::DistanceMatrix;
//! use msd_submodular::ModularFunction;
//!
//! let base = Arc::new(DistanceMatrix::from_fn(8, |u, v| {
//!     1.0 + f64::from((u + v) % 4) * 0.25
//! }));
//! let quality = ModularFunction::new(vec![0.9, 0.3, 0.8, 0.2, 0.7, 0.1, 0.6, 0.4]);
//!
//! let mut frontend = ServingFrontend::new(Arc::clone(&base));
//! let mallory = frontend.add_tenant(&quality, 0.3, &[0, 2, 4]);
//! let mut frontend = frontend.with_admission_policy(AdmissionPolicy {
//!     max_flush_per_query: Some(16),
//!     max_pending: Some(64),
//!     quarantine_after: Some(2),
//!     checkpoint_every: 1,
//! });
//!
//! let poison = SessionPerturbation::SetDistance { u: 0, v: 1, value: f64::NAN };
//! let baseline = frontend.query(mallory).solution;
//! for _ in 0..2 {
//!     frontend.try_submit(mallory, poison).unwrap();
//!     let response = frontend.query(mallory);
//!     // Rejected whole: the answer is the last good state, with the
//!     // typed error attached.
//!     assert!(response.rejected.is_some());
//!     assert_eq!(response.solution, baseline);
//! }
//! // Two consecutive rejected flushes: quarantined, submissions refused.
//! assert!(frontend.is_quarantined(mallory));
//! assert!(matches!(
//!     frontend.try_submit(mallory, poison),
//!     Err(SubmitError::Quarantined { .. })
//! ));
//! // Recovery re-opens the tenant from its last good checkpoint.
//! assert!(frontend.recover(mallory));
//! let ok = SessionPerturbation::SetDistance { u: 0, v: 1, value: 1.9 };
//! frontend.try_submit(mallory, ok).unwrap();
//! assert!(frontend.query(mallory).rejected.is_none());
//! ```

// Ingestion boundary: faults arrive here as values, never as panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::Arc;

use msd_metric::{Metric, OverlayMetric};
use msd_submodular::{IncrementalOracle, SetFunction};

use crate::session::{
    BatchReport, DynamicSession, SessionCheckpoint, SessionError, SessionPerturbation,
    SyncDynamicSession,
};
use crate::ElementId;

/// Index of a tenant session inside a [`ServingFrontend`] (assignment
/// order of [`ServingFrontend::add_tenant`]).
pub type TenantId = usize;

/// One tagged request in a serving stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingRequest {
    /// Queue a perturbation for `tenant`; it is repaired lazily, as part
    /// of the coalesced batch flushed by that tenant's next query.
    Perturb {
        /// Target session.
        tenant: TenantId,
        /// The perturbation to queue.
        perturbation: SessionPerturbation,
    },
    /// Flush `tenant`'s queued perturbations (one `apply_batch`),
    /// stabilize, and read the maintained solution.
    Query {
        /// Target session.
        tenant: TenantId,
    },
}

/// Answer to one [`ServingRequest::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The queried tenant.
    pub tenant: TenantId,
    /// The maintained solution (insertion order, as
    /// [`DynamicSession::solution`]).
    pub solution: Vec<ElementId>,
    /// Objective `φ(S)` under the tenant's `λ` and quality oracle.
    pub objective: f64,
    /// Perturbations coalesced into the flush (0 for a pure read).
    pub flushed: usize,
    /// Oblivious swaps committed while stabilizing this query.
    pub swaps: usize,
    /// `Some(error)` when this query's flush was rejected: the drained
    /// batch was discarded and the session rolled back, bit-for-bit, to
    /// its pre-flush state — the `solution`/`objective` in this response
    /// are the last good answer, not a partial commit.
    pub rejected: Option<SessionError>,
}

/// Cumulative per-tenant counters (see [`ServingFrontend::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Queries answered.
    pub queries: usize,
    /// Perturbations ingested (across all flushed batches).
    pub perturbations: usize,
    /// Coalesced non-empty batches flushed.
    pub batches: usize,
    /// Oblivious swaps committed.
    pub swaps: usize,
    /// Perturbations still queued after this tenant's most recent query
    /// — how far the served answer lags the submitted stream when
    /// [`AdmissionPolicy::max_flush_per_query`] spreads a burst across
    /// queries. 0 once the queue has drained.
    pub staleness: usize,
    /// Flush batches rejected by validation (each one rolled back
    /// whole; see [`QueryResponse::rejected`]).
    pub rejected: usize,
}

/// Admission control for a [`ServingFrontend`]: bounds on how much
/// un-validated work one tenant can push into the shared serving loop.
///
/// The default (`None` everywhere) reproduces the unbounded legacy
/// behavior at zero overhead: no checkpoints are taken, queues are
/// unbounded, and every query flushes its whole queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Per-query flush bound: a query drains at most this many queued
    /// perturbations (front first), spreading a burst across queries so
    /// one tenant's backlog cannot monopolize a serving tick. The
    /// remainder stays queued and is reported as
    /// [`TenantStats::staleness`].
    pub max_flush_per_query: Option<usize>,
    /// Pending-queue depth bound: [`ServingFrontend::try_submit`]
    /// answers [`SubmitError::QueueFull`] (backpressure) once a tenant
    /// has this many queued perturbations.
    pub max_pending: Option<usize>,
    /// Quarantine threshold: after this many *consecutive* rejected
    /// flush batches the tenant is quarantined — its queue is dropped,
    /// new submissions answer [`SubmitError::Quarantined`], and queries
    /// keep serving the last good state until
    /// [`ServingFrontend::recover`]. Enabling this also turns on
    /// per-tenant [`SessionCheckpoint`]s (refreshed every
    /// [`checkpoint_every`](Self::checkpoint_every) successful flushes)
    /// so recovery is anchored to the last known-good state.
    pub quarantine_after: Option<usize>,
    /// Checkpoint cadence: with quarantine enabled, the recovery anchor
    /// is re-snapshotted every this-many successful flushes instead of
    /// after each one (a checkpoint clones the full session state — at
    /// cadence 1 that O(n + p) copy dominated light per-query flushes).
    /// Between snapshots the successfully-flushed batches are kept in a
    /// bounded replay log (at most `checkpoint_every − 1` batches), and
    /// quarantine rollback / [`ServingFrontend::recover`] restore the
    /// checkpoint then replay that tail — landing bit-for-bit on the
    /// last known-good stabilized state. `0` is treated as `1` (the
    /// legacy refresh-every-flush behavior, which is also the default).
    pub checkpoint_every: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_flush_per_query: None,
            max_pending: None,
            quarantine_after: None,
            checkpoint_every: 1,
        }
    }
}

/// Rejected [`ServingFrontend::try_submit`] — the backpressure signal of
/// the admission layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's pending queue is at [`AdmissionPolicy::max_pending`];
    /// retry after the tenant's next query drains it.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: TenantId,
        /// The configured depth bound.
        max_pending: usize,
    },
    /// The tenant is quarantined (see
    /// [`AdmissionPolicy::quarantine_after`]); call
    /// [`ServingFrontend::recover`] first.
    Quarantined {
        /// The quarantined tenant.
        tenant: TenantId,
    },
    /// No such tenant.
    UnknownTenant {
        /// The out-of-range id.
        tenant: TenantId,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::QueueFull {
                tenant,
                max_pending,
            } => write!(
                f,
                "tenant {tenant}: pending queue full ({max_pending} perturbations)"
            ),
            SubmitError::Quarantined { tenant } => {
                write!(f, "tenant {tenant} is quarantined; recover() it first")
            }
            SubmitError::UnknownTenant { tenant } => write!(f, "no tenant {tenant}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-tenant state: a session over the shared base plus the pending
/// (not yet flushed) perturbation queue and its fault-tolerance state.
struct Tenant<'q, M: Metric, Q: IncrementalOracle + ?Sized> {
    session: DynamicSession<'q, OverlayMetric<Arc<M>>, Q>,
    pending: Vec<SessionPerturbation>,
    stats: TenantStats,
    /// Last known-good snapshot (maintained only when
    /// [`AdmissionPolicy::quarantine_after`] is set).
    checkpoint: Option<SessionCheckpoint<OverlayMetric<Arc<M>>>>,
    /// Successfully-flushed batches since the checkpoint was last
    /// re-snapshotted — the bounded tail (at most
    /// [`AdmissionPolicy::checkpoint_every`]` − 1` batches) that
    /// recovery replays on top of the checkpoint to reach the last
    /// known-good state.
    replay_log: Vec<Vec<SessionPerturbation>>,
    /// Successful flushes since the last checkpoint refresh.
    flushes_since_checkpoint: usize,
    /// Rejected flush batches since the last successful one.
    consecutive_rejects: usize,
    quarantined: bool,
}

/// Multi-tenant serving frontend: `k` independent dynamic sessions over
/// one shared immutable base metric. See the [module docs](self).
///
/// Generic over the boxed oracle type exactly like [`DynamicSession`]:
/// the default serves serial sessions, [`SyncServingFrontend`] serves
/// thread-shareable ones (enabling the `parallel`-feature
/// `query_parallel` entry point).
pub struct ServingFrontend<
    'q,
    M: Metric,
    Q: IncrementalOracle + ?Sized = dyn IncrementalOracle + 'q,
> {
    base: Arc<M>,
    tenants: Vec<Tenant<'q, M, Q>>,
    /// Hard cap on stabilization swaps per query (defensive; the
    /// oblivious rule converges in ≤ p swaps on every workload the
    /// equivalence suites drive).
    max_updates_per_query: usize,
    policy: AdmissionPolicy,
}

/// [`ServingFrontend`] whose tenant oracles are shareable across threads
/// (required by the `parallel`-feature `query_parallel` entry point).
pub type SyncServingFrontend<'q, M> =
    ServingFrontend<'q, M, dyn IncrementalOracle + Send + Sync + 'q>;

impl<M: Metric, Q: IncrementalOracle + ?Sized> std::fmt::Debug for ServingFrontend<'_, M, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingFrontend")
            .field("tenants", &self.tenants.len())
            .field("ground_size", &self.base.len())
            .finish()
    }
}

/// Default cap on stabilization swaps per query.
const DEFAULT_MAX_UPDATES_PER_QUERY: usize = 256;

impl<'q, M: Metric> ServingFrontend<'q, M> {
    /// A frontend over `base` with no tenants yet.
    pub fn new(base: Arc<M>) -> Self {
        Self {
            base,
            tenants: Vec::new(),
            max_updates_per_query: DEFAULT_MAX_UPDATES_PER_QUERY,
            policy: AdmissionPolicy::default(),
        }
    }

    /// Opens a tenant session seeded with `initial` (typically Greedy B's
    /// output for that tenant's `p`, `λ` and quality — sessions do not
    /// re-solve). The quality function stays borrowed for the frontend's
    /// lifetime; its incremental oracle state is tenant-local.
    ///
    /// # Panics
    ///
    /// As [`DynamicSession::new`].
    pub fn add_tenant<F: SetFunction>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.push_tenant(DynamicSession::new_shared(
            &self.base, quality, lambda, initial,
        ))
    }
}

impl<'q, M: Metric> SyncServingFrontend<'q, M> {
    /// A thread-shareable frontend over `base` with no tenants yet.
    pub fn new_sync(base: Arc<M>) -> Self {
        Self {
            base,
            tenants: Vec::new(),
            max_updates_per_query: DEFAULT_MAX_UPDATES_PER_QUERY,
            policy: AdmissionPolicy::default(),
        }
    }

    /// Thread-shareable variant of [`ServingFrontend::add_tenant`].
    pub fn add_tenant_sync<F: SetFunction + Sync>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.push_tenant(SyncDynamicSession::new_shared_sync(
            &self.base, quality, lambda, initial,
        ))
    }
}

impl<'q, M: Metric, Q: IncrementalOracle + ?Sized> ServingFrontend<'q, M, Q> {
    fn push_tenant(&mut self, session: DynamicSession<'q, OverlayMetric<Arc<M>>, Q>) -> TenantId {
        // With quarantine enabled every tenant starts with a known-good
        // anchor, so recovery works even before the first clean flush.
        let checkpoint = self
            .policy
            .quarantine_after
            .is_some()
            .then(|| session.checkpoint());
        self.tenants.push(Tenant {
            session,
            pending: Vec::new(),
            stats: TenantStats::default(),
            checkpoint,
            replay_log: Vec::new(),
            flushes_since_checkpoint: 0,
            consecutive_rejects: 0,
            quarantined: false,
        });
        self.tenants.len() - 1
    }

    /// The shared base metric.
    pub fn base(&self) -> &Arc<M> {
        &self.base
    }

    /// Number of tenant sessions.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Caps the stabilization swaps spent per query (builder style;
    /// default 256 — far above the ≤ p swaps the oblivious rule needs in
    /// practice).
    pub fn with_max_updates_per_query(mut self, max_updates: usize) -> Self {
        self.max_updates_per_query = max_updates;
        self
    }

    /// Installs an [`AdmissionPolicy`] (builder style; default
    /// unbounded). When [`AdmissionPolicy::quarantine_after`] is set this
    /// also anchors every *existing* tenant with a checkpoint of its
    /// current state.
    pub fn with_admission_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        if policy.quarantine_after.is_some() {
            for t in &mut self.tenants {
                if t.checkpoint.is_none() {
                    t.checkpoint = Some(t.session.checkpoint());
                }
            }
        }
        self
    }

    /// The active [`AdmissionPolicy`].
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Queues a perturbation for `tenant` without flushing — it is
    /// repaired as part of the coalesced batch at that tenant's next
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range, its queue is full, or it is
    /// quarantined — use [`try_submit`](Self::try_submit) when the
    /// stream is untrusted or an [`AdmissionPolicy`] is active.
    pub fn submit(&mut self, tenant: TenantId, perturbation: SessionPerturbation) {
        if let Err(e) = self.try_submit(tenant, perturbation) {
            panic!("submit rejected: {e}");
        }
    }

    /// Queues a perturbation for `tenant`, subject to the
    /// [`AdmissionPolicy`]. This is the backpressure-aware ingestion
    /// path: no input can panic the frontend through it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTenant`], [`SubmitError::Quarantined`], or
    /// [`SubmitError::QueueFull`] (the queue drains at the tenant's next
    /// query). Malformed perturbation *contents* are not checked here —
    /// they are validated (and rejected batch-at-a-time, with rollback)
    /// at flush time.
    pub fn try_submit(
        &mut self,
        tenant: TenantId,
        perturbation: SessionPerturbation,
    ) -> Result<(), SubmitError> {
        let Some(t) = self.tenants.get_mut(tenant) else {
            return Err(SubmitError::UnknownTenant { tenant });
        };
        if t.quarantined {
            return Err(SubmitError::Quarantined { tenant });
        }
        if let Some(max_pending) = self.policy.max_pending {
            if t.pending.len() >= max_pending {
                return Err(SubmitError::QueueFull {
                    tenant,
                    max_pending,
                });
            }
        }
        t.pending.push(perturbation);
        Ok(())
    }

    /// `true` when `tenant` is quarantined (consecutive rejected flushes
    /// reached [`AdmissionPolicy::quarantine_after`]).
    pub fn is_quarantined(&self, tenant: TenantId) -> bool {
        self.tenants[tenant].quarantined
    }

    /// Lifts `tenant`'s quarantine: drops whatever is still queued,
    /// rolls the session back to its last known-good checkpoint (when
    /// one is maintained), and re-opens submissions. Returns `true` when
    /// a checkpoint was restored.
    ///
    /// Other tenants are untouched — their sessions never shared mutable
    /// state with the quarantined one.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn recover(&mut self, tenant: TenantId) -> bool {
        let max_updates = self.max_updates_per_query;
        let t = &mut self.tenants[tenant];
        let restored = Self::restore_last_known_good(t, max_updates);
        t.pending.clear();
        t.stats.staleness = 0;
        t.quarantined = false;
        t.consecutive_rejects = 0;
        restored
    }

    /// Rolls the session back to its checkpoint and replays the logged
    /// known-good tail (each batch re-stabilized exactly as
    /// [`respond`](Self::respond) did when it first succeeded), landing
    /// bit-for-bit on the last known-good state. `false` when no
    /// checkpoint is maintained.
    fn restore_last_known_good(t: &mut Tenant<'q, M, Q>, max_updates: usize) -> bool {
        let Some(checkpoint) = &t.checkpoint else {
            return false;
        };
        t.session.rollback_to(checkpoint);
        for batch in &t.replay_log {
            // The batch validated when it first flushed, so the
            // unvalidated replay applies the identical mutations.
            let report = t.session.apply_batch(batch);
            let swaps = usize::from(report.outcome.swap.is_some());
            t.session
                .update_until_stable(max_updates.saturating_sub(swaps));
        }
        true
    }

    /// Number of queued (unflushed) perturbations for `tenant`.
    pub fn pending(&self, tenant: TenantId) -> usize {
        self.tenants[tenant].pending.len()
    }

    /// The tenant's maintained solution, without flushing its queue.
    pub fn solution(&self, tenant: TenantId) -> &[ElementId] {
        self.tenants[tenant].session.solution()
    }

    /// The tenant's session (read access; perturb through
    /// [`submit`](Self::submit) so coalescing stays intact).
    pub fn session(&self, tenant: TenantId) -> &DynamicSession<'q, OverlayMetric<Arc<M>>, Q> {
        &self.tenants[tenant].session
    }

    /// Cumulative counters for `tenant`.
    pub fn stats(&self, tenant: TenantId) -> TenantStats {
        self.tenants[tenant].stats
    }

    /// Flushes (up to [`AdmissionPolicy::max_flush_per_query`] of)
    /// `tenant`'s queued perturbations as one coalesced, *validated*
    /// [`DynamicSession::try_apply_batch`], stabilizes, and answers with
    /// the maintained solution.
    ///
    /// A rejected batch is discarded whole — the session rolls back
    /// bit-for-bit and the response carries the typed error in
    /// [`QueryResponse::rejected`]; a quarantined tenant answers from
    /// its last good state without flushing. No request content can
    /// panic this entry point.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn query(&mut self, tenant: TenantId) -> QueryResponse {
        let max_updates = self.max_updates_per_query;
        let policy = self.policy;
        let t = &mut self.tenants[tenant];
        let flush = Self::flush_pending(t, policy, |session, batch| session.try_apply_batch(batch));
        Self::respond(t, tenant, flush, max_updates, policy)
    }

    /// Runs a tagged request stream in order, answering every
    /// [`ServingRequest::Query`]. Perturbations between a tenant's
    /// queries coalesce into one batch regardless of how other tenants'
    /// requests interleave.
    pub fn process<I>(&mut self, stream: I) -> Vec<QueryResponse>
    where
        I: IntoIterator<Item = ServingRequest>,
    {
        let mut responses = Vec::new();
        for request in stream {
            match request {
                ServingRequest::Perturb {
                    tenant,
                    perturbation,
                } => self.submit(tenant, perturbation),
                ServingRequest::Query { tenant } => responses.push(self.query(tenant)),
            }
        }
        responses
    }

    /// Drains the admission-bounded front of the pending queue through
    /// `apply` (a validating, all-or-nothing batch application). A
    /// quarantined tenant flushes nothing. Returns the successful report
    /// (with the flushed batch, for the recovery replay log) or the
    /// rejection; `(None, None)` when there was nothing to flush.
    #[allow(clippy::type_complexity)]
    fn flush_pending(
        t: &mut Tenant<'q, M, Q>,
        policy: AdmissionPolicy,
        apply: impl FnOnce(
            &mut DynamicSession<'q, OverlayMetric<Arc<M>>, Q>,
            &[SessionPerturbation],
        ) -> Result<BatchReport, SessionError>,
    ) -> (
        Option<(BatchReport, Vec<SessionPerturbation>)>,
        Option<SessionError>,
    ) {
        if t.quarantined || t.pending.is_empty() {
            return (None, None);
        }
        let take = policy
            .max_flush_per_query
            .map_or(t.pending.len(), |cap| cap.min(t.pending.len()));
        if take == 0 {
            return (None, None);
        }
        let batch: Vec<SessionPerturbation> = t.pending.drain(..take).collect();
        match apply(&mut t.session, &batch) {
            Ok(report) => (Some((report, batch)), None),
            Err(error) => (None, Some(error)),
        }
    }

    /// Stabilizes and assembles the response + fault-tolerance
    /// bookkeeping after a flush attempt.
    fn respond(
        t: &mut Tenant<'q, M, Q>,
        tenant: TenantId,
        flush: (
            Option<(BatchReport, Vec<SessionPerturbation>)>,
            Option<SessionError>,
        ),
        max_updates: usize,
        policy: AdmissionPolicy,
    ) -> QueryResponse {
        let (report, rejected) = flush;
        let mut swaps = 0usize;
        let mut flushed = 0usize;
        if let Some((report, _)) = &report {
            flushed = report.ingested;
            if report.outcome.swap.is_some() {
                swaps += 1;
            }
            t.stats.batches += 1;
            t.stats.perturbations += flushed;
            t.consecutive_rejects = 0;
        }
        if rejected.is_some() {
            // The batch was discarded and the session rolled back by
            // `try_apply_batch`; track the failure streak.
            t.stats.rejected += 1;
            t.consecutive_rejects += 1;
            if let Some(threshold) = policy.quarantine_after {
                if t.consecutive_rejects >= threshold {
                    t.quarantined = true;
                    // The rest of the queue came from the same source as
                    // the poison — drop it, and re-anchor on the last
                    // known-good state (checkpoint plus the logged
                    // since-checkpoint tail; the rejection rollback
                    // already restored it, this is the defensive path).
                    t.pending.clear();
                    Self::restore_last_known_good(t, max_updates);
                }
            }
        }
        swaps += t
            .session
            .update_until_stable(max_updates.saturating_sub(swaps));
        if rejected.is_none() && policy.quarantine_after.is_some() {
            if let Some((_, batch)) = report {
                // Known-good, stabilized state. Refresh the recovery
                // anchor only every `checkpoint_every` successful
                // flushes (the snapshot clones the full session state —
                // ROADMAP iv-b); between refreshes the batch joins the
                // bounded replay tail recovery re-applies on top of the
                // checkpoint.
                t.flushes_since_checkpoint += 1;
                if t.flushes_since_checkpoint >= policy.checkpoint_every.max(1) {
                    t.checkpoint = Some(t.session.checkpoint());
                    t.replay_log.clear();
                    t.flushes_since_checkpoint = 0;
                } else {
                    t.replay_log.push(batch);
                }
            }
        }
        t.stats.queries += 1;
        t.stats.swaps += swaps;
        t.stats.staleness = t.pending.len();
        QueryResponse {
            tenant,
            solution: t.session.solution().to_vec(),
            objective: t.session.objective(),
            flushed,
            swaps,
            rejected,
        }
    }
}

#[cfg(feature = "parallel")]
impl<'q, M: Metric + Send + Sync> SyncServingFrontend<'q, M> {
    /// [`ServingFrontend::query`] with the flush and stabilization
    /// running the session's thread-parallel scans (bit-identical
    /// responses — chunking is scheduling only; validation and rollback
    /// semantics are identical to the serial path).
    pub fn query_parallel(&mut self, tenant: TenantId) -> QueryResponse {
        let max_updates = self.max_updates_per_query;
        let policy = self.policy;
        let t = &mut self.tenants[tenant];
        let flush = Self::flush_pending(t, policy, |session, batch| {
            session.try_apply_batch_parallel(batch)
        });
        Self::respond(t, tenant, flush, max_updates, policy)
    }

    /// Routes every tenant session's parallel scans through an explicit
    /// [`crate::pool::ScanPool`] (builder style): one persistent worker
    /// set serves all tenants. Results are bit-identical for any pool.
    pub fn with_scan_pool(mut self, pool: Arc<crate::pool::ScanPool>) -> Self {
        for t in &mut self.tenants {
            t.session.set_scan_pool(Arc::clone(&pool));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_b, GreedyBConfig};
    use crate::problem::DiversificationProblem;
    use msd_metric::DistanceMatrix;
    use msd_submodular::ModularFunction;

    fn base_and_quality(n: usize) -> (Arc<DistanceMatrix>, ModularFunction) {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        (Arc::new(metric), ModularFunction::new(weights))
    }

    #[test]
    fn queries_coalesce_pending_perturbations() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let t = frontend.add_tenant(&quality, 0.3, &init);

        frontend.submit(
            t,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 7,
                value: 3.0,
            },
        );
        frontend.submit(t, SessionPerturbation::SetWeight { u: 23, value: 4.0 });
        assert_eq!(frontend.pending(t), 2);

        let response = frontend.query(t);
        assert_eq!(response.flushed, 2);
        assert_eq!(frontend.pending(t), 0);
        assert_eq!(response.solution.len(), 5);
        let stats = frontend.stats(t);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.perturbations, 2);

        // A pure read flushes nothing and answers from the caches.
        let read = frontend.query(t);
        assert_eq!(read.flushed, 0);
        assert_eq!(read.solution, response.solution);
    }

    #[test]
    fn tenants_are_isolated_and_base_is_untouched() {
        let (base, quality) = base_and_quality(20);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.25);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let original = base.distance(1, 5);

        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let a = frontend.add_tenant(&quality, 0.25, &init);
        let b = frontend.add_tenant(&quality, 0.25, &init);

        // Conflicting rewrites of the same pair.
        frontend.submit(
            a,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 5,
                value: 0.5,
            },
        );
        frontend.submit(
            b,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 5,
                value: 9.0,
            },
        );
        frontend.query(a);
        frontend.query(b);

        assert_eq!(frontend.session(a).metric().distance(1, 5), 0.5);
        assert_eq!(frontend.session(b).metric().distance(1, 5), 9.0);
        assert_eq!(base.distance(1, 5), original);
    }

    #[test]
    fn stream_processing_interleaves_tenants() {
        let (base, quality) = base_and_quality(16);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.4);
        let init = greedy_b(&problem, 3, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let a = frontend.add_tenant(&quality, 0.4, &init);
        let b = frontend.add_tenant(&quality, 1.0, &init);

        let responses = frontend.process([
            ServingRequest::Perturb {
                tenant: a,
                perturbation: SessionPerturbation::SetWeight { u: 15, value: 3.0 },
            },
            ServingRequest::Perturb {
                tenant: b,
                perturbation: SessionPerturbation::SetDistance {
                    u: 0,
                    v: 9,
                    value: 2.0,
                },
            },
            ServingRequest::Perturb {
                tenant: a,
                perturbation: SessionPerturbation::SetDistance {
                    u: 2,
                    v: 3,
                    value: 1.5,
                },
            },
            ServingRequest::Query { tenant: a },
            ServingRequest::Query { tenant: b },
        ]);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].tenant, a);
        assert_eq!(responses[0].flushed, 2); // a's two perturbations coalesced
        assert_eq!(responses[1].tenant, b);
        assert_eq!(responses[1].flushed, 1);
    }

    #[test]
    fn bounded_flush_spreads_a_burst_and_reports_staleness() {
        let (base, quality) = base_and_quality(20);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let mut frontend =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(AdmissionPolicy {
                max_flush_per_query: Some(3),
                max_pending: Some(10),
                quarantine_after: None,
                checkpoint_every: 1,
            });
        let t = frontend.add_tenant(&quality, 0.3, &init);
        for i in 0..10u32 {
            frontend
                .try_submit(
                    t,
                    SessionPerturbation::SetDistance {
                        u: i,
                        v: i + 10,
                        value: 1.0 + f64::from(i) * 0.125,
                    },
                )
                .unwrap();
        }
        // Queue is at depth: backpressure, not growth.
        let err = frontend
            .try_submit(t, SessionPerturbation::SetWeight { u: 0, value: 1.0 })
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                tenant: t,
                max_pending: 10
            }
        );
        assert!(err.to_string().contains("queue full"));
        // Each query drains at most 3, front first; staleness falls
        // monotonically to zero.
        let mut last_staleness = usize::MAX;
        let mut total_flushed = 0usize;
        while frontend.pending(t) > 0 {
            let r = frontend.query(t);
            assert!(r.flushed <= 3);
            assert!(r.rejected.is_none());
            total_flushed += r.flushed;
            let staleness = frontend.stats(t).staleness;
            assert!(staleness < last_staleness, "staleness must shrink");
            last_staleness = staleness;
        }
        assert_eq!(total_flushed, 10);
        assert_eq!(frontend.stats(t).staleness, 0);
        // The spread-out answer matches an unbounded frontend fed the
        // same stream.
        let mut unbounded = ServingFrontend::new(Arc::clone(&base));
        let u = unbounded.add_tenant(&quality, 0.3, &init);
        for i in 0..10u32 {
            unbounded.submit(
                u,
                SessionPerturbation::SetDistance {
                    u: i,
                    v: i + 10,
                    value: 1.0 + f64::from(i) * 0.125,
                },
            );
        }
        let ru = unbounded.query(u);
        assert_eq!(frontend.query(t).solution, ru.solution);
    }

    #[test]
    fn rejected_flushes_answer_last_good_state_and_quarantine_isolates() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let mut frontend =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(AdmissionPolicy {
                max_flush_per_query: None,
                max_pending: None,
                quarantine_after: Some(2),
                checkpoint_every: 1,
            });
        let poisoner = frontend.add_tenant(&quality, 0.3, &init);
        let healthy = frontend.add_tenant(&quality, 0.3, &init);
        // Mirror of the healthy tenant in a frontend that never sees the
        // poisoner: its answers must be bit-identical throughout.
        let mut mirror_frontend = ServingFrontend::new(Arc::clone(&base));
        let mirror = mirror_frontend.add_tenant(&quality, 0.3, &init);

        // A good flush establishes the checkpoint.
        frontend.submit(
            poisoner,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 9,
                value: 2.5,
            },
        );
        let good = frontend.query(poisoner);
        assert!(good.rejected.is_none());

        // Two consecutive poisoned batches → quarantine.
        for _ in 0..2 {
            frontend.submit(
                poisoner,
                SessionPerturbation::SetDistance {
                    u: 1,
                    v: 2,
                    value: f64::NAN,
                },
            );
            frontend.submit(healthy, SessionPerturbation::SetWeight { u: 3, value: 2.0 });
            mirror_frontend.submit(mirror, SessionPerturbation::SetWeight { u: 3, value: 2.0 });
            let rp = frontend.query(poisoner);
            assert!(matches!(
                rp.rejected,
                Some(SessionError::Rejected { index: 0, .. })
            ));
            // Degraded, not down: the poisoner still gets its last good
            // answer.
            assert_eq!(rp.solution, good.solution);
            assert_eq!(rp.objective, good.objective);
            // The healthy tenant is untouched by its neighbor's faults.
            let rh = frontend.query(healthy);
            let rm = mirror_frontend.query(mirror);
            assert_eq!(rh.solution, rm.solution);
            assert_eq!(rh.objective.to_bits(), rm.objective.to_bits());
            assert!(rh.rejected.is_none());
        }
        assert!(frontend.is_quarantined(poisoner));
        assert!(!frontend.is_quarantined(healthy));
        assert_eq!(frontend.stats(poisoner).rejected, 2);

        // Quarantined: submissions refused, queries served, others fine.
        assert_eq!(
            frontend
                .try_submit(
                    poisoner,
                    SessionPerturbation::SetWeight { u: 0, value: 1.0 }
                )
                .unwrap_err(),
            SubmitError::Quarantined { tenant: poisoner }
        );
        let rq = frontend.query(poisoner);
        assert_eq!(rq.solution, good.solution);
        assert_eq!(rq.flushed, 0);

        // Recovery restores the last good checkpoint and re-opens the
        // tenant; subsequent valid traffic flows normally.
        assert!(frontend.recover(poisoner));
        assert!(!frontend.is_quarantined(poisoner));
        assert_eq!(frontend.solution(poisoner), &good.solution[..]);
        frontend
            .try_submit(
                poisoner,
                SessionPerturbation::SetWeight { u: 5, value: 3.0 },
            )
            .unwrap();
        let back = frontend.query(poisoner);
        assert!(back.rejected.is_none());
        assert_eq!(back.flushed, 1);

        // Unknown tenants are an error, not a panic, through try_submit.
        assert_eq!(
            frontend
                .try_submit(99, SessionPerturbation::SetWeight { u: 0, value: 1.0 })
                .unwrap_err(),
            SubmitError::UnknownTenant { tenant: 99 }
        );
    }

    #[test]
    fn periodic_checkpoints_recover_bit_identically_to_per_flush_checkpoints() {
        // Regression for the checkpoint cost fix (ROADMAP iv-b): with
        // `checkpoint_every > 1` the recovery anchor is stale by up to
        // `checkpoint_every − 1` good flushes, and recovery must replay
        // that logged tail — `recover()` has to land bit-for-bit on the
        // same last-known-good state as the legacy refresh-every-flush
        // cadence.
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let policy_every = |checkpoint_every: usize| AdmissionPolicy {
            max_flush_per_query: None,
            max_pending: None,
            quarantine_after: Some(2),
            checkpoint_every,
        };
        let mut per_flush =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(policy_every(1));
        let a = per_flush.add_tenant(&quality, 0.3, &init);
        let mut periodic =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(policy_every(3));
        let b = periodic.add_tenant(&quality, 0.3, &init);

        // Five good flushes: the cadence-3 frontend refreshes its anchor
        // at flush 3 and holds flushes 4–5 in the replay log, so the
        // checkpoint alone is genuinely stale when the poison arrives.
        let mut last_good = None;
        for i in 0..5u32 {
            let perturbation = SessionPerturbation::SetDistance {
                u: i,
                v: i + 7,
                value: 1.5 + f64::from(i) * 0.25,
            };
            per_flush.submit(a, perturbation);
            periodic.submit(b, perturbation);
            let ra = per_flush.query(a);
            let rb = periodic.query(b);
            assert!(ra.rejected.is_none() && rb.rejected.is_none());
            assert_eq!(ra.solution, rb.solution);
            assert_eq!(ra.objective.to_bits(), rb.objective.to_bits());
            last_good = Some(ra);
        }
        let last_good = last_good.unwrap();

        // Two consecutive poisoned batches quarantine both tenants.
        for _ in 0..2 {
            let poison = SessionPerturbation::SetDistance {
                u: 1,
                v: 2,
                value: f64::NAN,
            };
            per_flush.submit(a, poison);
            periodic.submit(b, poison);
            assert!(per_flush.query(a).rejected.is_some());
            assert!(periodic.query(b).rejected.is_some());
        }
        assert!(per_flush.is_quarantined(a) && periodic.is_quarantined(b));
        // Quarantined answers already come from the last good state.
        assert_eq!(periodic.query(b).solution, last_good.solution);

        // Recovery: checkpoint + replayed tail ≡ per-flush checkpoint.
        assert!(per_flush.recover(a));
        assert!(periodic.recover(b));
        assert_eq!(per_flush.solution(a), periodic.solution(b));
        assert_eq!(periodic.solution(b), &last_good.solution[..]);

        // Post-recovery traffic stays bit-identical.
        let follow = SessionPerturbation::SetWeight { u: 11, value: 3.0 };
        per_flush.submit(a, follow);
        periodic.submit(b, follow);
        let ra = per_flush.query(a);
        let rb = periodic.query(b);
        assert!(ra.rejected.is_none() && rb.rejected.is_none());
        assert_eq!(ra.solution, rb.solution);
        assert_eq!(ra.objective.to_bits(), rb.objective.to_bits());
    }

    #[test]
    #[should_panic(expected = "submit rejected")]
    fn legacy_submit_panics_on_full_queue() {
        let (base, quality) = base_and_quality(8);
        let mut frontend =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(AdmissionPolicy {
                max_pending: Some(1),
                ..AdmissionPolicy::default()
            });
        let t = frontend.add_tenant(&quality, 0.3, &[0, 1]);
        frontend.submit(t, SessionPerturbation::SetWeight { u: 0, value: 1.0 });
        frontend.submit(t, SessionPerturbation::SetWeight { u: 1, value: 1.0 });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_queries_match_serial_with_forced_pool() {
        let (base, quality) = base_and_quality(40);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 6, GreedyBConfig::default());

        let mut serial = ServingFrontend::new(Arc::clone(&base));
        let ts = serial.add_tenant(&quality, 0.3, &init);
        let mut par = SyncServingFrontend::new_sync(Arc::clone(&base));
        let tp = par.add_tenant_sync(&quality, 0.3, &init);
        // A forced pool chunks every scan even at this test size.
        let mut par = par.with_scan_pool(Arc::new(crate::pool::ScanPool::new(4)));

        for (u, v, value) in [(0u32, 7u32, 3.0), (4, 12, 0.2), (1, 2, 2.5)] {
            serial.submit(ts, SessionPerturbation::SetDistance { u, v, value });
            par.submit(tp, SessionPerturbation::SetDistance { u, v, value });
            let rs = serial.query(ts);
            let rp = par.query_parallel(tp);
            assert_eq!(rs.solution, rp.solution);
            assert_eq!(rs.objective, rp.objective);
            assert_eq!(rs.flushed, rp.flushed);
        }
    }
}
