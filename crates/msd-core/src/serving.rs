//! Multi-tenant query serving over one shared corpus.
//!
//! The paper frames max-sum diversification as a *query-time* problem:
//! many users issue queries with different `p`, `λ` and quality `f` over
//! one corpus. Running a [`DynamicSession`] per user used to cost a full
//! metric clone each (`O(n²)` for a dense matrix). [`ServingFrontend`]
//! removes that: every tenant session reads one immutable `Arc<M>` base
//! metric through a private copy-on-write [`OverlayMetric`], so a
//! tenant's `set_distance` perturbations land in its overlay — never the
//! shared base — and resident memory is `O(n²) + k·O(Δ)` for `k` tenants
//! with `Δ` perturbed pairs each, instead of `k·O(n²)`. Weight
//! perturbations repair the tenant's own incremental oracle (session
//! state by construction), so quality state never crosses tenants
//! either.
//!
//! The frontend consumes a **tagged request stream**
//! ([`ServingRequest`]): perturbations are queued per tenant and
//! coalesced into a single validated batch application
//! ([`DynamicSession::ingest`]) when that tenant's next query
//! arrives — the batch path scans at most once over the union scope,
//! which is where the perturb→query throughput comes from. Tenants are
//! addressed by the typed [`TenantId`] handle returned at registration
//! ([`ServingFrontend::register_tenant`]).
//!
//! # Fan-out/join scheduling
//!
//! [`ServingFrontend::query_many`] answers a set of distinct tenants in
//! one call and [`ServingFrontend::drain_all`] runs a flush cycle over
//! every tenant with queued work. Because tenant sessions share no
//! mutable state, the `parallel`-feature `query_many_parallel` /
//! `drain_all_parallel` variants partition the requested tenants into
//! independent jobs on a persistent `ScanPool` and join
//! the responses in request order — bit-identical to the serial
//! per-tenant loop (each job runs the identical serial flush +
//! stabilize body; the pool only schedules *which thread* serves a
//! tenant, never what it computes).
//!
//! # Shared weight overlays and tenant eviction
//!
//! [`SharedServingFrontend`] specializes the quality side the same way
//! the metric side already is: `k` tenants read one immutable
//! `Arc<[f64]>` base weight vector through per-tenant sparse
//! copy-on-write deltas ([`msd_submodular::SharedModularOracle`]), so
//! quality memory is `O(n) + k·O(Δ_w)` instead of `k·O(n)`. Because
//! every piece of such a tenant's state is then base + sparse deltas,
//! the tenant can be **evicted**: [`SharedServingFrontend::evict`]
//! spills it to a plain-old-data [`TenantSnapshot`] (overlay deltas,
//! solution state, availability mask, oracle value — raw floats, never
//! re-derived) and [`SharedServingFrontend::attach`] re-attaches it
//! bit-identically later.
//!
//! # Fault tolerance and admission control
//!
//! The frontend is an *ingestion boundary*: request content is
//! untrusted, so no submitted perturbation can panic it. Malformed
//! batches (NaN distances, out-of-range ids, availability violations)
//! are rejected whole at flush time — the tenant's session rolls back
//! bit-for-bit and the query answers from the last good state, carrying
//! the typed error in [`QueryResponse::rejected`]. An optional
//! [`AdmissionPolicy`] adds backpressure ([`SubmitError::QueueFull`]
//! from [`ServingFrontend::try_submit`] when a tenant's queue is at
//! depth), burst-spreading (each query flushes at most
//! `max_flush_per_query` entries, the lag reported as
//! [`TenantStats::staleness`]), and quarantine: a tenant whose flushes
//! keep failing is isolated — queue dropped, submissions refused,
//! queries still served from its last good checkpoint — without
//! perturbing any other tenant, and re-opened via
//! [`ServingFrontend::recover`]. Every rejected batch is kept on a
//! per-tenant audit channel ([`ServingFrontend::last_rejection`])
//! together with its typed error, so poison sources can be debugged
//! after the fact.
//!
//! Latency SLOs are enforced against an **injected** [`Clock`]
//! ([`ServingFrontend::with_clock`] — the frontend is told the time,
//! it never reads it, so tests drive a fake): with
//! [`AdmissionPolicy::max_staleness_ticks`] a tenant whose oldest
//! queued perturbation exceeds the lag budget is quarantined at its
//! next query (the queue can no longer be served within the SLO; the
//! session itself is still the last good state, so no rollback
//! happens), and [`AdmissionPolicy::rate_limit`] meters submissions
//! through a per-tenant token bucket ([`SubmitError::RateLimited`]).
//!
//! ```
//! use std::sync::Arc;
//! use msd_core::{ServingFrontend, ServingRequest, SessionPerturbation};
//! use msd_metric::{DistanceMatrix, Metric};
//! use msd_submodular::ModularFunction;
//!
//! let base = Arc::new(DistanceMatrix::from_fn(8, |u, v| {
//!     1.0 + f64::from((u + v) % 4) * 0.25
//! }));
//! let quality = ModularFunction::new(vec![0.9, 0.3, 0.8, 0.2, 0.7, 0.1, 0.6, 0.4]);
//!
//! let mut frontend = ServingFrontend::new(Arc::clone(&base));
//! let alice = frontend.register_tenant(&quality, 0.3, &[0, 2, 4]);
//! let bob = frontend.register_tenant(&quality, 1.5, &[1, 3, 5]);
//!
//! let responses = frontend.process([
//!     ServingRequest::Perturb {
//!         tenant: alice,
//!         perturbation: SessionPerturbation::SetDistance { u: 0, v: 5, value: 1.9 },
//!     },
//!     ServingRequest::Query { tenant: alice },
//!     ServingRequest::Query { tenant: bob },
//! ]);
//! assert_eq!(responses.len(), 2);
//! assert_eq!(responses[0].flushed, 1); // alice's pending batch coalesced
//! // The shared base is untouched by alice's perturbation.
//! assert_eq!(base.distance(0, 5), 1.0 + 0.25);
//! ```
//!
//! The fault path, end to end — a rejected batch rolls back whole, a
//! repeat poisoner is quarantined, recovery restores service:
//!
//! ```
//! use std::sync::Arc;
//! use msd_core::{AdmissionPolicy, ServingFrontend, SessionPerturbation, SubmitError};
//! use msd_metric::DistanceMatrix;
//! use msd_submodular::ModularFunction;
//!
//! let base = Arc::new(DistanceMatrix::from_fn(8, |u, v| {
//!     1.0 + f64::from((u + v) % 4) * 0.25
//! }));
//! let quality = ModularFunction::new(vec![0.9, 0.3, 0.8, 0.2, 0.7, 0.1, 0.6, 0.4]);
//!
//! let mut frontend = ServingFrontend::new(Arc::clone(&base));
//! let mallory = frontend.register_tenant(&quality, 0.3, &[0, 2, 4]);
//! let mut frontend = frontend.with_admission_policy(AdmissionPolicy {
//!     max_flush_per_query: Some(16),
//!     max_pending: Some(64),
//!     quarantine_after: Some(2),
//!     ..AdmissionPolicy::default()
//! });
//!
//! let poison = SessionPerturbation::SetDistance { u: 0, v: 1, value: f64::NAN };
//! let baseline = frontend.query(mallory).solution;
//! for _ in 0..2 {
//!     frontend.try_submit(mallory, poison).unwrap();
//!     let response = frontend.query(mallory);
//!     // Rejected whole: the answer is the last good state, with the
//!     // typed error attached.
//!     assert!(response.rejected.is_some());
//!     assert_eq!(response.solution, baseline);
//! }
//! // Two consecutive rejected flushes: quarantined, submissions refused.
//! assert!(frontend.is_quarantined(mallory));
//! assert!(matches!(
//!     frontend.try_submit(mallory, poison),
//!     Err(SubmitError::Quarantined { .. })
//! ));
//! // Recovery re-opens the tenant from its last good checkpoint.
//! assert!(frontend.recover(mallory));
//! let ok = SessionPerturbation::SetDistance { u: 0, v: 1, value: 1.9 };
//! frontend.try_submit(mallory, ok).unwrap();
//! assert!(frontend.query(mallory).rejected.is_none());
//! ```
//!
//! Shared-weight tenants can be spilled and re-attached bit-identically:
//!
//! ```
//! use std::sync::Arc;
//! use msd_core::{SessionPerturbation, SharedServingFrontend};
//! use msd_metric::DistanceMatrix;
//!
//! let base = Arc::new(DistanceMatrix::from_fn(8, |u, v| {
//!     1.0 + f64::from((u + v) % 4) * 0.25
//! }));
//! let weights: Arc<[f64]> = vec![0.9, 0.3, 0.8, 0.2, 0.7, 0.1, 0.6, 0.4].into();
//!
//! let mut frontend = SharedServingFrontend::new_shared(Arc::clone(&base));
//! let t = frontend.register_tenant_shared(Arc::clone(&weights), 0.3, &[0, 2, 4]);
//! frontend.submit(t, SessionPerturbation::SetWeight { u: 2, value: 9.0 });
//! let before = frontend.query(t);
//!
//! let snapshot = frontend.evict(t); // plain-old-data: O(Δ) deltas + solution
//! let t = frontend.attach(snapshot); // bit-identical re-attach
//! let after = frontend.query(t);
//! assert_eq!(before.solution, after.solution);
//! assert_eq!(before.objective.to_bits(), after.objective.to_bits());
//! ```

// Ingestion boundary: faults arrive here as values, never as panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::Arc;

use msd_metric::{Metric, OverlayMetric, PerturbableMetric};
use msd_submodular::{IncrementalOracle, SetFunction, SharedModularOracle};

use crate::session::{
    BatchReport, DynamicSession, SessionCheckpoint, SessionError, SessionPerturbation,
    SyncDynamicSession,
};
use crate::solution::SolutionState;
use crate::ElementId;

/// Opaque handle to a tenant session inside a [`ServingFrontend`],
/// returned by [`ServingFrontend::register_tenant`]. Handles stay valid
/// across other tenants' registration and eviction (slots are
/// tombstoned, never shifted); using an evicted tenant's handle
/// panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(usize);

impl TenantId {
    /// The underlying slot index (stable for the tenant's lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw slot index (e.g. one carried in an
    /// external request envelope). The frontend re-validates it on use.
    pub fn from_index(index: usize) -> Self {
        TenantId(index)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Injected time source for the admission layer's latency SLOs. The
/// frontend is *told* the time in abstract ticks — it never reads a
/// wall clock — so staleness and rate limits are deterministic and
/// testable with a fake.
pub trait Clock {
    /// Monotone tick counter (the unit is the caller's choice; the
    /// admission bounds are expressed in the same unit).
    fn now_ticks(&self) -> u64;
}

/// Per-tenant token-bucket rate limit (see
/// [`AdmissionPolicy::rate_limit`]): a tenant holds at most `capacity`
/// tokens, [`ServingFrontend::try_submit`] spends one per submission,
/// and one token mints every `ticks_per_token` clock ticks.
///
/// Refill is driven by the injected [`Clock`]; without one the bucket
/// never refills after the initial `capacity` submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    /// Maximum (and initial) token count.
    pub capacity: u32,
    /// Ticks needed to mint one token (`0` disables refill).
    pub ticks_per_token: u64,
}

/// One tagged request in a serving stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingRequest {
    /// Queue a perturbation for `tenant`; it is repaired lazily, as part
    /// of the coalesced batch flushed by that tenant's next query.
    Perturb {
        /// Target session.
        tenant: TenantId,
        /// The perturbation to queue.
        perturbation: SessionPerturbation,
    },
    /// Flush `tenant`'s queued perturbations (one `apply_batch`),
    /// stabilize, and read the maintained solution.
    Query {
        /// Target session.
        tenant: TenantId,
    },
}

/// Answer to one [`ServingRequest::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The queried tenant.
    pub tenant: TenantId,
    /// The maintained solution (insertion order, as
    /// [`DynamicSession::solution`]).
    pub solution: Vec<ElementId>,
    /// Objective `φ(S)` under the tenant's `λ` and quality oracle.
    pub objective: f64,
    /// Perturbations coalesced into the flush (0 for a pure read).
    pub flushed: usize,
    /// Oblivious swaps committed while stabilizing this query.
    pub swaps: usize,
    /// `Some(error)` when this query's flush was rejected: the drained
    /// batch was discarded and the session rolled back, bit-for-bit, to
    /// its pre-flush state — the `solution`/`objective` in this response
    /// are the last good answer, not a partial commit.
    pub rejected: Option<SessionError>,
}

/// Cumulative per-tenant counters (see [`ServingFrontend::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Queries answered.
    pub queries: usize,
    /// Perturbations ingested (across all flushed batches).
    pub perturbations: usize,
    /// Coalesced non-empty batches flushed.
    pub batches: usize,
    /// Oblivious swaps committed.
    pub swaps: usize,
    /// Perturbations still queued after this tenant's most recent query
    /// — how far the served answer lags the submitted stream when
    /// [`AdmissionPolicy::max_flush_per_query`] spreads a burst across
    /// queries. 0 once the queue has drained.
    pub staleness: usize,
    /// Flush batches rejected by validation (each one rolled back
    /// whole; see [`QueryResponse::rejected`]).
    pub rejected: usize,
}

/// Admission control for a [`ServingFrontend`]: bounds on how much
/// un-validated work one tenant can push into the shared serving loop.
///
/// The default (`None` everywhere) reproduces the unbounded legacy
/// behavior at zero overhead: no checkpoints are taken, queues are
/// unbounded, and every query flushes its whole queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Per-query flush bound: a query drains at most this many queued
    /// perturbations (front first), spreading a burst across queries so
    /// one tenant's backlog cannot monopolize a serving tick. The
    /// remainder stays queued and is reported as
    /// [`TenantStats::staleness`].
    pub max_flush_per_query: Option<usize>,
    /// Pending-queue depth bound: [`ServingFrontend::try_submit`]
    /// answers [`SubmitError::QueueFull`] (backpressure) once a tenant
    /// has this many queued perturbations.
    pub max_pending: Option<usize>,
    /// Quarantine threshold: after this many *consecutive* rejected
    /// flush batches the tenant is quarantined — its queue is dropped,
    /// new submissions answer [`SubmitError::Quarantined`], and queries
    /// keep serving the last good state until
    /// [`ServingFrontend::recover`]. Enabling this also turns on
    /// per-tenant [`SessionCheckpoint`]s (refreshed every
    /// [`checkpoint_every`](Self::checkpoint_every) successful flushes)
    /// so recovery is anchored to the last known-good state.
    pub quarantine_after: Option<usize>,
    /// Checkpoint cadence: with quarantine enabled, the recovery anchor
    /// is re-snapshotted every this-many successful flushes instead of
    /// after each one (a checkpoint clones the full session state — at
    /// cadence 1 that O(n + p) copy dominated light per-query flushes).
    /// Between snapshots the successfully-flushed batches are kept in a
    /// bounded replay log (at most `checkpoint_every − 1` batches), and
    /// quarantine rollback / [`ServingFrontend::recover`] restore the
    /// checkpoint then replay that tail — landing bit-for-bit on the
    /// last known-good stabilized state. `0` is treated as `1` (the
    /// legacy refresh-every-flush behavior, which is also the default).
    pub checkpoint_every: usize,
    /// Staleness SLO in [`Clock`] ticks: at query time, a tenant whose
    /// *oldest* queued perturbation has waited longer than this is
    /// quarantined — its lagging queue is dropped (it can no longer be
    /// served within the SLO) and submissions are refused until
    /// [`ServingFrontend::recover`]. The session itself is the last
    /// good flushed state, so unlike poison quarantine no rollback
    /// happens. Requires an injected clock
    /// ([`ServingFrontend::with_clock`]); without one all submissions
    /// carry tick 0 and never lag.
    pub max_staleness_ticks: Option<u64>,
    /// Per-tenant token-bucket submission rate limit:
    /// [`ServingFrontend::try_submit`] answers
    /// [`SubmitError::RateLimited`] when the tenant's bucket is empty.
    /// Refill is metered by the injected [`Clock`].
    pub rate_limit: Option<TokenBucket>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_flush_per_query: None,
            max_pending: None,
            quarantine_after: None,
            checkpoint_every: 1,
            max_staleness_ticks: None,
            rate_limit: None,
        }
    }
}

/// Rejected [`ServingFrontend::try_submit`] — the backpressure signal of
/// the admission layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's pending queue is at [`AdmissionPolicy::max_pending`];
    /// retry after the tenant's next query drains it.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: TenantId,
        /// The configured depth bound.
        max_pending: usize,
    },
    /// The tenant is quarantined (see
    /// [`AdmissionPolicy::quarantine_after`]); call
    /// [`ServingFrontend::recover`] first.
    Quarantined {
        /// The quarantined tenant.
        tenant: TenantId,
    },
    /// The tenant's token bucket is empty (see
    /// [`AdmissionPolicy::rate_limit`]); retry after enough clock ticks
    /// for a token to mint.
    RateLimited {
        /// The rate-limited tenant.
        tenant: TenantId,
    },
    /// No such tenant (never registered, or evicted).
    UnknownTenant {
        /// The out-of-range id.
        tenant: TenantId,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::QueueFull {
                tenant,
                max_pending,
            } => write!(
                f,
                "tenant {tenant}: pending queue full ({max_pending} perturbations)"
            ),
            SubmitError::Quarantined { tenant } => {
                write!(f, "tenant {tenant} is quarantined; recover() it first")
            }
            SubmitError::RateLimited { tenant } => {
                write!(f, "tenant {tenant}: rate limited (token bucket empty)")
            }
            SubmitError::UnknownTenant { tenant } => write!(f, "no tenant {tenant}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One rejected flush on the per-tenant audit channel
/// ([`ServingFrontend::last_rejection`]): the drained batch exactly as
/// it failed validation, plus the typed error. Overwritten by the next
/// rejection; survives successful flushes so a poison source can be
/// diagnosed after service has recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectionAudit {
    /// The batch that was drained and rejected whole.
    pub batch: Vec<SessionPerturbation>,
    /// Why validation rejected it.
    pub error: SessionError,
}

/// A spilled shared-weight tenant (see
/// [`SharedServingFrontend::evict`]): plain-old-data — sparse overlay
/// deltas against the shared bases plus the session's raw cached floats
/// (gain vector, dispersion, oracle value), captured verbatim and
/// restored verbatim by [`SharedServingFrontend::attach`] so the
/// round-trip is bit-identical. `base_weights` is a handle to the
/// *shared* corpus weight vector, not tenant state — a serializer would
/// persist only the deltas and re-bind the base on load.
///
/// Checkpoint/replay recovery anchors are intentionally not carried:
/// [`SharedServingFrontend::attach`] re-anchors recovery at the
/// restored state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Trade-off `λ`.
    pub lambda: f64,
    /// Solution size `p`.
    pub p: usize,
    /// Whether the session had (re-)established stability.
    pub stable: bool,
    /// Whether the tenant was quarantined when evicted.
    pub quarantined: bool,
    /// Solution members in insertion order.
    pub members: Vec<ElementId>,
    /// Membership mask over the ground set.
    pub in_set: Vec<bool>,
    /// Cached marginal-dispersion vector `d_u(S)`, verbatim.
    pub gain: Vec<f64>,
    /// Cached total dispersion `d(S)`, verbatim.
    pub dispersion: f64,
    /// Availability mask (`false` ⟺ departed).
    pub active: Vec<bool>,
    /// Sparse metric overrides `(u, v, d)` sorted by pair.
    pub metric_deltas: Vec<(ElementId, ElementId, f64)>,
    /// Sparse weight overrides `(u, w)` sorted by element.
    pub weight_deltas: Vec<(ElementId, f64)>,
    /// The oracle's running `f(S)` accumulator, verbatim.
    pub oracle_value: f64,
    /// Handle to the shared base weight vector (corpus data).
    pub base_weights: Arc<[f64]>,
    /// Cumulative counters, preserved across the round-trip.
    pub stats: TenantStats,
    /// Queued (unflushed) perturbations.
    pub pending: Vec<SessionPerturbation>,
    /// Submission ticks parallel to `pending` (staleness SLO state).
    pub pending_ticks: Vec<u64>,
}

/// Live token-bucket state (lazily initialized at the first
/// rate-limited submission).
#[derive(Debug, Clone, Copy)]
struct RateState {
    tokens: u32,
    last_refill: u64,
}

/// Outcome of one coalesced flush attempt (see
/// [`ServingFrontend::query`]): the drained batch rides along in both
/// non-idle arms — the success arm feeds the recovery replay log, the
/// rejection arm feeds the audit channel.
enum FlushAttempt {
    /// Nothing to flush (empty queue, quarantined, or a zero cap).
    Idle,
    Applied(BatchReport, Vec<SessionPerturbation>),
    Rejected(SessionError, Vec<SessionPerturbation>),
}

/// Per-tenant state: a session over the shared base plus the pending
/// (not yet flushed) perturbation queue and its fault-tolerance state.
struct Tenant<'q, M: Metric, Q: IncrementalOracle + ?Sized> {
    session: DynamicSession<'q, OverlayMetric<Arc<M>>, Q>,
    pending: Vec<SessionPerturbation>,
    /// Submission tick of each queued perturbation (parallel to
    /// `pending`) — the staleness SLO measures the front of this queue.
    pending_ticks: Vec<u64>,
    stats: TenantStats,
    /// Last known-good snapshot (maintained only when
    /// [`AdmissionPolicy::quarantine_after`] is set).
    checkpoint: Option<SessionCheckpoint<OverlayMetric<Arc<M>>>>,
    /// Successfully-flushed batches since the checkpoint was last
    /// re-snapshotted — the bounded tail (at most
    /// [`AdmissionPolicy::checkpoint_every`]` − 1` batches) that
    /// recovery replays on top of the checkpoint to reach the last
    /// known-good state.
    replay_log: Vec<Vec<SessionPerturbation>>,
    /// Successful flushes since the last checkpoint refresh.
    flushes_since_checkpoint: usize,
    /// Rejected flush batches since the last successful one.
    consecutive_rejects: usize,
    quarantined: bool,
    /// Token-bucket state (only when [`AdmissionPolicy::rate_limit`]).
    rate: Option<RateState>,
    /// Audit channel: the most recently rejected batch + typed error.
    last_rejection: Option<RejectionAudit>,
}

/// Multi-tenant serving frontend: `k` independent dynamic sessions over
/// one shared immutable base metric. See the [module docs](self).
///
/// Generic over the boxed oracle type exactly like [`DynamicSession`]:
/// the default serves serial sessions, [`SyncServingFrontend`] serves
/// thread-shareable ones (enabling the `parallel`-feature
/// `query_parallel` entry point).
pub struct ServingFrontend<
    'q,
    M: Metric,
    Q: IncrementalOracle + ?Sized = dyn IncrementalOracle + 'q,
> {
    base: Arc<M>,
    /// Tenant slots; eviction tombstones (`None`) keep every other
    /// tenant's [`TenantId`] stable.
    tenants: Vec<Option<Tenant<'q, M, Q>>>,
    /// Hard cap on stabilization swaps per query (defensive; the
    /// oblivious rule converges in ≤ p swaps on every workload the
    /// equivalence suites drive).
    max_updates_per_query: usize,
    policy: AdmissionPolicy,
    /// Injected time source for the SLO/rate-limit admission bounds.
    clock: Option<Arc<dyn Clock + Send + Sync>>,
    /// Pool distributing fan-out jobs (tenant-per-job); per-session
    /// scan parallelism is routed separately via the sessions' own
    /// pools.
    #[cfg(feature = "parallel")]
    fanout_pool: Option<Arc<crate::pool::ScanPool>>,
}

/// [`ServingFrontend`] whose tenant oracles are shareable across threads
/// (required by the `parallel`-feature `query_parallel` entry point).
pub type SyncServingFrontend<'q, M> =
    ServingFrontend<'q, M, dyn IncrementalOracle + Send + Sync + 'q>;

/// [`ServingFrontend`] whose tenants all read one shared immutable base
/// weight vector through sparse copy-on-write overlays
/// ([`SharedModularOracle`]) — quality memory `O(n) + k·O(Δ_w)` for `k`
/// tenants instead of `k·O(n)`, and the only frontend whose tenants can
/// be [evicted](SharedServingFrontend::evict) to plain-old-data
/// [`TenantSnapshot`]s.
pub type SharedServingFrontend<'q, M> = ServingFrontend<'q, M, SharedModularOracle>;

impl<M: Metric, Q: IncrementalOracle + ?Sized> std::fmt::Debug for ServingFrontend<'_, M, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingFrontend")
            .field("tenants", &self.tenants.iter().flatten().count())
            .field("ground_size", &self.base.len())
            .finish()
    }
}

/// Default cap on stabilization swaps per query.
const DEFAULT_MAX_UPDATES_PER_QUERY: usize = 256;

impl<'q, M: Metric> ServingFrontend<'q, M> {
    /// A frontend over `base` with no tenants yet.
    pub fn new(base: Arc<M>) -> Self {
        Self::with_base(base)
    }

    /// Opens a tenant session seeded with `initial` (typically Greedy B's
    /// output for that tenant's `p`, `λ` and quality — sessions do not
    /// re-solve). The quality function stays borrowed for the frontend's
    /// lifetime; its incremental oracle state is tenant-local.
    ///
    /// # Panics
    ///
    /// As [`DynamicSession::new`].
    pub fn register_tenant<F: SetFunction>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.push_tenant(DynamicSession::new_shared(
            &self.base, quality, lambda, initial,
        ))
    }

    /// Renamed to [`register_tenant`](Self::register_tenant).
    #[deprecated(since = "0.11.0", note = "renamed to `register_tenant`")]
    pub fn add_tenant<F: SetFunction>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.register_tenant(quality, lambda, initial)
    }
}

impl<'q, M: Metric> SyncServingFrontend<'q, M> {
    /// A thread-shareable frontend over `base` with no tenants yet.
    pub fn new_sync(base: Arc<M>) -> Self {
        Self::with_base(base)
    }

    /// Thread-shareable variant of [`ServingFrontend::register_tenant`].
    pub fn register_tenant_sync<F: SetFunction + Sync>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.push_tenant(SyncDynamicSession::new_shared_sync(
            &self.base, quality, lambda, initial,
        ))
    }

    /// Renamed to [`register_tenant_sync`](Self::register_tenant_sync).
    #[deprecated(since = "0.11.0", note = "renamed to `register_tenant_sync`")]
    pub fn add_tenant_sync<F: SetFunction + Sync>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.register_tenant_sync(quality, lambda, initial)
    }
}

impl<'q, M: Metric> SharedServingFrontend<'q, M> {
    /// A shared-weight frontend over `base` with no tenants yet (see
    /// [`SharedServingFrontend`]).
    pub fn new_shared(base: Arc<M>) -> Self {
        Self::with_base(base)
    }

    /// Opens a tenant whose quality oracle reads `weights` (the shared
    /// immutable base vector, `f(S) = Σ_{u∈S} w(u)`) through a
    /// tenant-private sparse overlay: `try_set_weight` perturbations
    /// cost `O(Δ_w)` per tenant instead of cloning the `O(n)` vector
    /// per tenant.
    ///
    /// # Panics
    ///
    /// Panics when `weights` disagrees with the base metric's ground
    /// set, contains non-finite or negative entries, or `initial` is
    /// malformed (as [`DynamicSession::new`]).
    pub fn register_tenant_shared(
        &mut self,
        weights: Arc<[f64]>,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        assert_eq!(
            weights.len(),
            self.base.len(),
            "base weights and base metric must share a ground set"
        );
        let mut oracle = SharedModularOracle::new(weights);
        for &u in initial {
            oracle.insert(u);
        }
        let session = DynamicSession::from_parts(
            OverlayMetric::new(Arc::clone(&self.base)),
            Box::new(oracle),
            lambda,
            initial,
        );
        self.push_tenant(session)
    }

    /// Number of weight overrides (`Δ_w`) currently held by `tenant`'s
    /// overlay — the tenant's share of quality-side resident memory.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is unknown or evicted.
    pub fn weight_delta_count(&self, tenant: TenantId) -> usize {
        self.tenant(tenant).session.quality_oracle().delta_count()
    }

    /// Spills `tenant` to a plain-old-data [`TenantSnapshot`] and frees
    /// its slot (a tombstone: other tenants' ids are untouched; this
    /// tenant's id becomes invalid). Quarantined tenants are evictable —
    /// the flag rides along. The snapshot captures the session's cached
    /// floats verbatim, so [`attach`](Self::attach) restores the tenant
    /// bit-identically (the candidate cache restarts cold — the same
    /// documented `ScanExtent`-only divergence as
    /// [`DynamicSession::rollback_to`]).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is unknown or already evicted.
    pub fn evict(&mut self, tenant: TenantId) -> TenantSnapshot {
        let t = match self.tenants.get_mut(tenant.index()).and_then(Option::take) {
            Some(t) => t,
            None => panic!("no tenant {tenant} (unknown or evicted)"),
        };
        let (members, in_set, gain, dispersion) = t.session.solution_raw();
        let oracle = t.session.quality_oracle();
        TenantSnapshot {
            lambda: t.session.lambda(),
            p: t.session.p(),
            stable: t.session.is_stable(),
            quarantined: t.quarantined,
            active: t.session.availability_mask().to_vec(),
            metric_deltas: t.session.metric().override_deltas(),
            weight_deltas: oracle.weight_deltas(),
            oracle_value: oracle.value(),
            base_weights: Arc::clone(oracle.base()),
            members,
            in_set,
            gain,
            dispersion,
            stats: t.stats,
            pending: t.pending,
            pending_ticks: t.pending_ticks,
        }
    }

    /// Re-attaches a [`TenantSnapshot`] under a fresh [`TenantId`]
    /// (reusing the lowest tombstoned slot when one exists). The
    /// overlays are rebuilt by replaying the sparse deltas in their
    /// sorted snapshot order and the cached floats are restored
    /// verbatim, so queries answer bit-identically to the evicted
    /// tenant. Recovery (checkpoint + replay log) re-anchors at the
    /// restored state.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot is internally inconsistent or does not
    /// match this frontend's base metric ground set.
    pub fn attach(&mut self, snapshot: TenantSnapshot) -> TenantId {
        let TenantSnapshot {
            lambda,
            p,
            stable,
            quarantined,
            members,
            in_set,
            gain,
            dispersion,
            active,
            metric_deltas,
            weight_deltas,
            oracle_value,
            base_weights,
            stats,
            pending,
            pending_ticks,
        } = snapshot;
        let mut metric = OverlayMetric::new(Arc::clone(&self.base));
        for (u, v, d) in metric_deltas {
            metric.set_distance(u, v, d);
        }
        let oracle =
            SharedModularOracle::from_parts(base_weights, &weight_deltas, &in_set, oracle_value);
        let dist = SolutionState::from_raw(members, in_set, gain, dispersion);
        let session = DynamicSession::from_restored(
            metric,
            Box::new(oracle),
            lambda,
            dist,
            active,
            p,
            stable,
        );
        let id = self.push_tenant(session);
        let t = match self.tenants.get_mut(id.index()).and_then(Option::as_mut) {
            Some(t) => t,
            None => unreachable!("push_tenant returned a live slot"),
        };
        t.stats = stats;
        t.pending = pending;
        t.pending_ticks = pending_ticks;
        t.quarantined = quarantined;
        id
    }
}

impl<'q, M: Metric, Q: IncrementalOracle + ?Sized> ServingFrontend<'q, M, Q> {
    fn with_base(base: Arc<M>) -> Self {
        Self {
            base,
            tenants: Vec::new(),
            max_updates_per_query: DEFAULT_MAX_UPDATES_PER_QUERY,
            policy: AdmissionPolicy::default(),
            clock: None,
            #[cfg(feature = "parallel")]
            fanout_pool: None,
        }
    }

    fn push_tenant(&mut self, session: DynamicSession<'q, OverlayMetric<Arc<M>>, Q>) -> TenantId {
        // With quarantine enabled every tenant starts with a known-good
        // anchor, so recovery works even before the first clean flush.
        let checkpoint = self
            .policy
            .quarantine_after
            .is_some()
            .then(|| session.checkpoint());
        let tenant = Tenant {
            session,
            pending: Vec::new(),
            pending_ticks: Vec::new(),
            stats: TenantStats::default(),
            checkpoint,
            replay_log: Vec::new(),
            flushes_since_checkpoint: 0,
            consecutive_rejects: 0,
            quarantined: false,
            rate: None,
            last_rejection: None,
        };
        // Reuse the lowest tombstone so eviction does not leak slots.
        if let Some(idx) = self.tenants.iter().position(Option::is_none) {
            self.tenants[idx] = Some(tenant);
            TenantId(idx)
        } else {
            self.tenants.push(Some(tenant));
            TenantId(self.tenants.len() - 1)
        }
    }

    /// Panicking lookup: every by-id entry point funnels through here so
    /// unknown and evicted tenants fail with one message.
    fn tenant(&self, tenant: TenantId) -> &Tenant<'q, M, Q> {
        match self.tenants.get(tenant.index()).and_then(Option::as_ref) {
            Some(t) => t,
            None => panic!("no tenant {tenant} (unknown or evicted)"),
        }
    }

    fn tenant_mut(&mut self, tenant: TenantId) -> &mut Tenant<'q, M, Q> {
        match self
            .tenants
            .get_mut(tenant.index())
            .and_then(Option::as_mut)
        {
            Some(t) => t,
            None => panic!("no tenant {tenant} (unknown or evicted)"),
        }
    }

    /// The shared base metric.
    pub fn base(&self) -> &Arc<M> {
        &self.base
    }

    /// Number of live (non-evicted) tenant sessions.
    pub fn tenant_count(&self) -> usize {
        self.tenants.iter().flatten().count()
    }

    /// Handles of all live tenants, ascending.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| TenantId(i)))
            .collect()
    }

    /// Live, unquarantined tenants with queued work — the "ready" set a
    /// [`drain_all`](Self::drain_all) flush cycle serves.
    fn ready_ids(&self) -> Vec<TenantId> {
        self.tenants
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (i, t)))
            .filter(|(_, t)| !t.quarantined && !t.pending.is_empty())
            .map(|(i, _)| TenantId(i))
            .collect()
    }

    /// Injects the [`Clock`] the admission layer's staleness SLO and
    /// token-bucket refill are measured against (builder style). The
    /// frontend never reads a wall clock itself.
    pub fn with_clock(mut self, clock: Arc<dyn Clock + Send + Sync>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Current tick of the injected clock (0 when none is configured).
    fn now(&self) -> u64 {
        self.clock.as_ref().map_or(0, |c| c.now_ticks())
    }

    /// Caps the stabilization swaps spent per query (builder style;
    /// default 256 — far above the ≤ p swaps the oblivious rule needs in
    /// practice).
    pub fn with_max_updates_per_query(mut self, max_updates: usize) -> Self {
        self.max_updates_per_query = max_updates;
        self
    }

    /// Installs an [`AdmissionPolicy`] (builder style; default
    /// unbounded). When [`AdmissionPolicy::quarantine_after`] is set this
    /// also anchors every *existing* tenant with a checkpoint of its
    /// current state.
    pub fn with_admission_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        if policy.quarantine_after.is_some() {
            for t in self.tenants.iter_mut().flatten() {
                if t.checkpoint.is_none() {
                    t.checkpoint = Some(t.session.checkpoint());
                }
            }
        }
        self
    }

    /// The active [`AdmissionPolicy`].
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Queues a perturbation for `tenant` without flushing — it is
    /// repaired as part of the coalesced batch at that tenant's next
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range, its queue is full, or it is
    /// quarantined — use [`try_submit`](Self::try_submit) when the
    /// stream is untrusted or an [`AdmissionPolicy`] is active.
    pub fn submit(&mut self, tenant: TenantId, perturbation: SessionPerturbation) {
        if let Err(e) = self.try_submit(tenant, perturbation) {
            panic!("submit rejected: {e}");
        }
    }

    /// Queues a perturbation for `tenant`, subject to the
    /// [`AdmissionPolicy`]. This is the backpressure-aware ingestion
    /// path: no input can panic the frontend through it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownTenant`], [`SubmitError::Quarantined`],
    /// [`SubmitError::RateLimited`] (token bucket empty), or
    /// [`SubmitError::QueueFull`] (the queue drains at the tenant's next
    /// query). Malformed perturbation *contents* are not checked here —
    /// they are validated (and rejected batch-at-a-time, with rollback)
    /// at flush time.
    pub fn try_submit(
        &mut self,
        tenant: TenantId,
        perturbation: SessionPerturbation,
    ) -> Result<(), SubmitError> {
        let now = self.now();
        let policy = self.policy;
        let Some(t) = self
            .tenants
            .get_mut(tenant.index())
            .and_then(Option::as_mut)
        else {
            return Err(SubmitError::UnknownTenant { tenant });
        };
        if t.quarantined {
            return Err(SubmitError::Quarantined { tenant });
        }
        if let Some(max_pending) = policy.max_pending {
            if t.pending.len() >= max_pending {
                return Err(SubmitError::QueueFull {
                    tenant,
                    max_pending,
                });
            }
        }
        // After the queue check so a backpressured submit does not also
        // burn a token.
        if let Some(bucket) = policy.rate_limit {
            let rate = t.rate.get_or_insert(RateState {
                tokens: bucket.capacity,
                last_refill: now,
            });
            // checked_div doubles as the ticks_per_token == 0 guard
            // (a zero-period bucket never refills past its burst).
            let minted = now
                .saturating_sub(rate.last_refill)
                .checked_div(bucket.ticks_per_token)
                .unwrap_or(0);
            if minted > 0 {
                let minted32 = u32::try_from(minted).unwrap_or(bucket.capacity);
                rate.tokens = rate.tokens.saturating_add(minted32).min(bucket.capacity);
                rate.last_refill += minted * bucket.ticks_per_token;
            }
            if rate.tokens == 0 {
                return Err(SubmitError::RateLimited { tenant });
            }
            rate.tokens -= 1;
        }
        t.pending.push(perturbation);
        t.pending_ticks.push(now);
        Ok(())
    }

    /// `true` when `tenant` is quarantined (consecutive rejected flushes
    /// reached [`AdmissionPolicy::quarantine_after`], or its queue blew
    /// the [`AdmissionPolicy::max_staleness_ticks`] SLO).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is unknown or evicted.
    pub fn is_quarantined(&self, tenant: TenantId) -> bool {
        self.tenant(tenant).quarantined
    }

    /// Lifts `tenant`'s quarantine: drops whatever is still queued,
    /// rolls the session back to its last known-good checkpoint (when
    /// one is maintained), and re-opens submissions. Returns `true` when
    /// a checkpoint was restored.
    ///
    /// Other tenants are untouched — their sessions never shared mutable
    /// state with the quarantined one.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn recover(&mut self, tenant: TenantId) -> bool {
        let max_updates = self.max_updates_per_query;
        let t = self.tenant_mut(tenant);
        let restored = Self::restore_last_known_good(t, max_updates);
        t.pending.clear();
        t.pending_ticks.clear();
        t.stats.staleness = 0;
        t.quarantined = false;
        t.consecutive_rejects = 0;
        restored
    }

    /// Rolls the session back to its checkpoint and replays the logged
    /// known-good tail (each batch re-stabilized exactly as
    /// [`respond`](Self::respond) did when it first succeeded), landing
    /// bit-for-bit on the last known-good state. `false` when no
    /// checkpoint is maintained.
    fn restore_last_known_good(t: &mut Tenant<'q, M, Q>, max_updates: usize) -> bool {
        let Some(checkpoint) = &t.checkpoint else {
            return false;
        };
        t.session.rollback_to(checkpoint);
        for batch in &t.replay_log {
            // The batch validated when it first flushed, so the
            // unvalidated replay applies the identical mutations.
            let report = t.session.ingest_unchecked(batch);
            let swaps = usize::from(report.outcome.swap.is_some());
            t.session
                .update_until_stable(max_updates.saturating_sub(swaps));
        }
        true
    }

    /// Number of queued (unflushed) perturbations for `tenant`.
    pub fn pending(&self, tenant: TenantId) -> usize {
        self.tenant(tenant).pending.len()
    }

    /// The tenant's maintained solution, without flushing its queue.
    pub fn solution(&self, tenant: TenantId) -> &[ElementId] {
        self.tenant(tenant).session.solution()
    }

    /// The tenant's session (read access; perturb through
    /// [`submit`](Self::submit) so coalescing stays intact).
    pub fn session(&self, tenant: TenantId) -> &DynamicSession<'q, OverlayMetric<Arc<M>>, Q> {
        &self.tenant(tenant).session
    }

    /// Cumulative counters for `tenant`.
    pub fn stats(&self, tenant: TenantId) -> TenantStats {
        self.tenant(tenant).stats
    }

    /// The audit channel: `tenant`'s most recently rejected flush batch
    /// and its typed error, or `None` if no flush was ever rejected.
    /// Survives successful flushes and recovery; overwritten by the
    /// next rejection.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is unknown or evicted.
    pub fn last_rejection(&self, tenant: TenantId) -> Option<&RejectionAudit> {
        self.tenant(tenant).last_rejection.as_ref()
    }

    /// Flushes (up to [`AdmissionPolicy::max_flush_per_query`] of)
    /// `tenant`'s queued perturbations as one coalesced, *validated*
    /// [`DynamicSession::ingest`], stabilizes, and answers with the
    /// maintained solution.
    ///
    /// A rejected batch is kept on the audit channel
    /// ([`last_rejection`](Self::last_rejection)) but discarded from the
    /// session — it rolls back bit-for-bit and the response carries the
    /// typed error in [`QueryResponse::rejected`]; a quarantined tenant
    /// answers from its last good state without flushing. No request
    /// content can panic this entry point.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is unknown or evicted.
    pub fn query(&mut self, tenant: TenantId) -> QueryResponse {
        let max_updates = self.max_updates_per_query;
        let policy = self.policy;
        let now = self.now();
        let t = self.tenant_mut(tenant);
        Self::query_tenant(t, tenant, policy, max_updates, now)
    }

    /// The whole per-tenant query body — staleness check, coalesced
    /// flush, stabilize, respond. Both the serial entry points and the
    /// `parallel`-feature fan-out jobs run exactly this function, which
    /// is what makes the fan-out bit-identical to the serial loop by
    /// construction.
    fn query_tenant(
        t: &mut Tenant<'q, M, Q>,
        tenant: TenantId,
        policy: AdmissionPolicy,
        max_updates: usize,
        now: u64,
    ) -> QueryResponse {
        Self::quarantine_if_stale(t, policy, now);
        let flush = Self::flush_pending(t, policy, |session, batch| session.ingest(batch));
        Self::respond(t, tenant, flush, max_updates, policy)
    }

    /// Enforces [`AdmissionPolicy::max_staleness_ticks`]: a queue whose
    /// oldest entry has lagged past the SLO can no longer be served in
    /// time — drop it and quarantine. The session state is the last
    /// good flush, so unlike poison quarantine nothing rolls back.
    fn quarantine_if_stale(t: &mut Tenant<'q, M, Q>, policy: AdmissionPolicy, now: u64) {
        let Some(limit) = policy.max_staleness_ticks else {
            return;
        };
        if t.quarantined {
            return;
        }
        let Some(&oldest) = t.pending_ticks.first() else {
            return;
        };
        if now.saturating_sub(oldest) > limit {
            t.quarantined = true;
            t.pending.clear();
            t.pending_ticks.clear();
        }
    }

    /// Answers a set of *distinct* tenants in request order — the
    /// serial fan-out/join reference the `parallel`-feature
    /// `query_many_parallel` is pinned against.
    ///
    /// # Panics
    ///
    /// Panics on duplicate handles (two jobs would race on one tenant)
    /// or on unknown/evicted tenants.
    pub fn query_many(&mut self, tenants: &[TenantId]) -> Vec<QueryResponse> {
        Self::assert_distinct(tenants);
        tenants.iter().map(|&t| self.query(t)).collect()
    }

    /// One flush cycle over the ready set (live, unquarantined tenants
    /// with queued work), ascending by id: each ready tenant gets one
    /// [`query`](Self::query). Tenants with empty queues are skipped —
    /// a pure read costs nothing through this path.
    pub fn drain_all(&mut self) -> Vec<QueryResponse> {
        let ready = self.ready_ids();
        self.query_many(&ready)
    }

    fn assert_distinct(tenants: &[TenantId]) {
        let mut seen: Vec<usize> = tenants.iter().map(|t| t.index()).collect();
        seen.sort_unstable();
        for w in seen.windows(2) {
            assert!(w[0] != w[1], "duplicate tenant {} in fan-out", w[0]);
        }
    }

    /// Runs a tagged request stream in order, answering every
    /// [`ServingRequest::Query`]. Perturbations between a tenant's
    /// queries coalesce into one batch regardless of how other tenants'
    /// requests interleave.
    pub fn process<I>(&mut self, stream: I) -> Vec<QueryResponse>
    where
        I: IntoIterator<Item = ServingRequest>,
    {
        let mut responses = Vec::new();
        for request in stream {
            match request {
                ServingRequest::Perturb {
                    tenant,
                    perturbation,
                } => self.submit(tenant, perturbation),
                ServingRequest::Query { tenant } => responses.push(self.query(tenant)),
            }
        }
        responses
    }

    /// Drains the admission-bounded front of the pending queue through
    /// `apply` (a validating, all-or-nothing batch application). A
    /// quarantined tenant flushes nothing. The drained batch rides in
    /// the returned [`FlushAttempt`] either way — into the recovery
    /// replay log on success, onto the audit channel on rejection.
    fn flush_pending(
        t: &mut Tenant<'q, M, Q>,
        policy: AdmissionPolicy,
        apply: impl FnOnce(
            &mut DynamicSession<'q, OverlayMetric<Arc<M>>, Q>,
            &[SessionPerturbation],
        ) -> Result<BatchReport, SessionError>,
    ) -> FlushAttempt {
        if t.quarantined || t.pending.is_empty() {
            return FlushAttempt::Idle;
        }
        let take = policy
            .max_flush_per_query
            .map_or(t.pending.len(), |cap| cap.min(t.pending.len()));
        if take == 0 {
            return FlushAttempt::Idle;
        }
        let batch: Vec<SessionPerturbation> = t.pending.drain(..take).collect();
        t.pending_ticks.drain(..take);
        match apply(&mut t.session, &batch) {
            Ok(report) => FlushAttempt::Applied(report, batch),
            Err(error) => FlushAttempt::Rejected(error, batch),
        }
    }

    /// Stabilizes and assembles the response + fault-tolerance
    /// bookkeeping after a flush attempt.
    fn respond(
        t: &mut Tenant<'q, M, Q>,
        tenant: TenantId,
        flush: FlushAttempt,
        max_updates: usize,
        policy: AdmissionPolicy,
    ) -> QueryResponse {
        let mut swaps = 0usize;
        let mut flushed = 0usize;
        let mut rejected = None;
        let mut applied_batch = None;
        match flush {
            FlushAttempt::Idle => {}
            FlushAttempt::Applied(report, batch) => {
                flushed = report.ingested;
                if report.outcome.swap.is_some() {
                    swaps += 1;
                }
                t.stats.batches += 1;
                t.stats.perturbations += flushed;
                t.consecutive_rejects = 0;
                applied_batch = Some(batch);
            }
            FlushAttempt::Rejected(error, batch) => {
                // The batch was discarded and the session rolled back by
                // `ingest`; keep the evidence and track the streak.
                t.stats.rejected += 1;
                t.consecutive_rejects += 1;
                t.last_rejection = Some(RejectionAudit {
                    batch,
                    error: error.clone(),
                });
                rejected = Some(error);
                if let Some(threshold) = policy.quarantine_after {
                    if t.consecutive_rejects >= threshold {
                        t.quarantined = true;
                        // The rest of the queue came from the same source
                        // as the poison — drop it, and re-anchor on the
                        // last known-good state (checkpoint plus the
                        // logged since-checkpoint tail; the rejection
                        // rollback already restored it, this is the
                        // defensive path).
                        t.pending.clear();
                        t.pending_ticks.clear();
                        Self::restore_last_known_good(t, max_updates);
                    }
                }
            }
        }
        swaps += t
            .session
            .update_until_stable(max_updates.saturating_sub(swaps));
        if rejected.is_none() && policy.quarantine_after.is_some() {
            if let Some(batch) = applied_batch {
                // Known-good, stabilized state. Refresh the recovery
                // anchor only every `checkpoint_every` successful
                // flushes (the snapshot clones the full session state —
                // ROADMAP iv-b); between refreshes the batch joins the
                // bounded replay tail recovery re-applies on top of the
                // checkpoint.
                t.flushes_since_checkpoint += 1;
                if t.flushes_since_checkpoint >= policy.checkpoint_every.max(1) {
                    t.checkpoint = Some(t.session.checkpoint());
                    t.replay_log.clear();
                    t.flushes_since_checkpoint = 0;
                } else {
                    t.replay_log.push(batch);
                }
            }
        }
        t.stats.queries += 1;
        t.stats.swaps += swaps;
        t.stats.staleness = t.pending.len();
        QueryResponse {
            tenant,
            solution: t.session.solution().to_vec(),
            objective: t.session.objective(),
            flushed,
            swaps,
            rejected,
        }
    }
}

#[cfg(feature = "parallel")]
impl<'q, M: Metric, Q: IncrementalOracle + ?Sized> ServingFrontend<'q, M, Q> {
    /// Routes every *existing* tenant session's parallel scans and the
    /// fan-out scheduler through an explicit [`crate::pool::ScanPool`]
    /// (builder style): one persistent worker set serves all tenants.
    /// Results are bit-identical for any pool.
    pub fn with_scan_pool(mut self, pool: Arc<crate::pool::ScanPool>) -> Self {
        for t in self.tenants.iter_mut().flatten() {
            t.session.set_scan_pool(Arc::clone(&pool));
        }
        self.fanout_pool = Some(pool);
        self
    }
}

#[cfg(feature = "parallel")]
impl<'q, M: Metric + Send + Sync> SyncServingFrontend<'q, M> {
    /// [`ServingFrontend::query`] with the flush running the session's
    /// thread-parallel scans (bit-identical responses — chunking is
    /// scheduling only; validation and rollback semantics are identical
    /// to the serial path).
    pub fn query_parallel(&mut self, tenant: TenantId) -> QueryResponse {
        let max_updates = self.max_updates_per_query;
        let policy = self.policy;
        let now = self.now();
        let t = self.tenant_mut(tenant);
        Self::quarantine_if_stale(t, policy, now);
        let flush = Self::flush_pending(t, policy, |session, batch| {
            session.try_apply_batch_parallel(batch)
        });
        Self::respond(t, tenant, flush, max_updates, policy)
    }
}

#[cfg(feature = "parallel")]
impl<'q, M, Q> ServingFrontend<'q, M, Q>
where
    M: Metric + Send + Sync,
    Q: IncrementalOracle + Send + Sync + ?Sized,
{
    /// Fan-out/join [`ServingFrontend::query_many`]: the requested
    /// (distinct) tenants are partitioned into independent jobs on the
    /// configured [`crate::pool::ScanPool`] (the
    /// [`with_scan_pool`](Self::with_scan_pool) pool, falling back to
    /// the process-global one) and the responses are joined in request
    /// order. Each job runs the *identical serial* per-tenant flush +
    /// stabilize body ([`ServingFrontend::query`]), so responses are
    /// bit-identical to the serial loop — the pool decides which thread
    /// serves a tenant, never what it computes. Jobs never submit scan
    /// work back to the fan-out pool (that would deadlock a pool with
    /// no work-stealing while blocked), so per-tenant scans inside the
    /// jobs stay serial.
    ///
    /// # Panics
    ///
    /// Panics on duplicate handles or unknown/evicted tenants, and
    /// propagates any tenant-job panic after the join (same latch
    /// discipline as the pooled scans).
    pub fn query_many_parallel(&mut self, tenants: &[TenantId]) -> Vec<QueryResponse> {
        let max_updates = self.max_updates_per_query;
        let policy = self.policy;
        let now = self.now();
        let mut slots: Vec<Option<QueryResponse>> = Vec::with_capacity(tenants.len());
        slots.resize_with(tenants.len(), || None);
        {
            let cells = Self::disjoint_tenants_mut(&mut self.tenants, tenants);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = cells
                .into_iter()
                .zip(slots.iter_mut())
                .map(|((_, id, t), slot)| {
                    Box::new(move || {
                        *slot = Some(Self::query_tenant(t, id, policy, max_updates, now));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            let pool = self
                .fanout_pool
                .as_deref()
                .unwrap_or_else(|| crate::pool::ScanPool::global());
            pool.run_jobs(jobs);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Some(response) => response,
                None => panic!("fan-out job dropped its response"),
            })
            .collect()
    }

    /// Fan-out/join [`ServingFrontend::drain_all`]: one parallel flush
    /// cycle over the ready set, joined in ascending id order.
    pub fn drain_all_parallel(&mut self) -> Vec<QueryResponse> {
        let ready = self.ready_ids();
        self.query_many_parallel(&ready)
    }

    /// Splits the slot vector into disjoint `&mut` borrows of the
    /// requested tenants (sorted-walk `split_at_mut`), returned in
    /// request order as `(request position, id, tenant)`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate, unknown or evicted tenants.
    #[allow(clippy::type_complexity)]
    fn disjoint_tenants_mut<'a>(
        tenants: &'a mut [Option<Tenant<'q, M, Q>>],
        ids: &[TenantId],
    ) -> Vec<(usize, TenantId, &'a mut Tenant<'q, M, Q>)> {
        let mut order: Vec<(usize, usize)> = ids
            .iter()
            .enumerate()
            .map(|(pos, id)| (id.index(), pos))
            .collect();
        order.sort_unstable();
        for w in order.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate tenant {} in fan-out", w[0].0);
        }
        let mut out: Vec<(usize, TenantId, &'a mut Tenant<'q, M, Q>)> =
            Vec::with_capacity(order.len());
        let mut rest = tenants;
        let mut base = 0usize;
        for (idx, pos) in order {
            assert!(
                idx < base + rest.len(),
                "no tenant {idx} (unknown or evicted)"
            );
            let (head, tail) = rest.split_at_mut(idx - base + 1);
            match head[idx - base].as_mut() {
                Some(t) => out.push((pos, TenantId::from_index(idx), t)),
                None => panic!("no tenant {idx} (unknown or evicted)"),
            }
            rest = tail;
            base = idx + 1;
        }
        out.sort_unstable_by_key(|&(pos, _, _)| pos);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_b, GreedyBConfig};
    use crate::problem::DiversificationProblem;
    use msd_metric::DistanceMatrix;
    use msd_submodular::ModularFunction;

    fn base_and_quality(n: usize) -> (Arc<DistanceMatrix>, ModularFunction) {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        (Arc::new(metric), ModularFunction::new(weights))
    }

    #[test]
    fn queries_coalesce_pending_perturbations() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let t = frontend.register_tenant(&quality, 0.3, &init);

        frontend.submit(
            t,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 7,
                value: 3.0,
            },
        );
        frontend.submit(t, SessionPerturbation::SetWeight { u: 23, value: 4.0 });
        assert_eq!(frontend.pending(t), 2);

        let response = frontend.query(t);
        assert_eq!(response.flushed, 2);
        assert_eq!(frontend.pending(t), 0);
        assert_eq!(response.solution.len(), 5);
        let stats = frontend.stats(t);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.perturbations, 2);

        // A pure read flushes nothing and answers from the caches.
        let read = frontend.query(t);
        assert_eq!(read.flushed, 0);
        assert_eq!(read.solution, response.solution);
    }

    #[test]
    fn tenants_are_isolated_and_base_is_untouched() {
        let (base, quality) = base_and_quality(20);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.25);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let original = base.distance(1, 5);

        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let a = frontend.register_tenant(&quality, 0.25, &init);
        let b = frontend.register_tenant(&quality, 0.25, &init);

        // Conflicting rewrites of the same pair.
        frontend.submit(
            a,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 5,
                value: 0.5,
            },
        );
        frontend.submit(
            b,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 5,
                value: 9.0,
            },
        );
        frontend.query(a);
        frontend.query(b);

        assert_eq!(frontend.session(a).metric().distance(1, 5), 0.5);
        assert_eq!(frontend.session(b).metric().distance(1, 5), 9.0);
        assert_eq!(base.distance(1, 5), original);
    }

    #[test]
    fn stream_processing_interleaves_tenants() {
        let (base, quality) = base_and_quality(16);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.4);
        let init = greedy_b(&problem, 3, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let a = frontend.register_tenant(&quality, 0.4, &init);
        let b = frontend.register_tenant(&quality, 1.0, &init);

        let responses = frontend.process([
            ServingRequest::Perturb {
                tenant: a,
                perturbation: SessionPerturbation::SetWeight { u: 15, value: 3.0 },
            },
            ServingRequest::Perturb {
                tenant: b,
                perturbation: SessionPerturbation::SetDistance {
                    u: 0,
                    v: 9,
                    value: 2.0,
                },
            },
            ServingRequest::Perturb {
                tenant: a,
                perturbation: SessionPerturbation::SetDistance {
                    u: 2,
                    v: 3,
                    value: 1.5,
                },
            },
            ServingRequest::Query { tenant: a },
            ServingRequest::Query { tenant: b },
        ]);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].tenant, a);
        assert_eq!(responses[0].flushed, 2); // a's two perturbations coalesced
        assert_eq!(responses[1].tenant, b);
        assert_eq!(responses[1].flushed, 1);
    }

    #[test]
    fn bounded_flush_spreads_a_burst_and_reports_staleness() {
        let (base, quality) = base_and_quality(20);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let mut frontend =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(AdmissionPolicy {
                max_flush_per_query: Some(3),
                max_pending: Some(10),
                ..AdmissionPolicy::default()
            });
        let t = frontend.register_tenant(&quality, 0.3, &init);
        for i in 0..10u32 {
            frontend
                .try_submit(
                    t,
                    SessionPerturbation::SetDistance {
                        u: i,
                        v: i + 10,
                        value: 1.0 + f64::from(i) * 0.125,
                    },
                )
                .unwrap();
        }
        // Queue is at depth: backpressure, not growth.
        let err = frontend
            .try_submit(t, SessionPerturbation::SetWeight { u: 0, value: 1.0 })
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                tenant: t,
                max_pending: 10
            }
        );
        assert!(err.to_string().contains("queue full"));
        // Each query drains at most 3, front first; staleness falls
        // monotonically to zero.
        let mut last_staleness = usize::MAX;
        let mut total_flushed = 0usize;
        while frontend.pending(t) > 0 {
            let r = frontend.query(t);
            assert!(r.flushed <= 3);
            assert!(r.rejected.is_none());
            total_flushed += r.flushed;
            let staleness = frontend.stats(t).staleness;
            assert!(staleness < last_staleness, "staleness must shrink");
            last_staleness = staleness;
        }
        assert_eq!(total_flushed, 10);
        assert_eq!(frontend.stats(t).staleness, 0);
        // The spread-out answer matches an unbounded frontend fed the
        // same stream.
        let mut unbounded = ServingFrontend::new(Arc::clone(&base));
        let u = unbounded.register_tenant(&quality, 0.3, &init);
        for i in 0..10u32 {
            unbounded.submit(
                u,
                SessionPerturbation::SetDistance {
                    u: i,
                    v: i + 10,
                    value: 1.0 + f64::from(i) * 0.125,
                },
            );
        }
        let ru = unbounded.query(u);
        assert_eq!(frontend.query(t).solution, ru.solution);
    }

    #[test]
    fn rejected_flushes_answer_last_good_state_and_quarantine_isolates() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let mut frontend =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(AdmissionPolicy {
                quarantine_after: Some(2),
                ..AdmissionPolicy::default()
            });
        let poisoner = frontend.register_tenant(&quality, 0.3, &init);
        let healthy = frontend.register_tenant(&quality, 0.3, &init);
        // Mirror of the healthy tenant in a frontend that never sees the
        // poisoner: its answers must be bit-identical throughout.
        let mut mirror_frontend = ServingFrontend::new(Arc::clone(&base));
        let mirror = mirror_frontend.register_tenant(&quality, 0.3, &init);

        // A good flush establishes the checkpoint.
        frontend.submit(
            poisoner,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 9,
                value: 2.5,
            },
        );
        let good = frontend.query(poisoner);
        assert!(good.rejected.is_none());

        // Two consecutive poisoned batches → quarantine.
        for _ in 0..2 {
            frontend.submit(
                poisoner,
                SessionPerturbation::SetDistance {
                    u: 1,
                    v: 2,
                    value: f64::NAN,
                },
            );
            frontend.submit(healthy, SessionPerturbation::SetWeight { u: 3, value: 2.0 });
            mirror_frontend.submit(mirror, SessionPerturbation::SetWeight { u: 3, value: 2.0 });
            let rp = frontend.query(poisoner);
            assert!(matches!(
                rp.rejected,
                Some(SessionError::Rejected { index: 0, .. })
            ));
            // Degraded, not down: the poisoner still gets its last good
            // answer.
            assert_eq!(rp.solution, good.solution);
            assert_eq!(rp.objective, good.objective);
            // The healthy tenant is untouched by its neighbor's faults.
            let rh = frontend.query(healthy);
            let rm = mirror_frontend.query(mirror);
            assert_eq!(rh.solution, rm.solution);
            assert_eq!(rh.objective.to_bits(), rm.objective.to_bits());
            assert!(rh.rejected.is_none());
        }
        assert!(frontend.is_quarantined(poisoner));
        assert!(!frontend.is_quarantined(healthy));
        assert_eq!(frontend.stats(poisoner).rejected, 2);

        // Quarantined: submissions refused, queries served, others fine.
        assert_eq!(
            frontend
                .try_submit(
                    poisoner,
                    SessionPerturbation::SetWeight { u: 0, value: 1.0 }
                )
                .unwrap_err(),
            SubmitError::Quarantined { tenant: poisoner }
        );
        let rq = frontend.query(poisoner);
        assert_eq!(rq.solution, good.solution);
        assert_eq!(rq.flushed, 0);

        // Recovery restores the last good checkpoint and re-opens the
        // tenant; subsequent valid traffic flows normally.
        assert!(frontend.recover(poisoner));
        assert!(!frontend.is_quarantined(poisoner));
        assert_eq!(frontend.solution(poisoner), &good.solution[..]);
        frontend
            .try_submit(
                poisoner,
                SessionPerturbation::SetWeight { u: 5, value: 3.0 },
            )
            .unwrap();
        let back = frontend.query(poisoner);
        assert!(back.rejected.is_none());
        assert_eq!(back.flushed, 1);

        // Unknown tenants are an error, not a panic, through try_submit.
        let ghost = TenantId::from_index(99);
        assert_eq!(
            frontend
                .try_submit(ghost, SessionPerturbation::SetWeight { u: 0, value: 1.0 })
                .unwrap_err(),
            SubmitError::UnknownTenant { tenant: ghost }
        );
    }

    #[test]
    fn periodic_checkpoints_recover_bit_identically_to_per_flush_checkpoints() {
        // Regression for the checkpoint cost fix (ROADMAP iv-b): with
        // `checkpoint_every > 1` the recovery anchor is stale by up to
        // `checkpoint_every − 1` good flushes, and recovery must replay
        // that logged tail — `recover()` has to land bit-for-bit on the
        // same last-known-good state as the legacy refresh-every-flush
        // cadence.
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let policy_every = |checkpoint_every: usize| AdmissionPolicy {
            quarantine_after: Some(2),
            checkpoint_every,
            ..AdmissionPolicy::default()
        };
        let mut per_flush =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(policy_every(1));
        let a = per_flush.register_tenant(&quality, 0.3, &init);
        let mut periodic =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(policy_every(3));
        let b = periodic.register_tenant(&quality, 0.3, &init);

        // Five good flushes: the cadence-3 frontend refreshes its anchor
        // at flush 3 and holds flushes 4–5 in the replay log, so the
        // checkpoint alone is genuinely stale when the poison arrives.
        let mut last_good = None;
        for i in 0..5u32 {
            let perturbation = SessionPerturbation::SetDistance {
                u: i,
                v: i + 7,
                value: 1.5 + f64::from(i) * 0.25,
            };
            per_flush.submit(a, perturbation);
            periodic.submit(b, perturbation);
            let ra = per_flush.query(a);
            let rb = periodic.query(b);
            assert!(ra.rejected.is_none() && rb.rejected.is_none());
            assert_eq!(ra.solution, rb.solution);
            assert_eq!(ra.objective.to_bits(), rb.objective.to_bits());
            last_good = Some(ra);
        }
        let last_good = last_good.unwrap();

        // Two consecutive poisoned batches quarantine both tenants.
        for _ in 0..2 {
            let poison = SessionPerturbation::SetDistance {
                u: 1,
                v: 2,
                value: f64::NAN,
            };
            per_flush.submit(a, poison);
            periodic.submit(b, poison);
            assert!(per_flush.query(a).rejected.is_some());
            assert!(periodic.query(b).rejected.is_some());
        }
        assert!(per_flush.is_quarantined(a) && periodic.is_quarantined(b));
        // Quarantined answers already come from the last good state.
        assert_eq!(periodic.query(b).solution, last_good.solution);

        // Recovery: checkpoint + replayed tail ≡ per-flush checkpoint.
        assert!(per_flush.recover(a));
        assert!(periodic.recover(b));
        assert_eq!(per_flush.solution(a), periodic.solution(b));
        assert_eq!(periodic.solution(b), &last_good.solution[..]);

        // Post-recovery traffic stays bit-identical.
        let follow = SessionPerturbation::SetWeight { u: 11, value: 3.0 };
        per_flush.submit(a, follow);
        periodic.submit(b, follow);
        let ra = per_flush.query(a);
        let rb = periodic.query(b);
        assert!(ra.rejected.is_none() && rb.rejected.is_none());
        assert_eq!(ra.solution, rb.solution);
        assert_eq!(ra.objective.to_bits(), rb.objective.to_bits());
    }

    #[test]
    #[should_panic(expected = "submit rejected")]
    fn legacy_submit_panics_on_full_queue() {
        let (base, quality) = base_and_quality(8);
        let mut frontend =
            ServingFrontend::new(Arc::clone(&base)).with_admission_policy(AdmissionPolicy {
                max_pending: Some(1),
                ..AdmissionPolicy::default()
            });
        let t = frontend.register_tenant(&quality, 0.3, &[0, 1]);
        frontend.submit(t, SessionPerturbation::SetWeight { u: 0, value: 1.0 });
        frontend.submit(t, SessionPerturbation::SetWeight { u: 1, value: 1.0 });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_queries_match_serial_with_forced_pool() {
        let (base, quality) = base_and_quality(40);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 6, GreedyBConfig::default());

        let mut serial = ServingFrontend::new(Arc::clone(&base));
        let ts = serial.register_tenant(&quality, 0.3, &init);
        let mut par = SyncServingFrontend::new_sync(Arc::clone(&base));
        let tp = par.register_tenant_sync(&quality, 0.3, &init);
        // A forced pool chunks every scan even at this test size.
        let mut par = par.with_scan_pool(Arc::new(crate::pool::ScanPool::new(4)));

        for (u, v, value) in [(0u32, 7u32, 3.0), (4, 12, 0.2), (1, 2, 2.5)] {
            serial.submit(ts, SessionPerturbation::SetDistance { u, v, value });
            par.submit(tp, SessionPerturbation::SetDistance { u, v, value });
            let rs = serial.query(ts);
            let rp = par.query_parallel(tp);
            assert_eq!(rs.solution, rp.solution);
            assert_eq!(rs.objective, rp.objective);
            assert_eq!(rs.flushed, rp.flushed);
        }
    }

    #[test]
    fn typed_tenant_ids_round_trip_and_display() {
        let t = TenantId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "7");
        assert_eq!(t, TenantId::from_index(7));
        assert!(TenantId::from_index(1) < TenantId::from_index(2));
    }

    #[test]
    fn query_many_matches_individual_queries_and_drain_all_hits_ready_set() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());

        let mut fan = ServingFrontend::new(Arc::clone(&base));
        let mut one = ServingFrontend::new(Arc::clone(&base));
        let fa = fan.register_tenant(&quality, 0.3, &init);
        let fb = fan.register_tenant(&quality, 0.9, &init);
        let fc = fan.register_tenant(&quality, 1.4, &init);
        let oa = one.register_tenant(&quality, 0.3, &init);
        let ob = one.register_tenant(&quality, 0.9, &init);
        let oc = one.register_tenant(&quality, 1.4, &init);

        for (u, v, value) in [(0u32, 7u32, 3.0), (4, 12, 0.2)] {
            for t in [fa, fb] {
                fan.submit(t, SessionPerturbation::SetDistance { u, v, value });
            }
            for t in [oa, ob] {
                one.submit(t, SessionPerturbation::SetDistance { u, v, value });
            }
        }
        // Fan-out in request order ≡ the serial loop, bit for bit.
        let joined = fan.query_many(&[fb, fa, fc]);
        let serial = [one.query(ob), one.query(oa), one.query(oc)];
        assert_eq!(joined.len(), 3);
        for (j, s) in joined.iter().zip(serial.iter()) {
            assert_eq!(j.solution, s.solution);
            assert_eq!(j.objective.to_bits(), s.objective.to_bits());
            assert_eq!(j.flushed, s.flushed);
            assert_eq!(j.swaps, s.swaps);
        }
        assert_eq!(joined[0].tenant, fb);
        assert_eq!(joined[1].tenant, fa);

        // drain_all serves only tenants with queued work.
        fan.submit(fc, SessionPerturbation::SetWeight { u: 3, value: 2.0 });
        let drained = fan.drain_all();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].tenant, fc);
        assert_eq!(drained[0].flushed, 1);
        assert!(fan.drain_all().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate tenant")]
    fn query_many_rejects_duplicate_handles() {
        let (base, quality) = base_and_quality(8);
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let t = frontend.register_tenant(&quality, 0.3, &[0, 1]);
        frontend.query_many(&[t, t]);
    }

    struct FakeClock(std::sync::atomic::AtomicU64);

    impl FakeClock {
        fn arc(start: u64) -> Arc<Self> {
            Arc::new(FakeClock(std::sync::atomic::AtomicU64::new(start)))
        }

        fn set(&self, ticks: u64) {
            self.0.store(ticks, std::sync::atomic::Ordering::Relaxed);
        }
    }

    impl Clock for FakeClock {
        fn now_ticks(&self) -> u64 {
            self.0.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    #[test]
    fn stale_queues_quarantine_under_injected_clock() {
        let (base, quality) = base_and_quality(20);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let clock = FakeClock::arc(0);
        let mut frontend = ServingFrontend::new(Arc::clone(&base))
            .with_clock(clock.clone())
            .with_admission_policy(AdmissionPolicy {
                max_staleness_ticks: Some(10),
                ..AdmissionPolicy::default()
            });
        let t = frontend.register_tenant(&quality, 0.3, &init);

        // Within the SLO the flush happens normally.
        frontend.submit(
            t,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 9,
                value: 2.5,
            },
        );
        clock.set(5);
        let ok = frontend.query(t);
        assert_eq!(ok.flushed, 1);
        assert!(!frontend.is_quarantined(t));

        // A queue whose oldest entry lags past the budget is dropped and
        // the tenant quarantined — served state stays the last good one.
        frontend.submit(
            t,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 7,
                value: 4.0,
            },
        );
        clock.set(30);
        let stale = frontend.query(t);
        assert_eq!(stale.flushed, 0);
        assert!(stale.rejected.is_none());
        assert_eq!(stale.solution, ok.solution);
        assert!(frontend.is_quarantined(t));
        assert_eq!(frontend.pending(t), 0);
        assert!(matches!(
            frontend.try_submit(t, SessionPerturbation::SetWeight { u: 0, value: 1.0 }),
            Err(SubmitError::Quarantined { .. })
        ));

        // Recovery re-opens the tenant (no checkpoint is maintained
        // without quarantine_after; the session was never corrupted).
        assert!(!frontend.recover(t));
        assert!(!frontend.is_quarantined(t));
        frontend.submit(t, SessionPerturbation::SetWeight { u: 2, value: 2.0 });
        clock.set(31);
        assert_eq!(frontend.query(t).flushed, 1);
    }

    #[test]
    fn token_bucket_rate_limits_and_refills_by_ticks() {
        let (base, quality) = base_and_quality(12);
        let clock = FakeClock::arc(0);
        let mut frontend = ServingFrontend::new(Arc::clone(&base))
            .with_clock(clock.clone())
            .with_admission_policy(AdmissionPolicy {
                rate_limit: Some(TokenBucket {
                    capacity: 2,
                    ticks_per_token: 5,
                }),
                ..AdmissionPolicy::default()
            });
        let t = frontend.register_tenant(&quality, 0.3, &[0, 1, 2]);
        let w = |u: u32| SessionPerturbation::SetWeight { u, value: 2.0 };

        // Burst up to capacity, then limited.
        assert!(frontend.try_submit(t, w(0)).is_ok());
        assert!(frontend.try_submit(t, w(1)).is_ok());
        assert_eq!(
            frontend.try_submit(t, w(2)).unwrap_err(),
            SubmitError::RateLimited { tenant: t }
        );
        // 5 ticks mint exactly one token.
        clock.set(5);
        assert!(frontend.try_submit(t, w(2)).is_ok());
        assert!(matches!(
            frontend.try_submit(t, w(3)),
            Err(SubmitError::RateLimited { .. })
        ));
        // A long idle stretch refills to capacity, not beyond.
        clock.set(1000);
        assert!(frontend.try_submit(t, w(3)).is_ok());
        assert!(frontend.try_submit(t, w(4)).is_ok());
        assert!(matches!(
            frontend.try_submit(t, w(5)),
            Err(SubmitError::RateLimited { .. })
        ));
        assert_eq!(frontend.pending(t), 5);
        assert_eq!(frontend.query(t).flushed, 5);
    }

    #[test]
    fn rejected_batches_land_on_the_audit_channel() {
        let (base, quality) = base_and_quality(16);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let t = frontend.register_tenant(&quality, 0.3, &init);
        assert!(frontend.last_rejection(t).is_none());

        let poison = SessionPerturbation::SetDistance {
            u: 1,
            v: 2,
            value: f64::NAN,
        };
        let rider = SessionPerturbation::SetWeight { u: 3, value: 2.0 };
        frontend.submit(t, rider);
        frontend.submit(t, poison);
        let response = frontend.query(t);
        let error = response.rejected.clone().expect("poisoned flush rejects");

        // The audit entry holds the exact drained batch + typed error.
        // (NaN != NaN, so the poisoned entry is matched structurally.)
        let assert_audit = |audit: &RejectionAudit| {
            assert_eq!(audit.batch.len(), 2);
            assert_eq!(audit.batch[0], rider);
            assert!(matches!(
                audit.batch[1],
                SessionPerturbation::SetDistance { u: 1, v: 2, value } if value.is_nan()
            ));
        };
        let audit = frontend.last_rejection(t).expect("audit entry recorded");
        assert_audit(audit);
        assert_eq!(audit.error.to_string(), error.to_string());
        assert!(matches!(
            audit.error,
            SessionError::Rejected { index: 1, .. }
        ));

        // A later good flush leaves the evidence in place.
        frontend.submit(t, rider);
        assert!(frontend.query(t).rejected.is_none());
        let audit = frontend.last_rejection(t).expect("audit entry survives");
        assert_audit(audit);
    }

    fn shared_weights(quality: &ModularFunction) -> Arc<[f64]> {
        quality.weights().to_vec().into()
    }

    #[test]
    fn shared_overlay_tenants_match_owned_oracle_tenants_bitwise() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let weights = shared_weights(&quality);

        let mut owned = ServingFrontend::new(Arc::clone(&base));
        let to = owned.register_tenant(&quality, 0.3, &init);
        let mut shared = SharedServingFrontend::new_shared(Arc::clone(&base));
        let ts = shared.register_tenant_shared(Arc::clone(&weights), 0.3, &init);

        let stream = [
            SessionPerturbation::SetWeight { u: 3, value: 4.0 },
            SessionPerturbation::SetDistance {
                u: 0,
                v: 7,
                value: 3.0,
            },
            SessionPerturbation::SetWeight { u: 9, value: 0.05 },
            SessionPerturbation::SetDistance {
                u: 4,
                v: 12,
                value: 0.2,
            },
            SessionPerturbation::SetWeight { u: 3, value: 1.5 },
        ];
        for chunk in stream.chunks(2) {
            for &p in chunk {
                owned.submit(to, p);
                shared.submit(ts, p);
            }
            let ro = owned.query(to);
            let rs = shared.query(ts);
            assert_eq!(ro.solution, rs.solution);
            assert_eq!(ro.objective.to_bits(), rs.objective.to_bits());
            assert_eq!(ro.swaps, rs.swaps);
        }
        // Only the two distinct overridden weights are resident.
        assert_eq!(shared.weight_delta_count(ts), 2);
    }

    #[test]
    fn evict_attach_round_trip_is_bit_identical() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let weights = shared_weights(&quality);

        let mut spilled = SharedServingFrontend::new_shared(Arc::clone(&base));
        let mut resident = SharedServingFrontend::new_shared(Arc::clone(&base));
        let a = spilled.register_tenant_shared(Arc::clone(&weights), 0.3, &init);
        let keeper = spilled.register_tenant_shared(Arc::clone(&weights), 0.9, &init);
        let b = resident.register_tenant_shared(Arc::clone(&weights), 0.3, &init);

        let warmup = [
            SessionPerturbation::SetWeight { u: 3, value: 4.0 },
            SessionPerturbation::SetDistance {
                u: 0,
                v: 7,
                value: 3.0,
            },
            SessionPerturbation::Depart { u: init[0] },
        ];
        for &p in &warmup {
            spilled.submit(a, p);
            resident.submit(b, p);
        }
        let before = spilled.query(a);
        let mirror = resident.query(b);
        assert_eq!(before.solution, mirror.solution);

        // Leave one perturbation queued across the eviction.
        let queued = SessionPerturbation::SetWeight { u: 11, value: 2.5 };
        spilled.submit(a, queued);
        resident.submit(b, queued);

        let snapshot = spilled.evict(a);
        assert_eq!(spilled.tenant_count(), 1);
        assert_eq!(snapshot.pending, vec![queued]);
        assert_eq!(snapshot.weight_deltas.len(), 1);
        // The keeper's handle survives its neighbor's eviction.
        assert_eq!(spilled.pending(keeper), 0);

        let a2 = spilled.attach(snapshot);
        assert_eq!(a2, a, "tombstoned slot is reused");
        assert_eq!(spilled.stats(a2).queries, 1);
        assert_eq!(spilled.pending(a2), 1);

        // Post-attach traffic is bit-identical to the never-evicted twin.
        let after = spilled.query(a2);
        let mirror = resident.query(b);
        assert_eq!(after.solution, mirror.solution);
        assert_eq!(after.objective.to_bits(), mirror.objective.to_bits());
        assert_eq!(after.flushed, mirror.flushed);
        for (u, v, value) in [(2u32, 9u32, 0.4), (5, 13, 6.0)] {
            let p = SessionPerturbation::SetDistance { u, v, value };
            spilled.submit(a2, p);
            resident.submit(b, p);
            let ra = spilled.query(a2);
            let rb = resident.query(b);
            assert_eq!(ra.solution, rb.solution);
            assert_eq!(ra.objective.to_bits(), rb.objective.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "no tenant 0")]
    fn evicted_handles_panic_on_use() {
        let (base, quality) = base_and_quality(8);
        let weights = shared_weights(&quality);
        let mut frontend = SharedServingFrontend::new_shared(Arc::clone(&base));
        let t = frontend.register_tenant_shared(weights, 0.3, &[0, 1]);
        let _ = frontend.evict(t);
        let _ = frontend.query(t);
    }

    #[test]
    fn quarantined_tenants_are_evictable_and_reattach_quarantined() {
        let (base, quality) = base_and_quality(16);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let weights = shared_weights(&quality);
        let mut frontend = SharedServingFrontend::new_shared(Arc::clone(&base))
            .with_admission_policy(AdmissionPolicy {
                quarantine_after: Some(1),
                ..AdmissionPolicy::default()
            });
        let t = frontend.register_tenant_shared(weights, 0.3, &init);
        frontend.submit(
            t,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 1,
                value: f64::NAN,
            },
        );
        assert!(frontend.query(t).rejected.is_some());
        assert!(frontend.is_quarantined(t));

        let snapshot = frontend.evict(t);
        assert!(snapshot.quarantined);
        let t = frontend.attach(snapshot);
        assert!(frontend.is_quarantined(t));
        assert!(matches!(
            frontend.try_submit(t, SessionPerturbation::SetWeight { u: 0, value: 1.0 }),
            Err(SubmitError::Quarantined { .. })
        ));
        frontend.recover(t);
        assert!(!frontend.is_quarantined(t));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_add_tenant_forwards_to_register_tenant() {
        let (base, quality) = base_and_quality(12);
        let mut old = ServingFrontend::new(Arc::clone(&base));
        let mut new = ServingFrontend::new(Arc::clone(&base));
        let to = old.add_tenant(&quality, 0.3, &[0, 1, 2]);
        let tn = new.register_tenant(&quality, 0.3, &[0, 1, 2]);
        assert_eq!(to, tn);
        let ro = old.query(to);
        let rn = new.query(tn);
        assert_eq!(ro.solution, rn.solution);
        assert_eq!(ro.objective.to_bits(), rn.objective.to_bits());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn fan_out_join_matches_serial_loop_with_forced_pool() {
        let (base, quality) = base_and_quality(40);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 6, GreedyBConfig::default());

        let mut serial = ServingFrontend::new(Arc::clone(&base));
        let mut par = SyncServingFrontend::new_sync(Arc::clone(&base));
        let lambdas = [0.2, 0.3, 0.9, 1.5];
        let st: Vec<_> = lambdas
            .iter()
            .map(|&l| serial.register_tenant(&quality, l, &init))
            .collect();
        let pt: Vec<_> = lambdas
            .iter()
            .map(|&l| par.register_tenant_sync(&quality, l, &init))
            .collect();
        let mut par = par.with_scan_pool(Arc::new(crate::pool::ScanPool::new(4)));

        for round in 0..3u32 {
            for (i, (&ts, &tp)) in st.iter().zip(pt.iter()).enumerate() {
                let p = SessionPerturbation::SetDistance {
                    u: round * 4 + i as u32,
                    v: 20 + round * 4 + i as u32,
                    value: 0.3 + f64::from(round) * 0.7,
                };
                serial.submit(ts, p);
                par.submit(tp, p);
            }
            let rs = serial.query_many(&st);
            let rp = par.query_many_parallel(&pt);
            assert_eq!(rs.len(), rp.len());
            for (a, b) in rs.iter().zip(rp.iter()) {
                assert_eq!(a.solution, b.solution);
                assert_eq!(a.objective.to_bits(), b.objective.to_bits());
                assert_eq!(a.flushed, b.flushed);
                assert_eq!(a.swaps, b.swaps);
            }
        }
        // drain_all ≡ drain_all_parallel on the same stream.
        for (&ts, &tp) in st.iter().zip(pt.iter()).take(2) {
            let p = SessionPerturbation::SetWeight { u: 5, value: 3.0 };
            serial.submit(ts, p);
            par.submit(tp, p);
        }
        let rs = serial.drain_all();
        let rp = par.drain_all_parallel();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.len(), rp.len());
        for (a, b) in rs.iter().zip(rp.iter()) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.solution, b.solution);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        }
    }
}
