//! Multi-tenant query serving over one shared corpus.
//!
//! The paper frames max-sum diversification as a *query-time* problem:
//! many users issue queries with different `p`, `λ` and quality `f` over
//! one corpus. Running a [`DynamicSession`] per user used to cost a full
//! metric clone each (`O(n²)` for a dense matrix). [`ServingFrontend`]
//! removes that: every tenant session reads one immutable `Arc<M>` base
//! metric through a private copy-on-write [`OverlayMetric`], so a
//! tenant's `set_distance` perturbations land in its overlay — never the
//! shared base — and resident memory is `O(n²) + k·O(Δ)` for `k` tenants
//! with `Δ` perturbed pairs each, instead of `k·O(n²)`. Weight
//! perturbations repair the tenant's own incremental oracle (session
//! state by construction), so quality state never crosses tenants
//! either.
//!
//! The frontend consumes a **tagged request stream**
//! ([`ServingRequest`]): perturbations are queued per tenant and
//! coalesced into a single [`DynamicSession::apply_batch`] call when
//! that tenant's next query arrives — the batch path scans at most once
//! over the union scope, which is where the perturb→query throughput
//! comes from.
//!
//! ```
//! use std::sync::Arc;
//! use msd_core::{ServingFrontend, ServingRequest, SessionPerturbation};
//! use msd_metric::{DistanceMatrix, Metric};
//! use msd_submodular::ModularFunction;
//!
//! let base = Arc::new(DistanceMatrix::from_fn(8, |u, v| {
//!     1.0 + f64::from((u + v) % 4) * 0.25
//! }));
//! let quality = ModularFunction::new(vec![0.9, 0.3, 0.8, 0.2, 0.7, 0.1, 0.6, 0.4]);
//!
//! let mut frontend = ServingFrontend::new(Arc::clone(&base));
//! let alice = frontend.add_tenant(&quality, 0.3, &[0, 2, 4]);
//! let bob = frontend.add_tenant(&quality, 1.5, &[1, 3, 5]);
//!
//! let responses = frontend.process([
//!     ServingRequest::Perturb {
//!         tenant: alice,
//!         perturbation: SessionPerturbation::SetDistance { u: 0, v: 5, value: 1.9 },
//!     },
//!     ServingRequest::Query { tenant: alice },
//!     ServingRequest::Query { tenant: bob },
//! ]);
//! assert_eq!(responses.len(), 2);
//! assert_eq!(responses[0].flushed, 1); // alice's pending batch coalesced
//! // The shared base is untouched by alice's perturbation.
//! assert_eq!(base.distance(0, 5), 1.0 + 0.25);
//! ```

use std::sync::Arc;

use msd_metric::{Metric, OverlayMetric};
use msd_submodular::{IncrementalOracle, SetFunction};

use crate::session::{BatchReport, DynamicSession, SessionPerturbation, SyncDynamicSession};
use crate::ElementId;

/// Index of a tenant session inside a [`ServingFrontend`] (assignment
/// order of [`ServingFrontend::add_tenant`]).
pub type TenantId = usize;

/// One tagged request in a serving stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingRequest {
    /// Queue a perturbation for `tenant`; it is repaired lazily, as part
    /// of the coalesced batch flushed by that tenant's next query.
    Perturb {
        /// Target session.
        tenant: TenantId,
        /// The perturbation to queue.
        perturbation: SessionPerturbation,
    },
    /// Flush `tenant`'s queued perturbations (one `apply_batch`),
    /// stabilize, and read the maintained solution.
    Query {
        /// Target session.
        tenant: TenantId,
    },
}

/// Answer to one [`ServingRequest::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The queried tenant.
    pub tenant: TenantId,
    /// The maintained solution (insertion order, as
    /// [`DynamicSession::solution`]).
    pub solution: Vec<ElementId>,
    /// Objective `φ(S)` under the tenant's `λ` and quality oracle.
    pub objective: f64,
    /// Perturbations coalesced into the flush (0 for a pure read).
    pub flushed: usize,
    /// Oblivious swaps committed while stabilizing this query.
    pub swaps: usize,
}

/// Cumulative per-tenant counters (see [`ServingFrontend::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Queries answered.
    pub queries: usize,
    /// Perturbations ingested (across all flushed batches).
    pub perturbations: usize,
    /// Coalesced non-empty batches flushed.
    pub batches: usize,
    /// Oblivious swaps committed.
    pub swaps: usize,
}

/// Per-tenant state: a session over the shared base plus the pending
/// (not yet flushed) perturbation queue.
struct Tenant<'q, M: Metric, Q: IncrementalOracle + ?Sized> {
    session: DynamicSession<'q, OverlayMetric<Arc<M>>, Q>,
    pending: Vec<SessionPerturbation>,
    stats: TenantStats,
}

/// Multi-tenant serving frontend: `k` independent dynamic sessions over
/// one shared immutable base metric. See the [module docs](self).
///
/// Generic over the boxed oracle type exactly like [`DynamicSession`]:
/// the default serves serial sessions, [`SyncServingFrontend`] serves
/// thread-shareable ones (enabling the `parallel`-feature
/// `query_parallel` entry point).
pub struct ServingFrontend<
    'q,
    M: Metric,
    Q: IncrementalOracle + ?Sized = dyn IncrementalOracle + 'q,
> {
    base: Arc<M>,
    tenants: Vec<Tenant<'q, M, Q>>,
    /// Hard cap on stabilization swaps per query (defensive; the
    /// oblivious rule converges in ≤ p swaps on every workload the
    /// equivalence suites drive).
    max_updates_per_query: usize,
}

/// [`ServingFrontend`] whose tenant oracles are shareable across threads
/// (required by the `parallel`-feature `query_parallel` entry point).
pub type SyncServingFrontend<'q, M> =
    ServingFrontend<'q, M, dyn IncrementalOracle + Send + Sync + 'q>;

impl<M: Metric, Q: IncrementalOracle + ?Sized> std::fmt::Debug for ServingFrontend<'_, M, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingFrontend")
            .field("tenants", &self.tenants.len())
            .field("ground_size", &self.base.len())
            .finish()
    }
}

/// Default cap on stabilization swaps per query.
const DEFAULT_MAX_UPDATES_PER_QUERY: usize = 256;

impl<'q, M: Metric> ServingFrontend<'q, M> {
    /// A frontend over `base` with no tenants yet.
    pub fn new(base: Arc<M>) -> Self {
        Self {
            base,
            tenants: Vec::new(),
            max_updates_per_query: DEFAULT_MAX_UPDATES_PER_QUERY,
        }
    }

    /// Opens a tenant session seeded with `initial` (typically Greedy B's
    /// output for that tenant's `p`, `λ` and quality — sessions do not
    /// re-solve). The quality function stays borrowed for the frontend's
    /// lifetime; its incremental oracle state is tenant-local.
    ///
    /// # Panics
    ///
    /// As [`DynamicSession::new`].
    pub fn add_tenant<F: SetFunction>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.push_tenant(DynamicSession::new_shared(
            &self.base, quality, lambda, initial,
        ))
    }
}

impl<'q, M: Metric> SyncServingFrontend<'q, M> {
    /// A thread-shareable frontend over `base` with no tenants yet.
    pub fn new_sync(base: Arc<M>) -> Self {
        Self {
            base,
            tenants: Vec::new(),
            max_updates_per_query: DEFAULT_MAX_UPDATES_PER_QUERY,
        }
    }

    /// Thread-shareable variant of [`ServingFrontend::add_tenant`].
    pub fn add_tenant_sync<F: SetFunction + Sync>(
        &mut self,
        quality: &'q F,
        lambda: f64,
        initial: &[ElementId],
    ) -> TenantId {
        self.push_tenant(SyncDynamicSession::new_shared_sync(
            &self.base, quality, lambda, initial,
        ))
    }
}

impl<'q, M: Metric, Q: IncrementalOracle + ?Sized> ServingFrontend<'q, M, Q> {
    fn push_tenant(&mut self, session: DynamicSession<'q, OverlayMetric<Arc<M>>, Q>) -> TenantId {
        self.tenants.push(Tenant {
            session,
            pending: Vec::new(),
            stats: TenantStats::default(),
        });
        self.tenants.len() - 1
    }

    /// The shared base metric.
    pub fn base(&self) -> &Arc<M> {
        &self.base
    }

    /// Number of tenant sessions.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Caps the stabilization swaps spent per query (builder style;
    /// default 256 — far above the ≤ p swaps the oblivious rule needs in
    /// practice).
    pub fn with_max_updates_per_query(mut self, max_updates: usize) -> Self {
        self.max_updates_per_query = max_updates;
        self
    }

    /// Queues a perturbation for `tenant` without flushing — it is
    /// repaired as part of the coalesced batch at that tenant's next
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn submit(&mut self, tenant: TenantId, perturbation: SessionPerturbation) {
        self.tenants[tenant].pending.push(perturbation);
    }

    /// Number of queued (unflushed) perturbations for `tenant`.
    pub fn pending(&self, tenant: TenantId) -> usize {
        self.tenants[tenant].pending.len()
    }

    /// The tenant's maintained solution, without flushing its queue.
    pub fn solution(&self, tenant: TenantId) -> &[ElementId] {
        self.tenants[tenant].session.solution()
    }

    /// The tenant's session (read access; perturb through
    /// [`submit`](Self::submit) so coalescing stays intact).
    pub fn session(&self, tenant: TenantId) -> &DynamicSession<'q, OverlayMetric<Arc<M>>, Q> {
        &self.tenants[tenant].session
    }

    /// Cumulative counters for `tenant`.
    pub fn stats(&self, tenant: TenantId) -> TenantStats {
        self.tenants[tenant].stats
    }

    /// Flushes `tenant`'s queued perturbations as one coalesced
    /// [`DynamicSession::apply_batch`], stabilizes, and answers with the
    /// maintained solution.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn query(&mut self, tenant: TenantId) -> QueryResponse {
        let max_updates = self.max_updates_per_query;
        let t = &mut self.tenants[tenant];
        let report = Self::flush_pending(t, |session, batch| session.apply_batch(batch));
        Self::respond(t, tenant, report, max_updates)
    }

    /// Runs a tagged request stream in order, answering every
    /// [`ServingRequest::Query`]. Perturbations between a tenant's
    /// queries coalesce into one batch regardless of how other tenants'
    /// requests interleave.
    pub fn process<I>(&mut self, stream: I) -> Vec<QueryResponse>
    where
        I: IntoIterator<Item = ServingRequest>,
    {
        let mut responses = Vec::new();
        for request in stream {
            match request {
                ServingRequest::Perturb {
                    tenant,
                    perturbation,
                } => self.submit(tenant, perturbation),
                ServingRequest::Query { tenant } => responses.push(self.query(tenant)),
            }
        }
        responses
    }

    /// Applies the pending queue (if any) through `apply`, clearing it.
    fn flush_pending(
        t: &mut Tenant<'q, M, Q>,
        apply: impl FnOnce(
            &mut DynamicSession<'q, OverlayMetric<Arc<M>>, Q>,
            &[SessionPerturbation],
        ) -> BatchReport,
    ) -> Option<BatchReport> {
        if t.pending.is_empty() {
            return None;
        }
        let report = apply(&mut t.session, &t.pending);
        t.pending.clear();
        Some(report)
    }

    /// Stabilizes and assembles the response + stats after a flush.
    fn respond(
        t: &mut Tenant<'q, M, Q>,
        tenant: TenantId,
        report: Option<BatchReport>,
        max_updates: usize,
    ) -> QueryResponse {
        let mut swaps = 0usize;
        let mut flushed = 0usize;
        if let Some(report) = report {
            flushed = report.ingested;
            if report.outcome.swap.is_some() {
                swaps += 1;
            }
            t.stats.batches += 1;
            t.stats.perturbations += flushed;
        }
        swaps += t
            .session
            .update_until_stable(max_updates.saturating_sub(swaps));
        t.stats.queries += 1;
        t.stats.swaps += swaps;
        QueryResponse {
            tenant,
            solution: t.session.solution().to_vec(),
            objective: t.session.objective(),
            flushed,
            swaps,
        }
    }
}

#[cfg(feature = "parallel")]
impl<'q, M: Metric + Send + Sync> SyncServingFrontend<'q, M> {
    /// [`ServingFrontend::query`] with the flush and stabilization
    /// running the session's thread-parallel scans (bit-identical
    /// responses — chunking is scheduling only).
    pub fn query_parallel(&mut self, tenant: TenantId) -> QueryResponse {
        let max_updates = self.max_updates_per_query;
        let t = &mut self.tenants[tenant];
        let report = Self::flush_pending(t, |session, batch| session.apply_batch_parallel(batch));
        Self::respond(t, tenant, report, max_updates)
    }

    /// Routes every tenant session's parallel scans through an explicit
    /// [`crate::pool::ScanPool`] (builder style): one persistent worker
    /// set serves all tenants. Results are bit-identical for any pool.
    pub fn with_scan_pool(mut self, pool: Arc<crate::pool::ScanPool>) -> Self {
        for t in &mut self.tenants {
            t.session.set_scan_pool(Arc::clone(&pool));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_b, GreedyBConfig};
    use crate::problem::DiversificationProblem;
    use msd_metric::DistanceMatrix;
    use msd_submodular::ModularFunction;

    fn base_and_quality(n: usize) -> (Arc<DistanceMatrix>, ModularFunction) {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        (Arc::new(metric), ModularFunction::new(weights))
    }

    #[test]
    fn queries_coalesce_pending_perturbations() {
        let (base, quality) = base_and_quality(24);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 5, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let t = frontend.add_tenant(&quality, 0.3, &init);

        frontend.submit(
            t,
            SessionPerturbation::SetDistance {
                u: 0,
                v: 7,
                value: 3.0,
            },
        );
        frontend.submit(t, SessionPerturbation::SetWeight { u: 23, value: 4.0 });
        assert_eq!(frontend.pending(t), 2);

        let response = frontend.query(t);
        assert_eq!(response.flushed, 2);
        assert_eq!(frontend.pending(t), 0);
        assert_eq!(response.solution.len(), 5);
        let stats = frontend.stats(t);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.perturbations, 2);

        // A pure read flushes nothing and answers from the caches.
        let read = frontend.query(t);
        assert_eq!(read.flushed, 0);
        assert_eq!(read.solution, response.solution);
    }

    #[test]
    fn tenants_are_isolated_and_base_is_untouched() {
        let (base, quality) = base_and_quality(20);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.25);
        let init = greedy_b(&problem, 4, GreedyBConfig::default());
        let original = base.distance(1, 5);

        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let a = frontend.add_tenant(&quality, 0.25, &init);
        let b = frontend.add_tenant(&quality, 0.25, &init);

        // Conflicting rewrites of the same pair.
        frontend.submit(
            a,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 5,
                value: 0.5,
            },
        );
        frontend.submit(
            b,
            SessionPerturbation::SetDistance {
                u: 1,
                v: 5,
                value: 9.0,
            },
        );
        frontend.query(a);
        frontend.query(b);

        assert_eq!(frontend.session(a).metric().distance(1, 5), 0.5);
        assert_eq!(frontend.session(b).metric().distance(1, 5), 9.0);
        assert_eq!(base.distance(1, 5), original);
    }

    #[test]
    fn stream_processing_interleaves_tenants() {
        let (base, quality) = base_and_quality(16);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.4);
        let init = greedy_b(&problem, 3, GreedyBConfig::default());
        let mut frontend = ServingFrontend::new(Arc::clone(&base));
        let a = frontend.add_tenant(&quality, 0.4, &init);
        let b = frontend.add_tenant(&quality, 1.0, &init);

        let responses = frontend.process([
            ServingRequest::Perturb {
                tenant: a,
                perturbation: SessionPerturbation::SetWeight { u: 15, value: 3.0 },
            },
            ServingRequest::Perturb {
                tenant: b,
                perturbation: SessionPerturbation::SetDistance {
                    u: 0,
                    v: 9,
                    value: 2.0,
                },
            },
            ServingRequest::Perturb {
                tenant: a,
                perturbation: SessionPerturbation::SetDistance {
                    u: 2,
                    v: 3,
                    value: 1.5,
                },
            },
            ServingRequest::Query { tenant: a },
            ServingRequest::Query { tenant: b },
        ]);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].tenant, a);
        assert_eq!(responses[0].flushed, 2); // a's two perturbations coalesced
        assert_eq!(responses[1].tenant, b);
        assert_eq!(responses[1].flushed, 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_queries_match_serial_with_forced_pool() {
        let (base, quality) = base_and_quality(40);
        let problem = DiversificationProblem::new(Arc::clone(&base), &quality, 0.3);
        let init = greedy_b(&problem, 6, GreedyBConfig::default());

        let mut serial = ServingFrontend::new(Arc::clone(&base));
        let ts = serial.add_tenant(&quality, 0.3, &init);
        let mut par = SyncServingFrontend::new_sync(Arc::clone(&base));
        let tp = par.add_tenant_sync(&quality, 0.3, &init);
        // A forced pool chunks every scan even at this test size.
        let mut par = par.with_scan_pool(Arc::new(crate::pool::ScanPool::new(4)));

        for (u, v, value) in [(0u32, 7u32, 3.0), (4, 12, 0.2), (1, 2, 2.5)] {
            serial.submit(ts, SessionPerturbation::SetDistance { u, v, value });
            par.submit(tp, SessionPerturbation::SetDistance { u, v, value });
            let rs = serial.query(ts);
            let rp = par.query_parallel(tp);
            assert_eq!(rs.solution, rp.solution);
            assert_eq!(rs.objective, rp.objective);
            assert_eq!(rs.flushed, rp.flushed);
        }
    }
}
