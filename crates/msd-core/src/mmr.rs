//! Maximal Marginal Relevance (MMR) — Carbonell and Goldstein, SIGIR 1998.
//!
//! The paper's Related Work (Section 2) presents MMR as the classic
//! diversification heuristic:
//!
//! ```text
//! MMR = max_{D_i ∈ R−S} [ λ·sim1(D_i, Q) − (1−λ)·max_{D_j ∈ S} sim2(D_i, D_j) ]
//! ```
//!
//! and observes that Greedy B "can be viewed as a natural extension of
//! MMR" — the paper provides the theoretical justification MMR itself
//! lacks. MMR is included here as an experimental baseline: it
//! penalizes the *maximum* similarity to the selected set, whereas the
//! max-sum objective rewards the *sum* of distances.

use msd_metric::Metric;

use crate::ElementId;

/// Configuration for [`mmr_select`].
#[derive(Debug, Clone, Copy)]
pub struct MmrConfig {
    /// Trade-off between relevance (`trade_off = 1`) and novelty
    /// (`trade_off = 0`). This is MMR's own λ, unrelated to the
    /// diversification objective's λ.
    pub trade_off: f64,
}

impl Default for MmrConfig {
    fn default() -> Self {
        Self { trade_off: 0.5 }
    }
}

/// Runs MMR selection.
///
/// * `relevance[u]` plays the role of `sim1(D_u, Q)`;
/// * `sim2(u, v)` is derived from the metric as
///   `1 − d(u,v)/d_max` (distance-to-similarity inversion; `d_max` is the
///   maximum pairwise distance, with `sim2 ≡ 0` for a degenerate all-zero
///   metric);
/// * the first pick is the most relevant element (the standard MMR
///   bootstrap, since `S = ∅` leaves the novelty term undefined).
///
/// Returns `min(p, n)` elements in selection order.
///
/// # Panics
///
/// Panics if `relevance.len()` differs from the metric's ground size or
/// `trade_off ∉ [0, 1]`.
pub fn mmr_select<M: Metric>(
    metric: &M,
    relevance: &[f64],
    p: usize,
    config: MmrConfig,
) -> Vec<ElementId> {
    let n = metric.len();
    assert_eq!(
        relevance.len(),
        n,
        "one relevance score per element required"
    );
    assert!(
        (0.0..=1.0).contains(&config.trade_off),
        "trade_off must lie in [0, 1], got {}",
        config.trade_off
    );
    let p = p.min(n);
    if p == 0 {
        return Vec::new();
    }
    let lambda = config.trade_off;

    let mut d_max = 0.0_f64;
    for u in 0..n as ElementId {
        for v in (u + 1)..n as ElementId {
            d_max = d_max.max(metric.distance(u, v));
        }
    }
    let sim2 = |u: ElementId, v: ElementId| -> f64 {
        if d_max == 0.0 {
            0.0
        } else {
            1.0 - metric.distance(u, v) / d_max
        }
    };

    let mut selected: Vec<ElementId> = Vec::with_capacity(p);
    let mut in_sel = vec![false; n];
    // max_sim[u] = max_{j ∈ S} sim2(u, j), maintained incrementally.
    let mut max_sim = vec![f64::NEG_INFINITY; n];

    // First pick: most relevant. Relevance comes straight from the
    // caller, so the argmax uses `total_cmp`: a NaN score (ordered above
    // +∞) deterministically wins the first pick instead of panicking the
    // comparator, and ties keep the highest index (`max_by` returns the
    // last maximum).
    let first = (0..n as ElementId)
        .max_by(|&a, &b| relevance[a as usize].total_cmp(&relevance[b as usize]))
        .expect("non-empty ground set");
    selected.push(first);
    in_sel[first as usize] = true;
    for u in 0..n as ElementId {
        max_sim[u as usize] = sim2(u, first);
    }

    while selected.len() < p {
        let mut best: Option<ElementId> = None;
        let mut best_score = f64::NEG_INFINITY;
        for u in 0..n as ElementId {
            if in_sel[u as usize] {
                continue;
            }
            let score = lambda * relevance[u as usize] - (1.0 - lambda) * max_sim[u as usize];
            if score > best_score {
                best_score = score;
                best = Some(u);
            }
        }
        // `score > best_score` is false for NaN scores, so a fully
        // NaN-poisoned round ends with no winner; fall back to the
        // lowest-index unselected element — deterministic, and unreachable
        // from validated inputs (NaN relevance never passes ingestion).
        let u = best
            .or_else(|| (0..n as ElementId).find(|&u| !in_sel[u as usize]))
            .expect("p <= n guarantees a candidate");
        selected.push(u);
        in_sel[u as usize] = true;
        for v in 0..n as ElementId {
            let s = sim2(v, u);
            if s > max_sim[v as usize] {
                max_sim[v as usize] = s;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_metric::DistanceMatrix;

    /// Two clusters: {0,1} close together, {2,3} close together, clusters
    /// far apart. Element 0 most relevant, then 1, 2, 3.
    fn clustered() -> (DistanceMatrix, Vec<f64>) {
        let pos = [0.0_f64, 0.5, 10.0, 10.5];
        let m = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        (m, vec![1.0, 0.9, 0.8, 0.7])
    }

    #[test]
    fn first_pick_is_most_relevant() {
        let (m, rel) = clustered();
        let s = mmr_select(&m, &rel, 1, MmrConfig::default());
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn second_pick_jumps_to_the_other_cluster() {
        let (m, rel) = clustered();
        let s = mmr_select(&m, &rel, 2, MmrConfig::default());
        assert_eq!(s[0], 0);
        // With λ = 0.5, element 1 is heavily penalized (similar to 0);
        // element 2 wins despite lower relevance.
        assert_eq!(s[1], 2);
    }

    #[test]
    fn pure_relevance_ranks_by_relevance() {
        let (m, rel) = clustered();
        let s = mmr_select(&m, &rel, 4, MmrConfig { trade_off: 1.0 });
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pure_novelty_maximizes_minimum_distance() {
        let (m, rel) = clustered();
        let s = mmr_select(&m, &rel, 2, MmrConfig { trade_off: 0.0 });
        // After 0, the farthest element is 3.
        assert_eq!(s, vec![0, 3]);
    }

    #[test]
    fn handles_degenerate_all_zero_metric() {
        let m = DistanceMatrix::zeros(3);
        let s = mmr_select(&m, &[0.1, 0.9, 0.5], 2, MmrConfig::default());
        assert_eq!(s[0], 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn p_clamped_and_zero() {
        let (m, rel) = clustered();
        assert!(mmr_select(&m, &rel, 0, MmrConfig::default()).is_empty());
        assert_eq!(mmr_select(&m, &rel, 10, MmrConfig::default()).len(), 4);
    }

    #[test]
    fn nan_relevance_does_not_panic_and_stays_deterministic() {
        // Relevance is raw caller input (no validated ingestion path in
        // front of it). The first-pick argmax used to panic through
        // `partial_cmp().expect`; `total_cmp` orders NaN above +∞, so the
        // poisoned element wins the first pick deterministically and the
        // remaining MMR sweep (plain `>` comparisons, false on NaN)
        // proceeds without panicking.
        let (m, _) = clustered();
        let rel = vec![1.0, f64::NAN, 0.8, 0.7];
        let a = mmr_select(&m, &rel, 3, MmrConfig::default());
        let b = mmr_select(&m, &rel, 3, MmrConfig::default());
        assert_eq!(a, b, "NaN input must not destroy determinism");
        assert_eq!(
            a[0], 1,
            "total_cmp ranks the NaN score above every finite one"
        );
        assert_eq!(a.len(), 3);
        // All-NaN relevance still terminates with p distinct picks.
        let s = mmr_select(&m, &[f64::NAN; 4], 2, MmrConfig::default());
        assert_eq!(s.len(), 2);
        assert_ne!(s[0], s[1]);
    }

    #[test]
    #[should_panic(expected = "one relevance score per element")]
    fn relevance_length_mismatch_panics() {
        let (m, _) = clustered();
        let _ = mmr_select(&m, &[1.0], 2, MmrConfig::default());
    }

    #[test]
    #[should_panic(expected = "trade_off must lie in [0, 1]")]
    fn out_of_range_trade_off_panics() {
        let (m, rel) = clustered();
        let _ = mmr_select(&m, &rel, 2, MmrConfig { trade_off: 1.5 });
    }

    #[test]
    fn no_duplicates() {
        let (m, rel) = clustered();
        let mut s = mmr_select(&m, &rel, 4, MmrConfig { trade_off: 0.3 });
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }
}
