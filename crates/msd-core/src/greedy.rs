//! **Greedy B** — the paper's non-oblivious greedy (Section 4, Theorem 1).
//!
//! ```text
//! S = ∅
//! while |S| < p
//!     find u ∈ U − S maximizing φ'_u(S) = ½·f_u(S) + λ·d_u(S)
//!     S = S + u
//! return S
//! ```
//!
//! Theorem 1: for normalized monotone submodular `f` this is a
//! 2-approximation for max-sum `p`-diversification. The algorithm is
//! *non-oblivious* (in the sense of Khanna et al.): each step maximizes the
//! potential `φ'`, not the objective `φ` — the ½ factor on the quality
//! marginal is exactly what makes the telescoping bound in the proof close.
//!
//! With the [`crate::SolutionState`] gain cache the total cost is `O(np)` oracle
//! and distance operations (Birnbaum–Goldman), as the paper notes at the
//! end of Section 4.
//!
//! Two refinements from the experimental section (Table 3) are exposed via
//! [`GreedyBConfig`]:
//!
//! * `best_pair_start` — "for Greedy B, we will start with the best pair of
//!   nodes rather than an arbitrary node". The approximation ratio is
//!   unaffected; observed quality typically improves.
//! * Setting the quality function to zero recovers the Ravi–Rosenkrantz–
//!   Tayi dispersion greedy (Corollary 1); see
//!   [`max_sum_dispersion_greedy`].

use msd_metric::Metric;
use msd_submodular::{IncrementalOracle, SetFunction, ZeroFunction};

use crate::potential::PotentialState;
use crate::problem::DiversificationProblem;
use crate::ElementId;

/// Configuration for [`greedy_b`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBConfig {
    /// Start from the pair `{x, y}` maximizing `½·f({x,y}) + λ·d(x,y)`
    /// instead of greedily choosing the first vertex (the "improved
    /// Greedy B" of Table 3). Only takes effect when `p ≥ 2`.
    pub best_pair_start: bool,
}

/// Runs Greedy B, returning the selected set (size `min(p, n)`) in
/// selection order.
///
/// Implements the greedy algorithm of Theorem 1: a 2-approximation for
/// monotone submodular quality functions under a cardinality constraint.
///
/// **Submodularity is relied on, not just assumed for the ratio**: for
/// quality functions without a specialized incremental oracle, candidate
/// selection uses the Minoux lazy queue, whose cached upper bounds are
/// only valid when marginals are non-increasing in `S`. With a
/// non-submodular quality (which [`SetFunction`] deliberately does not
/// rule out) the selected element may deviate from the exact per-step
/// argmax (and from `parallel::greedy_b`, which evaluates exact
/// marginals); the Theorem 1 guarantee is void in that regime anyway.
pub fn greedy_b<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    p: usize,
    config: GreedyBConfig,
) -> Vec<ElementId> {
    greedy_b_with_state(PotentialState::new(problem), p, config)
}

/// The Greedy B selection loop over an already-constructed *empty*
/// [`PotentialState`] — shared by [`greedy_b`] and the sharded engine's
/// union-scoped reduce (`crate::sharded`), which must select through this
/// exact code path to stay equivalent to the one-shot distributed solver.
pub(crate) fn greedy_b_with_state<M: Metric, Q: IncrementalOracle + ?Sized>(
    mut state: PotentialState<'_, M, Q>,
    p: usize,
    config: GreedyBConfig,
) -> Vec<ElementId> {
    let n = state.ground_size();
    let p = p.min(n);
    if p == 0 {
        return Vec::new();
    }

    if config.best_pair_start && p >= 2 {
        // Seed with argmax_{x,y} ½·f({x,y}) + λ·d(x,y) (the pair potential
        // from the empty set).
        let (mut best, mut best_score) = ((0, 1), f64::NEG_INFINITY);
        for x in 0..n as ElementId {
            for y in (x + 1)..n as ElementId {
                let score = state.pair_potential(x, y);
                if score > best_score {
                    best_score = score;
                    best = (x, y);
                }
            }
        }
        state.insert(best.0);
        state.insert(best.1);
    }

    while state.len() < p {
        match lazy_greedy_argmax(&mut state) {
            Some(u) => state.insert(u),
            None => break, // ground set exhausted
        }
    }
    state.into_members()
}

/// Heap entry for the Minoux lazy queue: max by score, ties toward the
/// lowest index, with a total order on floats (`total_cmp`) so degenerate
/// scores cannot poison the heap invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LazyCandidate {
    score: f64,
    u: ElementId,
}

impl Eq for LazyCandidate {}

impl Ord for LazyCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.u.cmp(&self.u))
    }
}

impl PartialOrd for LazyCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One lazy-greedy (Minoux) selection step: the argmax of the potential
/// `φ'_u(S)` over `u ∉ S`, ties broken toward the lowest index.
///
/// Candidates are ranked by the O(1) [`PotentialState::potential_bound`]
/// (exact distance term + possibly-stale quality upper bound — valid
/// **provided `f` is submodular**, because then marginals cached at a
/// smaller `S` only shrink as `S` grows; see the note on [`greedy_b`]).
/// Structured oracles always report exact bounds, so the fast path — one
/// linear scan whose winner is already exact — selects immediately, at the
/// cost of the eager implementation. Otherwise the candidates are heapified
/// once (O(n)) and popped lazily: a popped entry whose score is stale is
/// re-pushed at its current bound (O(log n)), a current-but-inexact entry
/// is refreshed through the oracle and re-pushed, and a current exact
/// entry is the argmax. Refreshes therefore cost O(log n) reordering each
/// instead of an O(n) rescan.
///
/// The selected element is identical to the eager scan's: stale bounds
/// only over-rank candidates, so any candidate that would beat (or tie at
/// a lower index) the selected one sorts ahead of it in the pop order and
/// is examined first.
pub(crate) fn lazy_greedy_argmax<M: Metric, Q: IncrementalOracle + ?Sized>(
    state: &mut PotentialState<'_, M, Q>,
) -> Option<ElementId> {
    let n = state.ground_size() as ElementId;
    // Fast path: one linear scan over the O(1) bounds. If the winner's
    // bound is exact — always, for structured oracles — it is the argmax.
    let mut best: Option<ElementId> = None;
    let mut best_score = f64::NEG_INFINITY;
    for u in 0..n {
        if state.contains(u) {
            continue;
        }
        let score = state.potential_bound(u);
        if score > best_score {
            best_score = score;
            best = Some(u);
        }
    }
    let top = best?;
    if state.potential_is_exact(top) {
        return Some(top);
    }

    // Lazy path (generic fallback oracles): heap over the stale bounds.
    let mut heap: std::collections::BinaryHeap<LazyCandidate> = (0..n)
        .filter(|&u| !state.contains(u))
        .map(|u| LazyCandidate {
            score: state.potential_bound(u),
            u,
        })
        .collect();
    while let Some(entry) = heap.pop() {
        let current = state.potential_bound(entry.u);
        if entry.score > current {
            // Stale snapshot (the bound tightened since it was pushed);
            // re-queue at the current bound.
            heap.push(LazyCandidate {
                score: current,
                u: entry.u,
            });
            continue;
        }
        if state.potential_is_exact(entry.u) {
            return Some(entry.u);
        }
        let refreshed = state.refresh_potential(entry.u);
        heap.push(LazyCandidate {
            score: refreshed,
            u: entry.u,
        });
    }
    unreachable!("non-empty candidate heap cannot drain without an exact top");
}

/// The Ravi–Rosenkrantz–Tayi greedy for max-sum `p`-dispersion.
///
/// Corollary 1 of the paper: running Greedy B with `f ≡ 0` *is* the Ravi et
/// al. vertex greedy, so it inherits the 2-approximation (the bound
/// Birnbaum and Goldman later proved directly, settling a conjecture of
/// Hassin et al.).
pub fn max_sum_dispersion_greedy<M: Metric>(metric: &M, p: usize) -> Vec<ElementId> {
    let problem = DiversificationProblem::new(metric, ZeroFunction::new(metric.len()), 1.0);
    greedy_b(&problem, p, GreedyBConfig::default())
}

/// Batch greedy: add the best *pair* of vertices per step.
///
/// Birnbaum and Goldman show that greedily choosing `d` nodes at a time
/// gives a `(2p−2)/(p+d−2)` approximation for max-sum dispersion
/// (Section 3 of the paper); `d = 2` improves the single-vertex greedy's
/// `(2p−2)/(p−1)` at an `O(n²)`-per-step cost. This implementation
/// extends the same batch rule to the diversification potential
/// `φ'`, adding the pair maximizing
/// `½·f_{{u,v}}(S) + λ·(d_u(S) + d_v(S) + d(u,v))`; an odd `p` gets one
/// final single-vertex step.
///
/// With the `parallel` feature, `parallel::greedy_b_pairs` distributes the
/// O(n²) pair scan over threads with bit-identical (lexicographically
/// smallest maximizing pair) output.
pub fn greedy_b_pairs<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    p: usize,
) -> Vec<ElementId> {
    let n = problem.ground_size();
    let p = p.min(n);
    if p == 0 {
        return Vec::new();
    }
    let mut state = PotentialState::new(problem);

    while state.len() + 2 <= p {
        let mut best: Option<(ElementId, ElementId)> = None;
        let mut best_score = f64::NEG_INFINITY;
        for u in 0..n as ElementId {
            if state.contains(u) {
                continue;
            }
            for v in (u + 1)..n as ElementId {
                if state.contains(v) {
                    continue;
                }
                // Pair marginal of the potential, read from the caches —
                // no per-pair set materialization.
                let score = state.pair_potential(u, v);
                if score > best_score {
                    best_score = score;
                    best = Some((u, v));
                }
            }
        }
        match best {
            Some((u, v)) => {
                state.insert(u);
                state.insert(v);
            }
            None => break,
        }
    }
    if state.len() < p {
        // One final single-vertex step for odd p.
        if let Some(u) = lazy_greedy_argmax(&mut state) {
            state.insert(u);
        }
    }
    state.into_members()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_max_diversification;
    use crate::solution::SolutionState;
    use msd_metric::DistanceMatrix;
    use msd_submodular::{ModularFunction, SetFunction};

    fn line_instance() -> DiversificationProblem<DistanceMatrix, ModularFunction> {
        // positions 0..6 on a line, weights favour the middle.
        let pos: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let metric = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        let weights = vec![0.1, 0.2, 5.0, 5.0, 0.2, 0.1];
        DiversificationProblem::new(metric, ModularFunction::new(weights), 1.0)
    }

    #[test]
    fn selects_requested_cardinality() {
        let p = line_instance();
        for k in 0..=6 {
            let s = greedy_b(&p, k, GreedyBConfig::default());
            assert_eq!(s.len(), k);
            // no duplicates
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k);
        }
    }

    #[test]
    fn oversized_p_is_clamped_to_ground_set() {
        let p = line_instance();
        let s = greedy_b(&p, 100, GreedyBConfig::default());
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn p_zero_returns_empty() {
        let p = line_instance();
        assert!(greedy_b(&p, 0, GreedyBConfig::default()).is_empty());
    }

    #[test]
    fn p_one_picks_max_potential_singleton() {
        let p = line_instance();
        let s = greedy_b(&p, 1, GreedyBConfig::default());
        // φ'_u(∅) = ½ w(u): elements 2 and 3 tie at 2.5; first wins.
        assert_eq!(s, vec![2]);
    }

    #[test]
    fn first_step_balances_weight_and_distance() {
        // Two heavy close points vs two light far points.
        let pos = [0.0_f64, 0.1, 100.0];
        let metric = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        let quality = ModularFunction::new(vec![1.0, 1.0, 0.0]);
        let p = DiversificationProblem::new(metric, quality, 1.0);
        let s = greedy_b(&p, 2, GreedyBConfig::default());
        // After picking any first element, the distance term dominates and
        // the far point must be chosen.
        assert!(s.contains(&2), "far point must be selected, got {s:?}");
    }

    #[test]
    fn achieves_half_of_optimum_on_exhaustive_instances() {
        // Theorem 1 guarantee, checked against brute force on a batch of
        // deterministic small instances.
        for seed in 0u32..20 {
            let n = 7;
            // Simple deterministic pseudo-random values in [0,1] / [1,2].
            let mut x = u64::from(seed) * 2654435761 + 1;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 11) as f64 / (1u64 << 53) as f64
            };
            let weights: Vec<f64> = (0..n).map(|_| next()).collect();
            let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
            let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2);
            for p in 1..=4usize {
                let greedy = greedy_b(&problem, p, GreedyBConfig::default());
                let opt = exact_max_diversification(&problem, p);
                let g = problem.objective(&greedy);
                let o = problem.objective(&opt.set);
                assert!(
                    2.0 * g >= o - 1e-9,
                    "seed {seed} p {p}: greedy {g} < OPT/2 = {}",
                    o / 2.0
                );
            }
        }
    }

    #[test]
    fn best_pair_start_matches_or_beats_on_pathological_first_pick() {
        // Element 0 has a huge weight but sits on top of element 1; the
        // plain greedy takes 0 first and can get stuck with a poor pair.
        let pos = [0.0_f64, 0.0, 10.0];
        let metric = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        let quality = ModularFunction::new(vec![3.0, 0.0, 2.9]);
        let p = DiversificationProblem::new(metric, quality, 0.01);
        let plain = greedy_b(&p, 2, GreedyBConfig::default());
        let improved = greedy_b(
            &p,
            2,
            GreedyBConfig {
                best_pair_start: true,
            },
        );
        assert!(p.objective(&improved) >= p.objective(&plain) - 1e-12);
    }

    #[test]
    fn dispersion_greedy_is_greedy_b_with_zero_quality() {
        let pos: Vec<f64> = vec![0.0, 1.0, 4.0, 9.0, 16.0];
        let metric = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        let via_zero = {
            let problem =
                DiversificationProblem::new(&metric, msd_submodular::ZeroFunction::new(5), 1.0);
            greedy_b(&problem, 3, GreedyBConfig::default())
        };
        let direct = max_sum_dispersion_greedy(&metric, 3);
        assert_eq!(via_zero, direct);
        // Extremes must be in the dispersion solution.
        assert!(direct.contains(&0) && direct.contains(&4));
    }

    #[test]
    fn works_with_submodular_quality() {
        use msd_submodular::CoverageFunction;
        // 4 elements, 3 topics; elements 0 and 1 cover the same topic.
        let cover = CoverageFunction::new(
            vec![vec![0], vec![0], vec![1], vec![2]],
            vec![10.0, 1.0, 1.0],
        );
        let metric = DistanceMatrix::from_fn(4, |_, _| 1.0);
        let p = DiversificationProblem::new(metric, cover, 0.0);
        let s = greedy_b(&p, 2, GreedyBConfig::default());
        // With λ=0 and coverage quality, picking both 0 and 1 is wasteful;
        // greedy must take one of {0,1} and then a new topic.
        assert_eq!(p.quality().value(&s), 11.0);
    }

    #[test]
    fn pair_greedy_selects_requested_cardinality() {
        let p = line_instance();
        for k in 0..=6usize {
            let s = greedy_b_pairs(&p, k);
            assert_eq!(s.len(), k, "p = {k}");
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), k);
        }
    }

    #[test]
    fn pair_greedy_meets_the_batch_dispersion_bound() {
        // Birnbaum–Goldman: batch size d=2 gives (2p−2)/(p+d−2) = (2p−2)/p
        // for dispersion. Verify against brute force.
        for seed in 0u32..10 {
            let n = 8;
            let mut x = u64::from(seed) * 2654435761 + 7;
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 11) as f64 / (1u64 << 53) as f64
            };
            let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
            let problem =
                DiversificationProblem::new(&metric, msd_submodular::ZeroFunction::new(n), 1.0);
            for p in [2usize, 4, 6] {
                let s = greedy_b_pairs(&problem, p);
                let opt = exact_max_diversification(&problem, p);
                let bound = (2 * p - 2) as f64 / p as f64;
                assert!(
                    bound * metric.dispersion(&s) >= opt.objective - 1e-9,
                    "seed {seed} p {p}"
                );
            }
        }
    }

    #[test]
    fn pair_greedy_first_pair_maximizes_pair_potential() {
        let pos = [0.0_f64, 1.0, 9.0, 10.0];
        let metric = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        let quality = ModularFunction::uniform(4, 0.0);
        let p = DiversificationProblem::new(metric, quality, 1.0);
        let mut s = greedy_b_pairs(&p, 2);
        s.sort_unstable();
        assert_eq!(s, vec![0, 3], "farthest pair first");
    }

    #[test]
    fn greedy_marginals_agree_with_naive_computation() {
        // The gain cache must match recomputing d_u(S) from scratch at
        // every step (regression test for the Birnbaum–Goldman cache).
        let p = line_instance();
        let n = p.ground_size();
        let mut state = SolutionState::empty(n);
        for _ in 0..4 {
            let members = state.members().to_vec();
            let mut best = None;
            let mut best_score = f64::NEG_INFINITY;
            for u in 0..n as ElementId {
                if state.contains(u) {
                    continue;
                }
                let cached =
                    0.5 * p.quality().marginal(u, &members) + p.lambda() * state.distance_gain(u);
                let naive = p.potential(u, &members);
                assert!((cached - naive).abs() < 1e-12);
                if cached > best_score {
                    best_score = cached;
                    best = Some(u);
                }
            }
            state.insert(p.metric(), best.unwrap());
        }
    }
}
