//! Persistent sharded dynamic engine: the distributed composable greedy
//! kept alive across perturbations.
//!
//! [`crate::distributed::distributed_greedy`] is one-shot: partition, map,
//! reduce, return. Under the paper's dynamic-update model (Section 6) a
//! stream of [`SessionPerturbation`]s would force a full re-solve per
//! batch — `machines + 1` greedy runs each time, almost all of them
//! recomputing shards nothing touched. [`ShardedEngine`] makes the
//! distributed scheme *persistent*:
//!
//! * one live [`DynamicSession`] per shard, each holding its
//!   Birnbaum–Goldman gain caches and bounded best-swap candidate cache
//!   across batches, so a perturbation costs the session's O(Δ) repair +
//!   oblivious swaps instead of a shard re-solve;
//! * perturbations are routed to their owning shard through the same
//!   pluggable partitioner as the one-shot solver ([`PartitionScheme`]);
//!   cross-shard distance rewrites — invisible to every per-shard view —
//!   are recorded in an engine-global [`OverlayMetric`] that the reduce
//!   and all objective scoring read;
//! * the **incremental reduce**: after a batch stabilizes, the engine
//!   re-runs the union-scoped reduce greedy *only* when some shard's
//!   proposal set actually changed (dirty-shard tracking, compared as
//!   sets) or the batch touched the current proposal union (a weight
//!   rewrite of a union element, a distance rewrite within the union, or
//!   a union departure). Quiet batches — the common case under localized
//!   perturbation streams — keep the merged solution and its objective
//!   with **zero** reduce work, provably unchanged: every quantity the
//!   reduce depends on (union membership, union-internal distances, union
//!   weights, per-shard fallback objectives) is untouched by construction.
//!   The best-single-shard fallback of the composable scheme is preserved
//!   verbatim.
//!
//! Memory never materializes `n²` distances: shard sessions see
//! [`RestrictedMetric`] views of the problem metric (implicit metrics
//! stay implicit), quality oracles are [`RestrictedOracle`] views over
//! per-shard instances of the function's specialized oracle, and the
//! reduce re-restricts an engine-owned global oracle. For an implicit
//! point metric the resident distance state is the sparse overlay of
//! rewrites plus (optionally) a bounded tile cache — `o(n²)` end to end.
//!
//! Round 0 is element-for-element identical to
//! [`distributed_greedy`](crate::distributed::distributed_greedy): the
//! engine seeds its sessions through the one-shot solver's exact map
//! round and re-selects the merged set through the same Greedy B code
//! path over the same union. The equivalence suite in `msd-bench` pins
//! this, along with per-shard agreement with naive stabilization across
//! perturbation rounds.

// Ingestion boundary: faults arrive here as values, never as panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use msd_metric::{Metric, OverlayMetric, PerturbableMetric, RestrictedMetric};
use msd_submodular::{IncrementalOracle, RestrictedOracle, SetFunction};

use crate::distributed::{solve_restricted, PartitionScheme};
use crate::greedy::{greedy_b_with_state, GreedyBConfig};
use crate::potential::PotentialState;
use crate::problem::DiversificationProblem;
use crate::session::{
    BatchReport, DynamicSession, PerturbationError, SessionError, SessionPerturbation,
};
use crate::ElementId;

/// Metric owned by one shard session: a perturbation overlay over the
/// restricted view of the (borrowed) problem metric. `O(shard size)`
/// state plus the shard-local rewrites.
pub type ShardMetric<'q, M> = OverlayMetric<RestrictedMetric<&'q M>>;

/// Batch-application callback threaded through [`ShardedEngine::ingest`]:
/// the serial and parallel entry points differ only in how each perturbed
/// shard's session applies its routed sub-batch.
type ShardApply<'a, 'q, M, Q> = &'a mut dyn FnMut(
    &mut DynamicSession<'q, ShardMetric<'q, M>, Q>,
    &[SessionPerturbation],
) -> BatchReport;

/// Configuration of a [`ShardedEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards (≥ 1).
    pub machines: usize,
    /// Partitioning scheme (shared with the one-shot solver).
    pub scheme: PartitionScheme,
    /// Greedy settings for the map round and the reduce.
    pub greedy: GreedyBConfig,
    /// Per-batch cap on oblivious updates while stabilizing a shard.
    pub max_updates: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            machines: 4,
            scheme: PartitionScheme::RoundRobin,
            greedy: GreedyBConfig::default(),
            max_updates: 4096,
        }
    }
}

/// Cumulative merge statistics of a [`ShardedEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Perturbation batches ingested.
    pub rounds: u64,
    /// Union-scoped reduce greedies actually executed (includes the
    /// round-0 merge; quiet batches don't increment this).
    pub reduce_runs: u64,
    /// Dirty shards (proposal set changed) in the last batch.
    pub last_dirty_shards: usize,
    /// Union size the last executed reduce selected over.
    pub last_reduce_scope: usize,
    /// Whether the last batch re-ran the reduce.
    pub last_reduce_ran: bool,
}

/// Outcome of one [`ShardedEngine::apply_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedReport {
    /// Shards that received at least one perturbation.
    pub perturbed_shards: usize,
    /// Shards whose proposal set changed (the re-merge triggers).
    pub dirty_shards: Vec<usize>,
    /// Oblivious swaps committed across all shard sessions.
    pub swaps: usize,
    /// Greedy refills committed across all shard sessions
    /// (departure replacements, arrival refills).
    pub refills: usize,
    /// Whether the union-scoped reduce re-ran.
    pub reduce_ran: bool,
    /// Current proposal-union size (the reduce scope).
    pub reduce_scope: usize,
    /// Whether the merged solution currently comes from the reduce greedy
    /// (vs the best-single-shard fallback).
    pub reduce_won: bool,
    /// Objective of the merged solution.
    pub objective: f64,
}

/// Persistent sharded dynamic engine. See the [module docs](self).
pub struct ShardedEngine<'q, M: Metric, Q: IncrementalOracle + ?Sized = dyn IncrementalOracle + 'q>
{
    /// Engine-global perturbed metric view (all rewrites, including
    /// cross-shard ones); the reduce and every objective read this.
    metric: OverlayMetric<&'q M>,
    lambda: f64,
    p: usize,
    config: ShardedConfig,
    /// Global ids per shard, ascending (the partitioner's output).
    shard_ids: Vec<Vec<ElementId>>,
    /// Owning shard per global element.
    shard_of: Vec<u32>,
    /// Local id within the owning shard per global element.
    local_of: Vec<ElementId>,
    /// One persistent session per non-empty shard.
    sessions: Vec<Option<DynamicSession<'q, ShardMetric<'q, M>, Q>>>,
    /// Engine-owned global oracle, kept at `S = ∅` between uses; scores
    /// proposals and backs the union-restricted reduce greedy. Weight
    /// perturbations are mirrored into it.
    reduce_oracle: Box<Q>,
    /// Current per-shard proposals (global ids, selection order).
    proposals: Vec<Vec<ElementId>>,
    /// Objective of each shard's proposal (the fallback candidates).
    shard_objective: Vec<f64>,
    /// Sorted union of the current proposals.
    union: Vec<ElementId>,
    /// Membership mask of `union` over the global ground set.
    in_union: Vec<bool>,
    /// Current merged solution (reduce output or fallback winner).
    merged: Vec<ElementId>,
    merged_objective: f64,
    reduce_won: bool,
    stats: MergeStats,
}

/// [`ShardedEngine`] whose oracles are shareable across threads (enables
/// the `parallel`-feature `apply_batch_parallel` entry point).
pub type SyncShardedEngine<'q, M> = ShardedEngine<'q, M, dyn IncrementalOracle + Send + Sync + 'q>;

impl<M: Metric, Q: IncrementalOracle + ?Sized> std::fmt::Debug for ShardedEngine<'_, M, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("machines", &self.shard_ids.len())
            .field("p", &self.p)
            .field("merged", &self.merged)
            .field("objective", &self.merged_objective)
            .field("reduce_won", &self.reduce_won)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'q, M: Metric> ShardedEngine<'q, M> {
    /// Builds the engine: partitions the ground set, runs the one-shot map
    /// round (identical to `distributed_greedy`'s), opens one persistent
    /// session per non-empty shard, and merges. The engine borrows only
    /// `problem`; all session state is owned.
    ///
    /// # Panics
    ///
    /// Panics when `config.machines == 0`.
    pub fn new<F: SetFunction>(
        problem: &'q DiversificationProblem<M, F>,
        p: usize,
        config: ShardedConfig,
    ) -> Self {
        Self::build(
            problem,
            p,
            config,
            |f| f.incremental(),
            |inner, ids| {
                let view: RestrictedOracle<
                    Box<dyn IncrementalOracle + 'q>,
                    dyn IncrementalOracle + 'q,
                > = RestrictedOracle::new(inner, ids);
                Box::new(view)
            },
        )
    }
}

impl<'q, M: Metric> SyncShardedEngine<'q, M> {
    /// Thread-shareable variant of [`ShardedEngine::new`] (enables the
    /// `parallel`-feature `apply_batch_parallel` entry point).
    pub fn new_sync<F: SetFunction + Sync>(
        problem: &'q DiversificationProblem<M, F>,
        p: usize,
        config: ShardedConfig,
    ) -> Self {
        Self::build(
            problem,
            p,
            config,
            |f| f.incremental_sync(),
            |inner, ids| {
                let view: RestrictedOracle<
                    Box<dyn IncrementalOracle + Send + Sync + 'q>,
                    dyn IncrementalOracle + Send + Sync + 'q,
                > = RestrictedOracle::new(inner, ids);
                Box::new(view)
            },
        )
    }
}

impl<'q, M: Metric, Q: IncrementalOracle + ?Sized> ShardedEngine<'q, M, Q> {
    /// Generic construction core; `fresh_oracle` yields a new empty global
    /// oracle and `restrict` wraps one into a boxed shard-local view (the
    /// concrete constructors supply the unsize coercions).
    fn build<F: SetFunction>(
        problem: &'q DiversificationProblem<M, F>,
        p: usize,
        config: ShardedConfig,
        mut fresh_oracle: impl FnMut(&'q F) -> Box<Q>,
        mut restrict: impl FnMut(Box<Q>, Vec<ElementId>) -> Box<Q>,
    ) -> Self {
        assert!(config.machines > 0, "need at least one machine");
        let n = problem.ground_size();
        let p = p.min(n);
        let machines = config.machines;

        // Partition exactly like the one-shot solver.
        let mut shard_ids: Vec<Vec<ElementId>> = vec![Vec::new(); machines];
        match config.scheme {
            PartitionScheme::RoundRobin => {
                for u in 0..n as ElementId {
                    shard_ids[u as usize % machines].push(u);
                }
            }
            PartitionScheme::Contiguous => {
                let per = n.div_ceil(machines);
                for u in 0..n as ElementId {
                    shard_ids[(u as usize / per).min(machines - 1)].push(u);
                }
            }
        }
        let mut shard_of = vec![0u32; n];
        let mut local_of = vec![0 as ElementId; n];
        for (s, ids) in shard_ids.iter().enumerate() {
            for (l, &g) in ids.iter().enumerate() {
                shard_of[g as usize] = s as u32;
                local_of[g as usize] = l as ElementId;
            }
        }

        // Map round: the one-shot solver's exact code path (round-0
        // equivalence with `distributed_greedy`).
        let proposals: Vec<Vec<ElementId>> = shard_ids
            .iter()
            .map(|shard| {
                if p == 0 || shard.is_empty() {
                    Vec::new()
                } else {
                    solve_restricted(problem, shard, p, config.greedy)
                }
            })
            .collect();

        // Persistent sessions, seeded with the map-round proposals.
        let sessions: Vec<Option<DynamicSession<'q, ShardMetric<'q, M>, Q>>> = shard_ids
            .iter()
            .zip(&proposals)
            .map(|(ids, proposal)| {
                if proposal.is_empty() {
                    return None;
                }
                let metric =
                    OverlayMetric::new(RestrictedMetric::new(problem.metric(), ids.clone()));
                let mut oracle = restrict(fresh_oracle(problem.quality()), ids.clone());
                let local: Vec<ElementId> =
                    proposal.iter().map(|&g| local_of[g as usize]).collect();
                for &lu in &local {
                    oracle.insert(lu);
                }
                Some(DynamicSession::from_parts(
                    metric,
                    oracle,
                    problem.lambda(),
                    &local,
                ))
            })
            .collect();

        let mut engine = Self {
            metric: OverlayMetric::new(problem.metric()),
            lambda: problem.lambda(),
            p,
            config,
            shard_ids,
            shard_of,
            local_of,
            sessions,
            reduce_oracle: fresh_oracle(problem.quality()),
            proposals,
            shard_objective: vec![0.0; machines],
            union: Vec::new(),
            in_union: vec![false; n],
            merged: Vec::new(),
            merged_objective: 0.0,
            reduce_won: false,
            stats: MergeStats::default(),
        };
        engine.run_reduce();
        engine
    }

    /// Objective `f(set) + λ·d(set)` under the engine's perturbed view,
    /// scored through the global oracle (marginal telescoping — the oracle
    /// is returned to `S = ∅`).
    fn scored_objective(&mut self, set: &[ElementId]) -> f64 {
        let mut quality = 0.0;
        for &u in set {
            quality += self.reduce_oracle.marginal(u);
            self.reduce_oracle.insert(u);
        }
        for &u in set {
            self.reduce_oracle.remove(u);
        }
        quality + self.lambda * self.metric.dispersion(set)
    }

    /// Re-scores shard `s`'s proposal into `shard_objective`.
    fn refresh_shard_objective(&mut self, s: usize) {
        let proposal = std::mem::take(&mut self.proposals[s]);
        let val = self.scored_objective(&proposal);
        self.proposals[s] = proposal;
        self.shard_objective[s] = val;
    }

    /// Full union-scoped merge: rebuilds the proposal union, re-runs the
    /// reduce greedy over it (same Greedy B code path as the map round),
    /// re-scores every fallback candidate, and installs the winner under
    /// the one-shot solver's `reduce_val >= best_machine` rule.
    fn run_reduce(&mut self) {
        // Rebuild the union and its membership mask.
        for &u in &self.union {
            self.in_union[u as usize] = false;
        }
        let mut union: Vec<ElementId> = self.proposals.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        for &u in &union {
            self.in_union[u as usize] = true;
        }
        self.union = union;
        self.stats.reduce_runs += 1;
        self.stats.last_reduce_scope = self.union.len();

        if self.union.is_empty() {
            self.merged.clear();
            self.merged_objective = 0.0;
            self.reduce_won = false;
            return;
        }

        // Union-scoped reduce greedy through the shared selection loop.
        let reduced: Vec<ElementId> = {
            let view = RestrictedMetric::new(&self.metric, self.union.clone());
            let oracle: Box<dyn IncrementalOracle + '_> = Box::new(
                RestrictedOracle::<&mut Q, Q>::new(self.reduce_oracle.as_mut(), self.union.clone()),
            );
            let state = PotentialState::from_oracle(&view, oracle, self.lambda);
            let local = greedy_b_with_state(state, self.p, self.config.greedy);
            local.into_iter().map(|l| self.union[l as usize]).collect()
        };
        // The greedy left its selection in the global oracle; restore ∅.
        for &u in &reduced {
            self.reduce_oracle.remove(u);
        }
        let reduced_val = self.scored_objective(&reduced);

        // Best-single-shard fallback, re-scored under current data; ties
        // keep the last maximum, mirroring the one-shot solver's max_by.
        for s in 0..self.shard_ids.len() {
            self.refresh_shard_objective(s);
        }
        let mut best_idx = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for (s, &val) in self.shard_objective.iter().enumerate() {
            if val >= best_val {
                best_val = val;
                best_idx = s;
            }
        }

        if reduced_val >= best_val {
            self.merged = reduced;
            self.merged_objective = reduced_val;
            self.reduce_won = true;
        } else {
            self.merged = self.proposals[best_idx].clone();
            self.merged_objective = best_val;
            self.reduce_won = false;
        }
    }

    /// Shared batch-ingestion core: route, stabilize perturbed shards via
    /// `apply`, detect dirty proposals, and re-merge only when needed.
    fn ingest(
        &mut self,
        perturbations: &[SessionPerturbation],
        apply: ShardApply<'_, 'q, M, Q>,
    ) -> ShardedReport {
        self.stats.rounds += 1;
        let machines = self.shard_ids.len();
        let n = self.shard_of.len();
        let mut routed: Vec<Vec<SessionPerturbation>> = vec![Vec::new(); machines];
        let mut reduce_dirty = false;

        for &pert in perturbations {
            match pert {
                SessionPerturbation::SetWeight { u, value } => {
                    let ui = u as usize;
                    assert!(ui < n, "element {u} out of range");
                    // Mirror into the engine-global oracle so the reduce
                    // and fallback scoring see current weights.
                    self.reduce_oracle
                        .try_set_weight(u, value)
                        .unwrap_or_else(|| {
                            panic!("quality oracle does not support weight updates (element {u})")
                        });
                    if self.in_union[ui] {
                        reduce_dirty = true;
                    }
                    routed[self.shard_of[ui] as usize].push(SessionPerturbation::SetWeight {
                        u: self.local_of[ui],
                        value,
                    });
                }
                SessionPerturbation::SetDistance { u, v, value } => {
                    // Record globally (validates endpoints and value).
                    self.metric.set_distance(u, v, value);
                    let (ui, vi) = (u as usize, v as usize);
                    if self.in_union[ui] && self.in_union[vi] {
                        reduce_dirty = true;
                    }
                    if self.shard_of[ui] == self.shard_of[vi] {
                        routed[self.shard_of[ui] as usize].push(SessionPerturbation::SetDistance {
                            u: self.local_of[ui],
                            v: self.local_of[vi],
                            value,
                        });
                    }
                    // A cross-shard rewrite touches no session: no shard
                    // contains both endpoints, so no per-shard cache can
                    // see the pair. The engine overlay covers the reduce
                    // and all objective scoring.
                }
                SessionPerturbation::Arrive { u } => {
                    let ui = u as usize;
                    assert!(ui < n, "element {u} out of range");
                    // An inactive element is never in a current proposal,
                    // so arrivals alone cannot dirty the reduce.
                    routed[self.shard_of[ui] as usize].push(SessionPerturbation::Arrive {
                        u: self.local_of[ui],
                    });
                }
                SessionPerturbation::Depart { u } => {
                    let ui = u as usize;
                    assert!(ui < n, "element {u} out of range");
                    if self.in_union[ui] {
                        reduce_dirty = true;
                    }
                    routed[self.shard_of[ui] as usize].push(SessionPerturbation::Depart {
                        u: self.local_of[ui],
                    });
                }
            }
        }

        // Stabilize every perturbed shard.
        let mut swaps = 0usize;
        let mut refills = 0usize;
        let mut perturbed: Vec<usize> = Vec::new();
        for (s, batch) in routed.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let Some(session) = self.sessions[s].as_mut() else {
                continue; // p = 0: nothing to maintain
            };
            let report = apply(session, batch);
            if report.outcome.swap.is_some() {
                swaps += 1;
            }
            refills += report.refills.len();
            swaps += session.update_until_stable(self.config.max_updates);
            perturbed.push(s);
        }

        // Dirty-shard detection: proposal compared as a *set* (sessions
        // reorder members on swaps; order carries no information here).
        let mut dirty: Vec<usize> = Vec::new();
        for &s in &perturbed {
            let new_proposal: Vec<ElementId> = {
                let Some(session) = self.sessions[s].as_ref() else {
                    unreachable!("perturbed shard has a session")
                };
                let ids = &self.shard_ids[s];
                session
                    .solution()
                    .iter()
                    .map(|&lu| ids[lu as usize])
                    .collect()
            };
            let mut a = new_proposal.clone();
            a.sort_unstable();
            let mut b = self.proposals[s].clone();
            b.sort_unstable();
            if a != b {
                self.proposals[s] = new_proposal;
                dirty.push(s);
            }
        }

        // Incremental reduce: merge only when something it reads changed.
        let reduce_ran = reduce_dirty || !dirty.is_empty();
        if reduce_ran {
            self.run_reduce();
        }
        self.stats.last_dirty_shards = dirty.len();
        self.stats.last_reduce_ran = reduce_ran;

        ShardedReport {
            perturbed_shards: perturbed.len(),
            dirty_shards: dirty,
            swaps,
            refills,
            reduce_ran,
            reduce_scope: self.union.len(),
            reduce_won: self.reduce_won,
            objective: self.merged_objective,
        }
    }

    /// Applies one perturbation (see [`ShardedEngine::apply_batch`]).
    pub fn apply(&mut self, perturbation: SessionPerturbation) -> ShardedReport {
        self.apply_batch(&[perturbation])
    }

    /// Ingests a batch of global-id perturbations: routes each to its
    /// owning shard, stabilizes the perturbed sessions, and re-merges
    /// incrementally (only dirty/union-touching batches re-run the
    /// reduce). Returns the round's [`ShardedReport`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range elements, on `SetWeight` when the quality
    /// oracle does not support weight updates, and on invalid distances
    /// (negative, non-finite, or diagonal) — mirroring
    /// [`DynamicSession::apply_batch`].
    pub fn apply_batch(&mut self, perturbations: &[SessionPerturbation]) -> ShardedReport {
        self.ingest(perturbations, &mut |session, batch| {
            session.ingest_unchecked(batch)
        })
    }

    /// Validating [`ShardedEngine::apply`]: rejects a malformed
    /// perturbation with a typed [`PerturbationError`] instead of
    /// panicking, leaving the engine untouched.
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::try_apply_batch`], unwrapped to the single
    /// perturbation's error.
    pub fn try_apply(
        &mut self,
        perturbation: SessionPerturbation,
    ) -> Result<ShardedReport, PerturbationError> {
        self.try_apply_batch(std::slice::from_ref(&perturbation))
            .map_err(|e| match e {
                SessionError::Rejected { error, .. } => error,
                SessionError::PartialCommit(_) => {
                    unreachable!("sharded matrix batches are all-or-nothing")
                }
            })
    }

    /// Validating, **all-or-nothing** counterpart of
    /// [`ShardedEngine::apply_batch`]: every perturbation is checked up
    /// front (ranges, finite non-negative values, weight-update support,
    /// arrival/departure consistency against the availability the batch
    /// itself produces) and the whole batch is rejected — engine,
    /// overlays, shard sessions and merged solution untouched — on the
    /// first offender. Every failure here is statically checkable, so
    /// rejection costs no checkpoint and no rollback.
    ///
    /// # Errors
    ///
    /// [`SessionError::Rejected`] with the offending index and typed
    /// [`PerturbationError`].
    pub fn try_apply_batch(
        &mut self,
        perturbations: &[SessionPerturbation],
    ) -> Result<ShardedReport, SessionError> {
        self.validate_batch(perturbations)?;
        Ok(self.apply_batch(perturbations))
    }

    /// Static pre-validation for [`ShardedEngine::try_apply_batch`].
    fn validate_batch(&self, perturbations: &[SessionPerturbation]) -> Result<(), SessionError> {
        let n = self.shard_of.len();
        // Overlays the batch's earlier arrivals/departures onto the live
        // per-shard availability, as `DynamicSession::try_apply_batch`.
        let mut sim: std::collections::HashMap<ElementId, bool> = std::collections::HashMap::new();
        let resident = |engine: &Self, u: ElementId, sim: &std::collections::HashMap<_, _>| {
            sim.get(&u).copied().unwrap_or_else(|| {
                let s = engine.shard_of[u as usize] as usize;
                engine.sessions[s]
                    .as_ref()
                    // A p = 0 shard keeps no session (and drops the
                    // perturbation on apply); treat its elements as
                    // resident so arrivals there are flagged rather than
                    // silently double-admitted.
                    .is_none_or(|session| session.is_active(engine.local_of[u as usize]))
            })
        };
        let check_range = |u: ElementId| {
            if (u as usize) < n {
                Ok(())
            } else {
                Err(PerturbationError::ElementOutOfRange { u, n })
            }
        };
        for (index, &pert) in perturbations.iter().enumerate() {
            let check = match pert {
                SessionPerturbation::SetWeight { u, value } => check_range(u).and_then(|()| {
                    if !self.reduce_oracle.supports_weight_updates() {
                        Err(PerturbationError::WeightUpdatesUnsupported { u })
                    } else if !(value.is_finite() && value >= 0.0) {
                        Err(PerturbationError::InvalidWeight { u, value })
                    } else {
                        Ok(())
                    }
                }),
                SessionPerturbation::SetDistance { u, v, value } => {
                    check_range(u).and_then(|()| check_range(v)).and_then(|()| {
                        if u == v {
                            Err(PerturbationError::DiagonalDistance { u })
                        } else if !(value.is_finite() && value >= 0.0) {
                            Err(PerturbationError::InvalidDistance { u, v, value })
                        } else {
                            Ok(())
                        }
                    })
                }
                SessionPerturbation::Arrive { u } => check_range(u).and_then(|()| {
                    if resident(self, u, &sim) {
                        Err(PerturbationError::DuplicateArrival { u })
                    } else {
                        sim.insert(u, true);
                        Ok(())
                    }
                }),
                SessionPerturbation::Depart { u } => check_range(u).and_then(|()| {
                    if !resident(self, u, &sim) {
                        Err(PerturbationError::DepartureOfAbsent { u })
                    } else {
                        sim.insert(u, false);
                        Ok(())
                    }
                }),
            };
            if let Err(error) = check {
                return Err(SessionError::Rejected { index, error });
            }
        }
        Ok(())
    }

    /// The merged solution (global ids).
    pub fn solution(&self) -> &[ElementId] {
        &self.merged
    }

    /// Objective of the merged solution under the perturbed view.
    pub fn objective(&self) -> f64 {
        self.merged_objective
    }

    /// `true` when the merged solution comes from the reduce greedy
    /// rather than the best-single-shard fallback.
    pub fn reduce_won(&self) -> bool {
        self.reduce_won
    }

    /// Current per-shard proposals (global ids, selection order).
    pub fn proposals(&self) -> &[Vec<ElementId>] {
        &self.proposals
    }

    /// Sorted union of the current proposals (the reduce scope).
    pub fn union(&self) -> &[ElementId] {
        &self.union
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_ids.len()
    }

    /// The shard owning global element `u`.
    pub fn shard_of(&self, u: ElementId) -> usize {
        self.shard_of[u as usize] as usize
    }

    /// Global ids of shard `s` (ascending).
    pub fn shard_members(&self, s: usize) -> &[ElementId] {
        &self.shard_ids[s]
    }

    /// The live session of shard `s`, if the shard is non-empty.
    pub fn session(&self, s: usize) -> Option<&DynamicSession<'q, ShardMetric<'q, M>, Q>> {
        self.sessions[s].as_ref()
    }

    /// Target cardinality `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The trade-off `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The engine's global perturbed metric view.
    pub fn metric(&self) -> &OverlayMetric<&'q M> {
        &self.metric
    }

    /// Cumulative merge statistics.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }
}

#[cfg(feature = "parallel")]
impl<'q, M: Metric + Sync> SyncShardedEngine<'q, M> {
    /// [`ShardedEngine::apply_batch`] with each perturbed shard stabilized
    /// through the session's thread-parallel scans. Chunking changes
    /// scheduling only — routing, dirty detection and the reduce are
    /// identical to the serial path, and so are the selected elements.
    pub fn apply_batch_parallel(&mut self, perturbations: &[SessionPerturbation]) -> ShardedReport {
        self.ingest(perturbations, &mut |session, batch| {
            session.apply_batch_parallel(batch)
        })
    }

    /// Parallel [`ShardedEngine::try_apply_batch`] — same static
    /// validation, same all-or-nothing contract.
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::try_apply_batch`].
    pub fn try_apply_batch_parallel(
        &mut self,
        perturbations: &[SessionPerturbation],
    ) -> Result<ShardedReport, SessionError> {
        self.validate_batch(perturbations)?;
        Ok(self.apply_batch_parallel(perturbations))
    }

    /// Routes every shard session's parallel scans through an explicit
    /// [`crate::pool::ScanPool`] (builder style) — the env-free route for
    /// forcing a chunk schedule; results are bit-identical for any pool.
    pub fn with_scan_pool(mut self, pool: std::sync::Arc<crate::pool::ScanPool>) -> Self {
        for session in self.sessions.iter_mut().flatten() {
            session.set_scan_pool(std::sync::Arc::clone(&pool));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::{distributed_greedy, DistributedConfig};
    use msd_metric::DistanceMatrix;
    use msd_submodular::ModularFunction;

    fn instance(seed: u64, n: usize) -> DiversificationProblem<DistanceMatrix, ModularFunction> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2)
    }

    fn config(machines: usize, scheme: PartitionScheme) -> ShardedConfig {
        ShardedConfig {
            machines,
            scheme,
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn round_zero_matches_one_shot_distributed_greedy() {
        for seed in 0..6u64 {
            let problem = instance(seed, 36);
            for machines in [1usize, 3, 5] {
                for scheme in [PartitionScheme::RoundRobin, PartitionScheme::Contiguous] {
                    let engine = ShardedEngine::new(&problem, 6, config(machines, scheme));
                    let one_shot = distributed_greedy(
                        &problem,
                        6,
                        DistributedConfig {
                            machines,
                            scheme,
                            greedy: GreedyBConfig::default(),
                        },
                    );
                    assert_eq!(engine.solution(), &one_shot.set[..], "seed {seed}");
                    assert_eq!(engine.proposals(), &one_shot.proposals[..]);
                    assert_eq!(engine.reduce_won(), one_shot.reduce_won);
                    assert_eq!(engine.objective(), one_shot.objective);
                }
            }
        }
    }

    #[test]
    fn try_apply_batch_rejects_malformed_batches_without_mutation() {
        let problem = instance(5, 30);
        let mut engine = ShardedEngine::new(&problem, 5, config(3, PartitionScheme::RoundRobin));
        engine.apply(SessionPerturbation::Depart { u: 17 });
        let before_solution = engine.solution().to_vec();
        let before_objective = engine.objective().to_bits();
        let before_proposals = engine.proposals().to_vec();
        let cases: Vec<(Vec<SessionPerturbation>, usize)> = vec![
            // NaN distance behind a valid prefix entry.
            (
                vec![
                    SessionPerturbation::SetWeight { u: 0, value: 2.0 },
                    SessionPerturbation::SetDistance {
                        u: 1,
                        v: 2,
                        value: f64::NAN,
                    },
                ],
                1,
            ),
            (
                vec![SessionPerturbation::SetDistance {
                    u: 4,
                    v: 4,
                    value: 1.0,
                }],
                0,
            ),
            (
                vec![SessionPerturbation::SetWeight { u: 99, value: 1.0 }],
                0,
            ),
            (vec![SessionPerturbation::Arrive { u: 3 }], 0), // already resident
            (vec![SessionPerturbation::Depart { u: 17 }], 0), // already gone
            // The sim mask sees the batch's own arrival.
            (
                vec![
                    SessionPerturbation::Arrive { u: 17 },
                    SessionPerturbation::Arrive { u: 17 },
                ],
                1,
            ),
        ];
        for (batch, want_index) in cases {
            let err = engine.try_apply_batch(&batch).unwrap_err();
            let SessionError::Rejected { index, .. } = err else {
                panic!("sharded matrix batches never partial-commit: {err:?}");
            };
            assert_eq!(index, want_index, "{batch:?}");
            assert_eq!(engine.solution(), &before_solution[..]);
            assert_eq!(engine.objective().to_bits(), before_objective);
            assert_eq!(engine.proposals(), &before_proposals[..]);
        }
        // Valid traffic (including the arrival/departure round-trip the
        // rejected batches circled) still flows, identical to the
        // panicking path.
        let report = engine
            .try_apply_batch(&[
                SessionPerturbation::Arrive { u: 17 },
                SessionPerturbation::SetWeight { u: 0, value: 2.0 },
            ])
            .unwrap();
        let _ = report.reduce_ran;
        let err = engine
            .try_apply(SessionPerturbation::Arrive { u: 17 })
            .unwrap_err();
        assert_eq!(err, PerturbationError::DuplicateArrival { u: 17 });
    }

    #[test]
    fn quiet_batch_skips_the_reduce() {
        let problem = instance(3, 30);
        let mut engine = ShardedEngine::new(&problem, 4, config(3, PartitionScheme::RoundRobin));
        // Warm-up: the map-round proposals are greedy output, not
        // swap-stable, so the first batch touching shard 0 may stabilize
        // it (a legitimate dirty round). Poke shard 0 once to settle it.
        let pick_outside = |engine: &ShardedEngine<'_, DistanceMatrix>| {
            (0..30u32)
                .filter(|&u| !engine.union().contains(&u) && engine.shard_of(u) == 0)
                .collect::<Vec<ElementId>>()
        };
        let warm = pick_outside(&engine);
        let d0 = problem.metric().distance(warm[0], warm[1]);
        engine.apply(SessionPerturbation::SetDistance {
            u: warm[0],
            v: warm[1],
            value: d0 * 0.5,
        });

        let before = engine.solution().to_vec();
        let runs_before = engine.stats().reduce_runs;
        // Now *lower* a distance between two same-shard elements outside
        // the union: no swap gain can grow and the reduce scope is
        // untouched, so the batch must be quiet.
        let outside = pick_outside(&engine);
        let (a, b) = (outside[2], outside[3]);
        let d = engine.metric().distance(a, b);
        let report = engine.apply(SessionPerturbation::SetDistance {
            u: a,
            v: b,
            value: d * 0.5,
        });
        assert!(!report.reduce_ran, "quiet batch must skip the reduce");
        assert!(report.dirty_shards.is_empty());
        assert_eq!(engine.stats().reduce_runs, runs_before);
        assert_eq!(engine.solution(), &before[..]);
    }

    #[test]
    fn union_weight_rewrite_forces_a_reduce() {
        let problem = instance(4, 30);
        let mut engine = ShardedEngine::new(&problem, 4, config(3, PartitionScheme::RoundRobin));
        let runs_before = engine.stats().reduce_runs;
        let target = engine.union()[0];
        let report = engine.apply(SessionPerturbation::SetWeight {
            u: target,
            value: 50.0,
        });
        assert!(report.reduce_ran);
        assert_eq!(engine.stats().reduce_runs, runs_before + 1);
        assert!(engine.solution().contains(&target));
    }

    #[test]
    fn departure_of_merged_member_refills_and_remerges() {
        let problem = instance(5, 24);
        let mut engine = ShardedEngine::new(&problem, 4, config(2, PartitionScheme::Contiguous));
        let leaving = engine.solution()[0];
        let report = engine.apply(SessionPerturbation::Depart { u: leaving });
        assert!(report.reduce_ran);
        assert!(!engine.solution().contains(&leaving));
        assert_eq!(engine.solution().len(), 4);
    }

    #[test]
    fn parallel_feature_objective_is_consistent() {
        let problem = instance(6, 20);
        let engine = ShardedEngine::new(&problem, 5, config(4, PartitionScheme::RoundRobin));
        // Engine objective must equal re-scoring its solution from scratch.
        let expect = problem.objective(engine.solution());
        assert!((engine.objective() - expect).abs() < 1e-9);
    }

    #[test]
    fn p_zero_engine_is_empty_and_inert() {
        let problem = instance(7, 10);
        let mut engine = ShardedEngine::new(&problem, 0, config(2, PartitionScheme::RoundRobin));
        assert!(engine.solution().is_empty());
        assert_eq!(engine.objective(), 0.0);
        let report = engine.apply(SessionPerturbation::SetWeight { u: 3, value: 9.0 });
        assert!(engine.solution().is_empty());
        assert!(!report.reduce_ran);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let problem = instance(1, 4);
        let _ = ShardedEngine::new(&problem, 2, config(0, PartitionScheme::RoundRobin));
    }
}
