//! The Appendix counterexample: greedy is unboundedly bad under a matroid.
//!
//! The paper's Appendix constructs a partition-matroid instance on which the
//! Section 4 greedy has no constant approximation ratio, motivating local
//! search for the matroid case:
//!
//! * Universe `A ∪ C` with `A = {a, b}` (capacity 1) and
//!   `C = {c_1, …, c_r}` (unbounded capacity);
//! * quality `q(a) = ℓ + ε`, `q(x) = 0` otherwise;
//! * distances `d(b, x) = ℓ` for all `x ≠ b` and `d(u, v) = ε` for all
//!   other pairs;
//! * objective `f(S) + Σ_{u,v ∈ S} d(u,v)` (i.e. `λ = 1`).
//!
//! Greedy starts with `a` (or the best pair, which also contains `a`),
//! which exhausts block `A` and locks `b` out, yielding
//! `φ = ℓ + ε + ε·C(r,2) + r·ε`, while the optimum `C ∪ {b}` has
//! `φ = r·ℓ + ε·C(r,2)`. With `ε = 1/C(r,2)` the ratio grows without bound
//! in `r`. Local search (Theorem 2) stays within factor 2 on the same
//! instance — the integration tests exercise exactly that contrast.

use msd_matroid::PartitionMatroid;
use msd_metric::DistanceMatrix;
use msd_submodular::ModularFunction;

use crate::problem::DiversificationProblem;
use crate::ElementId;

/// The instantiated appendix counterexample.
#[derive(Debug, Clone)]
pub struct AppendixInstance {
    /// The diversification problem (λ = 1).
    pub problem: DiversificationProblem<DistanceMatrix, ModularFunction>,
    /// The two-block partition matroid (`{a, b}` capacity 1, `C`
    /// unbounded).
    pub matroid: PartitionMatroid,
    /// Element id of `a` (always 0).
    pub a: ElementId,
    /// Element id of `b` (always 1).
    pub b: ElementId,
    /// The parameter `ℓ`.
    pub ell: f64,
    /// The parameter `ε` (defaults to `1/C(r,2)`).
    pub epsilon: f64,
    /// Number of `c_i` elements.
    pub r: usize,
}

impl AppendixInstance {
    /// Builds the instance with the paper's choice `ε = 1/C(r,2)`.
    ///
    /// # Panics
    ///
    /// Panics for `r < 2` (the construction needs at least one `c`-pair)
    /// or non-positive `ℓ`.
    pub fn new(r: usize, ell: f64) -> Self {
        assert!(r >= 2, "need r >= 2, got {r}");
        assert!(ell > 0.0, "need ell > 0, got {ell}");
        let epsilon = 1.0 / (r * (r - 1) / 2) as f64;
        Self::with_epsilon(r, ell, epsilon)
    }

    /// Builds the instance with an explicit `ε ∈ (0, ℓ]`.
    pub fn with_epsilon(r: usize, ell: f64, epsilon: f64) -> Self {
        assert!(r >= 2, "need r >= 2, got {r}");
        assert!(ell > 0.0, "need ell > 0, got {ell}");
        assert!(
            epsilon > 0.0 && epsilon <= ell,
            "need 0 < epsilon <= ell for metricity, got {epsilon}"
        );
        let n = r + 2;
        // ids: 0 = a, 1 = b, 2.. = c_i.
        let metric =
            DistanceMatrix::from_fn(n, |u, v| if u == 1 || v == 1 { ell } else { epsilon });
        let mut weights = vec![0.0; n];
        weights[0] = ell + epsilon;
        let quality = ModularFunction::new(weights);
        let problem = DiversificationProblem::new(metric, quality, 1.0);

        // Block 0 = {a, b} with capacity 1; block 1 = C, capacity r.
        let mut block_of = vec![1u32; n];
        block_of[0] = 0;
        block_of[1] = 0;
        let matroid = PartitionMatroid::new(block_of, vec![1, r as u32]);

        Self {
            problem,
            matroid,
            a: 0,
            b: 1,
            ell,
            epsilon,
            r,
        }
    }

    /// The greedy solution's value `φ(C ∪ {a}) = ℓ + ε + ε·C(r,2) + r·ε`.
    pub fn greedy_value(&self) -> f64 {
        let pairs = (self.r * (self.r - 1) / 2) as f64;
        self.ell + self.epsilon + self.epsilon * pairs + self.r as f64 * self.epsilon
    }

    /// The optimal value `φ(C ∪ {b}) = r·ℓ + ε·C(r,2)`.
    pub fn optimal_value(&self) -> f64 {
        let pairs = (self.r * (self.r - 1) / 2) as f64;
        self.r as f64 * self.ell + self.epsilon * pairs
    }

    /// The optimal basis `C ∪ {b}`.
    pub fn optimal_set(&self) -> Vec<ElementId> {
        let mut s: Vec<ElementId> = vec![self.b];
        s.extend(2..(self.r + 2) as ElementId);
        s
    }

    /// The greedy trap basis `C ∪ {a}`.
    pub fn greedy_set(&self) -> Vec<ElementId> {
        let mut s: Vec<ElementId> = vec![self.a];
        s.extend(2..(self.r + 2) as ElementId);
        s
    }

    /// The approximation ratio the greedy attains: `OPT / greedy`.
    pub fn greedy_ratio(&self) -> f64 {
        self.optimal_value() / self.greedy_value()
    }
}

/// Simulates the Section 4 greedy constrained to the partition matroid
/// (add the max-potential element whose addition stays independent). This
/// is the natural matroid adaptation that the Appendix shows is broken.
pub fn matroid_constrained_greedy(instance: &AppendixInstance) -> Vec<ElementId> {
    use msd_matroid::Matroid;
    use msd_metric::Metric;
    use msd_submodular::SetFunction;

    let problem = &instance.problem;
    let matroid = &instance.matroid;
    let n = problem.ground_size();
    let mut members: Vec<ElementId> = Vec::new();
    loop {
        let mut best: Option<ElementId> = None;
        let mut best_score = f64::NEG_INFINITY;
        for u in 0..n as ElementId {
            if members.contains(&u) || !matroid.can_add(u, &members) {
                continue;
            }
            let score = 0.5 * problem.quality().marginal(u, &members)
                + problem.lambda() * problem.metric().distance_to_set(u, &members);
            if score > best_score {
                best_score = score;
                best = Some(u);
            }
        }
        match best {
            Some(u) => members.push(u),
            None => break,
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_search::{local_search_matroid, LocalSearchConfig};
    use msd_matroid::Matroid;
    use msd_metric::MetricAudit;

    #[test]
    fn instance_is_metric() {
        let inst = AppendixInstance::new(6, 2.0);
        MetricAudit::check(inst.problem.metric()).assert_metric();
    }

    #[test]
    fn closed_forms_match_direct_evaluation() {
        let inst = AppendixInstance::new(8, 3.0);
        let g = inst.problem.objective(&inst.greedy_set());
        let o = inst.problem.objective(&inst.optimal_set());
        assert!((g - inst.greedy_value()).abs() < 1e-9);
        assert!((o - inst.optimal_value()).abs() < 1e-9);
    }

    #[test]
    fn greedy_walks_into_the_trap() {
        let inst = AppendixInstance::new(10, 2.0);
        let mut g = matroid_constrained_greedy(&inst);
        g.sort_unstable();
        let mut expected = inst.greedy_set();
        expected.sort_unstable();
        assert_eq!(g, expected, "greedy must pick a and never b");
    }

    #[test]
    fn greedy_ratio_grows_with_r() {
        let small = AppendixInstance::new(5, 2.0);
        let large = AppendixInstance::new(50, 2.0);
        assert!(large.greedy_ratio() > small.greedy_ratio());
        assert!(
            large.greedy_ratio() > 10.0,
            "ratio at r=50 should be large, got {}",
            large.greedy_ratio()
        );
    }

    #[test]
    fn local_search_stays_within_factor_two_on_the_same_instance() {
        let inst = AppendixInstance::new(12, 2.0);
        let r = local_search_matroid(&inst.problem, &inst.matroid, LocalSearchConfig::default());
        assert!(inst.matroid.is_independent(&r.set));
        assert!(
            2.0 * r.objective >= inst.optimal_value() - 1e-9,
            "local search {} vs OPT {}",
            r.objective,
            inst.optimal_value()
        );
        // On this instance local search actually escapes the trap and
        // finds the optimum (it swaps a for b).
        assert!(r.set.contains(&inst.b));
    }

    #[test]
    fn greedy_and_optimal_sets_are_bases() {
        let inst = AppendixInstance::new(7, 1.5);
        assert!(inst.matroid.is_independent(&inst.greedy_set()));
        assert!(inst.matroid.is_independent(&inst.optimal_set()));
        assert_eq!(inst.matroid.rank(), inst.r + 1);
    }

    #[test]
    #[should_panic(expected = "need r >= 2")]
    fn tiny_r_rejected() {
        let _ = AppendixInstance::new(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "metricity")]
    fn epsilon_above_ell_rejected() {
        let _ = AppendixInstance::with_epsilon(5, 1.0, 2.0);
    }
}
