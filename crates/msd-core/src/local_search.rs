//! Single-swap local search over matroid bases (Section 5, Theorem 2).
//!
//! ```text
//! {x, y} = argmax_{ {x,y} ∈ F } [ f({x,y}) + λ·d(x,y) ]
//! let S be a basis containing x and y
//! while ∃ u ∈ U−S, v ∈ S with S − v + u ∈ F and φ(S − v + u) > φ(S)
//!     S = S − v + u
//! return S
//! ```
//!
//! Theorem 2: the result is a 2-approximation for max-sum diversification
//! with a monotone submodular quality function under any matroid
//! constraint — the regime where the Section 4 greedy provably fails (see
//! [`crate::counterexample`]).
//!
//! As the paper notes after Theorem 2, requiring at least an
//! ε-improvement per swap makes the algorithm polynomial at a small cost
//! in the ratio; [`LocalSearchConfig::epsilon`] exposes that knob
//! (`epsilon = 0` reproduces the plain rule).
//!
//! [`local_search_refine`] is the *budgeted* variant of Section 7's
//! experiments: it starts from a given solution (there, Greedy B's output)
//! and performs best-improvement 1-swaps under a uniform matroid until a
//! local optimum or a wall-clock budget is hit ("terminated … when the
//! algorithm runs for ten times the time of the Greedy B initialization").

// Constraint-scan module (shares the matroid exchange fast path with the
// dynamic session's constrained scans): no panicking shortcuts outside
// tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::time::{Duration, Instant};

use msd_matroid::Matroid;
use msd_metric::Metric;
use msd_submodular::SetFunction;

use crate::potential::PotentialState;
use crate::problem::DiversificationProblem;
use crate::ElementId;

/// Pivoting rule for choosing among improving swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Scan all `(u, v)` pairs and apply the best improving swap.
    #[default]
    BestImprovement,
    /// Apply the first improving swap found (cheaper per iteration, more
    /// iterations; same guarantee).
    FirstImprovement,
}

/// Configuration for the local search.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Relative improvement threshold: a swap is taken only if it improves
    /// `φ` by more than `epsilon · max(|φ(S)|, 1)`. `0` is the paper's
    /// plain rule; any `ε > 0` bounds the number of swaps polynomially at
    /// a `(1+ε)` factor in the ratio.
    pub epsilon: f64,
    /// Hard cap on the number of swaps.
    pub max_swaps: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Pivoting rule.
    pub pivot: PivotRule,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            epsilon: 1e-12,
            max_swaps: usize::MAX,
            time_budget: None,
            pivot: PivotRule::BestImprovement,
        }
    }
}

/// Outcome of a local-search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The final solution.
    pub set: Vec<ElementId>,
    /// Its objective value.
    pub objective: f64,
    /// Number of swaps performed.
    pub swaps: usize,
    /// `true` if the run ended at a local optimum (rather than on a
    /// budget/cap).
    pub converged: bool,
}

/// The paper's Theorem 2 algorithm: local search over bases of `matroid`.
///
/// # Panics
///
/// Panics if the matroid's ground size disagrees with the problem's.
pub fn local_search_matroid<M: Metric, F: SetFunction, Mat: Matroid>(
    problem: &DiversificationProblem<M, F>,
    matroid: &Mat,
    config: LocalSearchConfig,
) -> LocalSearchResult {
    assert_eq!(
        matroid.ground_size(),
        problem.ground_size(),
        "matroid and problem must share a ground set"
    );
    let n = problem.ground_size();
    let rank = matroid.rank();
    if rank == 0 || n == 0 {
        return LocalSearchResult {
            set: Vec::new(),
            objective: 0.0,
            swaps: 0,
            converged: true,
        };
    }

    // Initialization: the best independent pair {x, y}, extended to a
    // basis. (If the rank is 1 no pair exists; fall back to the best
    // singleton.)
    let seed: Vec<ElementId> = if rank >= 2 {
        let mut best: Option<(ElementId, ElementId)> = None;
        let mut best_score = f64::NEG_INFINITY;
        for x in 0..n as ElementId {
            for y in (x + 1)..n as ElementId {
                if !matroid.is_independent(&[x, y]) {
                    continue;
                }
                let score = problem.quality().value(&[x, y])
                    + problem.lambda() * problem.metric().distance(x, y);
                if score > best_score {
                    best_score = score;
                    best = Some((x, y));
                }
            }
        }
        match best {
            Some((x, y)) => vec![x, y],
            None => Vec::new(),
        }
    } else {
        // `total_cmp` keeps the argmax total (and the seed deterministic)
        // even on NaN singleton values, which it orders above +∞; the
        // validated ingestion paths reject NaN upstream, so this is a
        // determinism backstop, not a semantic choice. Ties keep the
        // highest index (`max_by` returns the last maximum).
        let best = (0..n as ElementId)
            .filter(|&x| matroid.is_independent(&[x]))
            .max_by(|&a, &b| {
                problem
                    .quality()
                    .singleton(a)
                    .total_cmp(&problem.quality().singleton(b))
            });
        best.map(|x| vec![x]).unwrap_or_default()
    };
    let basis = matroid.extend_to_basis(&seed);
    refine(problem, matroid, basis, config)
}

/// Budgeted refinement from an explicit starting set (Section 7's "LS").
///
/// The constraint is the uniform matroid of rank `|initial|` — i.e. plain
/// 1-swap local search preserving the cardinality.
pub fn local_search_refine<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    initial: &[ElementId],
    config: LocalSearchConfig,
) -> LocalSearchResult {
    let matroid = msd_matroid::UniformMatroid::new(problem.ground_size(), initial.len());
    refine(problem, &matroid, initial.to_vec(), config)
}

/// Core swap loop shared by both entry points.
fn refine<M: Metric, F: SetFunction, Mat: Matroid>(
    problem: &DiversificationProblem<M, F>,
    matroid: &Mat,
    initial: Vec<ElementId>,
    config: LocalSearchConfig,
) -> LocalSearchResult {
    let start = Instant::now();
    let n = problem.ground_size();

    let mut state = PotentialState::from_set(problem, &initial);
    let mut objective = problem.objective(state.members());
    let mut swaps = 0usize;
    let mut converged = false;

    loop {
        if swaps >= config.max_swaps {
            break;
        }
        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        let threshold = config.epsilon * objective.abs().max(1.0);
        let mut chosen: Option<(ElementId, ElementId, f64)> = None;

        'scan: for u in 0..n as ElementId {
            if state.contains(u) {
                continue;
            }
            let members = state.members();
            for &v in members {
                // `exchange_feasible` is `can_swap(u, v, members)` with
                // the per-family fast paths (uniform O(1), partition
                // O(1) same-block) engaged in this hot loop.
                if !matroid.exchange_feasible(members, v, u) {
                    continue;
                }
                // Δφ = f-swap-gain + λ·(d_u(S) − d(u,v) − d_v(S)) — both
                // terms O(1)/O(touched) from the fused caches, with no
                // per-iteration member-list clone.
                let gain = state.swap_gain(u, v);
                if gain <= threshold {
                    continue;
                }
                match config.pivot {
                    PivotRule::FirstImprovement => {
                        chosen = Some((u, v, gain));
                        break 'scan;
                    }
                    PivotRule::BestImprovement => {
                        if chosen.is_none_or(|(_, _, g)| gain > g) {
                            chosen = Some((u, v, gain));
                        }
                    }
                }
            }
        }
        match chosen {
            Some((u, v, gain)) => {
                state.swap(u, v);
                objective += gain;
                swaps += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    // Recompute the objective exactly to shed accumulated float drift.
    let set = state.into_members();
    let objective = problem.objective(&set);
    LocalSearchResult {
        set,
        objective,
        swaps,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::enumerate_exact;
    use msd_matroid::{PartitionMatroid, UniformMatroid};
    use msd_metric::DistanceMatrix;
    use msd_submodular::{CoverageFunction, ModularFunction};

    fn pseudo_random_instance(
        seed: u64,
        n: usize,
    ) -> DiversificationProblem<DistanceMatrix, ModularFunction> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2)
    }

    #[test]
    fn returns_a_basis_of_the_matroid() {
        let problem = pseudo_random_instance(1, 8);
        let matroid = PartitionMatroid::new(vec![0, 0, 0, 0, 1, 1, 1, 1], vec![2, 2]);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        assert_eq!(r.set.len(), 4);
        assert!(matroid.is_independent(&r.set));
        assert!(r.converged);
    }

    #[test]
    fn local_optimum_has_no_improving_swap() {
        let problem = pseudo_random_instance(2, 8);
        let matroid = UniformMatroid::new(8, 3);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        for u in 0..8u32 {
            if r.set.contains(&u) {
                continue;
            }
            for &v in &r.set {
                let gain = problem.swap_gain(u, v, &r.set);
                assert!(gain <= 1e-9, "improving swap {u}<->{v} left: {gain}");
            }
        }
    }

    #[test]
    fn achieves_half_of_optimum_under_uniform_matroid() {
        for seed in 0..10u64 {
            let problem = pseudo_random_instance(seed, 9);
            for p in 2..=4usize {
                let matroid = UniformMatroid::new(9, p);
                let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
                let opt = enumerate_exact(&problem, p);
                assert!(
                    2.0 * r.objective >= opt.objective - 1e-9,
                    "seed {seed} p {p}"
                );
            }
        }
    }

    #[test]
    fn achieves_half_of_optimum_under_partition_matroid() {
        // Exhaustive optimum over the partition matroid's bases.
        for seed in 0..8u64 {
            let problem = pseudo_random_instance(seed + 50, 8);
            let matroid = PartitionMatroid::new(vec![0, 0, 0, 0, 1, 1, 1, 1], vec![1, 2]);
            let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
            // Brute force over all subsets.
            let mut opt = f64::NEG_INFINITY;
            for mask in 0u32..256 {
                let set: Vec<ElementId> = (0..8).filter(|&i| mask >> i & 1 == 1).collect();
                if set.len() == 3 && matroid.is_independent(&set) {
                    opt = opt.max(problem.objective(&set));
                }
            }
            assert!(2.0 * r.objective >= opt - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn refine_never_decreases_the_objective() {
        let problem = pseudo_random_instance(11, 12);
        let initial: Vec<ElementId> = vec![0, 1, 2, 3];
        let before = problem.objective(&initial);
        let r = local_search_refine(&problem, &initial, LocalSearchConfig::default());
        assert!(r.objective >= before - 1e-12);
        assert_eq!(r.set.len(), 4);
    }

    #[test]
    fn max_swaps_zero_returns_initial() {
        let problem = pseudo_random_instance(4, 6);
        let initial: Vec<ElementId> = vec![0, 1];
        let r = local_search_refine(
            &problem,
            &initial,
            LocalSearchConfig {
                max_swaps: 0,
                ..LocalSearchConfig::default()
            },
        );
        assert_eq!(r.set, initial);
        assert_eq!(r.swaps, 0);
        assert!(!r.converged);
    }

    #[test]
    fn time_budget_zero_stops_immediately() {
        let problem = pseudo_random_instance(4, 10);
        let r = local_search_refine(
            &problem,
            &[0, 1, 2],
            LocalSearchConfig {
                time_budget: Some(Duration::ZERO),
                ..LocalSearchConfig::default()
            },
        );
        assert_eq!(r.swaps, 0);
    }

    #[test]
    fn first_improvement_reaches_a_local_optimum_too() {
        let problem = pseudo_random_instance(8, 9);
        let cfg = LocalSearchConfig {
            pivot: PivotRule::FirstImprovement,
            ..LocalSearchConfig::default()
        };
        let matroid = UniformMatroid::new(9, 3);
        let r = local_search_matroid(&problem, &matroid, cfg);
        assert!(r.converged);
        for u in 0..9u32 {
            if r.set.contains(&u) {
                continue;
            }
            for &v in &r.set {
                assert!(problem.swap_gain(u, v, &r.set) <= 1e-9);
            }
        }
    }

    #[test]
    fn large_epsilon_stops_early_but_keeps_feasibility() {
        let problem = pseudo_random_instance(9, 10);
        let matroid = UniformMatroid::new(10, 4);
        let r = local_search_matroid(
            &problem,
            &matroid,
            LocalSearchConfig {
                epsilon: 0.5,
                ..LocalSearchConfig::default()
            },
        );
        assert_eq!(r.set.len(), 4);
        assert!(r.converged);
    }

    #[test]
    fn rank_one_matroid_picks_best_singleton() {
        let problem = pseudo_random_instance(3, 6);
        let matroid = UniformMatroid::new(6, 1);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        assert_eq!(r.set.len(), 1);
        // Best singleton by φ = weight (dispersion of a singleton is 0).
        let best = (0..6u32)
            .max_by(|&a, &b| {
                problem
                    .quality()
                    .weight(a)
                    .total_cmp(&problem.quality().weight(b))
            })
            .unwrap();
        assert_eq!(r.set, vec![best]);
    }

    #[test]
    fn zero_rank_matroid_returns_empty() {
        let problem = pseudo_random_instance(3, 4);
        let matroid = UniformMatroid::new(4, 0);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        assert!(r.set.is_empty());
        assert_eq!(r.objective, 0.0);
    }

    #[test]
    fn works_with_submodular_quality_under_matroid() {
        let cover = CoverageFunction::new(
            vec![vec![0], vec![0], vec![1], vec![2], vec![3]],
            vec![4.0, 3.0, 2.0, 1.0],
        );
        let metric = DistanceMatrix::from_fn(5, |_, _| 1.0);
        let problem = DiversificationProblem::new(metric, cover, 0.1);
        let matroid = UniformMatroid::new(5, 3);
        let r = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
        // Optimal coverage picks one of {0,1}, plus 2 and 3 → f = 9.
        assert!((problem.quality().value(&r.set) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a ground set")]
    fn ground_size_mismatch_panics() {
        let problem = pseudo_random_instance(1, 4);
        let matroid = UniformMatroid::new(7, 2);
        let _ = local_search_matroid(&problem, &matroid, LocalSearchConfig::default());
    }
}
