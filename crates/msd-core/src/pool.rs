//! Persistent scan worker pool (`parallel` feature).
//!
//! Through PR 6 every chunked candidate scan spawned fresh
//! `std::thread::scope` workers and re-read the `MSD_PARALLEL_THREADS`
//! override from the process environment *per call* — a syscall-ish cost
//! on the hot path, and a data race once tests mutate the variable from a
//! multi-threaded harness (`std::env::set_var` is unsound to race with
//! readers on POSIX). [`ScanPool`] replaces both:
//!
//! * **Persistent workers.** A pool spawns its worker threads once; every
//!   scan enqueues chunk jobs onto a shared queue and blocks until its
//!   own chunks complete (scoped execution — chunk closures may borrow
//!   the caller's stack). No per-scan thread spawn/join.
//! * **Read-once configuration.** The worker count is fixed at pool
//!   construction. [`ScanPool::global`] reads `MSD_PARALLEL_THREADS`
//!   exactly once (first use, via `OnceLock`); tests and benches that
//!   need a specific chunk schedule construct their own
//!   [`ScanPool::new`] with an explicit count instead of mutating the
//!   environment.
//!
//! **Determinism is unchanged.** Chunk boundaries and the index-ordered
//! merges are exactly the ones the scoped spawns used
//! (`ScanPool::scan_chunks` / `ScanPool::fold_chunks` reproduce
//! `par_scan_chunks` / `par_fold_chunks` chunk for chunk), so every
//! parallel entry point remains bit-identical to its serial counterpart
//! for any worker count.
//!
//! An explicitly constructed pool is **forced**: like the old env
//! override, it always chunks (bypassing the work floor, clamped to the
//! work size) — that is how the equivalence suites exercise genuinely
//! chunked execution on few-core machines. The ambient global pool keeps
//! the hardware heuristic and the cost-weighted work floor.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Minimum estimated *weighted* scalar operations in a scan before
/// chunking amortizes: candidate evaluations × the quality oracle's
/// `scan_cost_hint` (1 for the O(1) modular arithmetic, the client count
/// for facility location, and so on).
///
/// The floor is calibrated on the dynamic-update scans: a modular n=5000,
/// p=50 single-swap scan is 250k cost-1 candidate reads, which is
/// memory-bandwidth-bound and measurably *loses* to serial when chunked
/// (`BENCH_dynamic.json` recorded 0.87×), while the same candidate count
/// under coverage or facility quality carries one-to-three orders of
/// magnitude more work per read and wins. Weighting by the oracle hint
/// lets one floor serve every quality family. Scans under the floor run
/// the serial code path — outputs are bit-identical either way, so this
/// is purely a scheduling decision.
pub(crate) const MIN_PAR_OPS: usize = 1 << 21;

/// Hard cap on chunk/worker counts (beyond it the merge overhead
/// outweighs any scan for realistic `n`); also bounds a misconfigured
/// `MSD_PARALLEL_THREADS`.
const MAX_THREADS: usize = 64;

/// A type-erased chunk job. Scans enqueue jobs whose closures borrow the
/// caller's stack; the lifetime is erased to `'static` only because
/// [`ScanPool::run_tasks`] blocks until every enqueued job has run (and
/// funnels worker panics back to the caller), so the borrows outlive the
/// job by construction.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is enqueued (or shutdown begins).
    work_ready: Condvar,
}

/// Completion latch of one scoped scan: counts outstanding jobs and
/// carries the first worker panic back to the submitting thread.
struct ScanLatch {
    state: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    done: Condvar,
}

/// Persistent worker pool for the chunked candidate scans. See the
/// [module docs](self).
pub struct ScanPool {
    shared: Option<Arc<PoolShared>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Target chunk/worker count (≥ 1, ≤ 64).
    threads: usize,
    /// `true` for explicitly constructed pools: always chunk, bypassing
    /// the work floor (the old `MSD_PARALLEL_THREADS` semantics).
    forced: bool,
}

impl std::fmt::Debug for ScanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPool")
            .field("threads", &self.threads)
            .field("forced", &self.forced)
            .finish()
    }
}

impl ScanPool {
    /// A pool targeting exactly `threads` chunks per scan (clamped to
    /// `1..=64`), with `threads − 1` persistent workers — the submitting
    /// thread always runs the first chunk itself. Explicit pools are
    /// **forced**: every scan chunks (clamped to the work size),
    /// bypassing the cost-weighted work floor, exactly like the old
    /// `MSD_PARALLEL_THREADS` override. This is the API tests and benches
    /// use instead of mutating the process environment.
    pub fn new(threads: usize) -> Self {
        Self::build(threads, true)
    }

    /// The process-wide ambient pool, sized by `MSD_PARALLEL_THREADS`
    /// when set (read **once**, on first use) and by the hardware
    /// parallelism otherwise. With the env override the pool is forced
    /// (always chunks — how CI exercises the chunk-merge discipline on
    /// few-core runners without any in-process `set_var`); without it,
    /// scans below the cost-weighted work floor stay serial.
    pub fn global() -> &'static ScanPool {
        static GLOBAL: OnceLock<ScanPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let forced = std::env::var("MSD_PARALLEL_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok());
            match forced {
                Some(t) => Self::build(t, true),
                None => {
                    let hw = std::thread::available_parallelism()
                        .map(NonZeroUsize::get)
                        .unwrap_or(1);
                    Self::build(hw.min(16), false)
                }
            }
        })
    }

    fn build(threads: usize, forced: bool) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        if threads == 1 {
            return Self {
                shared: None,
                workers: Vec::new(),
                threads,
                forced,
            };
        }
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("msd-scan-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scan worker")
            })
            .collect();
        Self {
            shared: Some(shared),
            workers,
            threads,
            forced,
        }
    }

    /// The pool's target chunk count (fixed at construction).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when scans always chunk (explicit pools and the env-sized
    /// global pool), bypassing the work floor.
    pub fn is_forced(&self) -> bool {
        self.forced
    }

    /// `true` when a scan of `ops` estimated weighted scalar operations
    /// (see [`MIN_PAR_OPS`]) should be distributed.
    pub(crate) fn worthwhile(&self, ops: usize) -> bool {
        self.forced || ops >= MIN_PAR_OPS
    }

    /// Chunk count for a scan over `work` candidates: the configured
    /// thread count, clamped to the work size; ambient pools additionally
    /// apply the 32-candidates-per-chunk amortization heuristic. These
    /// are exactly the old `num_threads` formulas with the env read
    /// replaced by pool state.
    fn num_chunks(&self, work: usize) -> usize {
        if self.forced {
            self.threads.clamp(1, work.max(1))
        } else {
            self.threads.min(work.div_ceil(32).max(1)).max(1)
        }
    }

    /// Generic deterministic scan over the chunked range `0..n`: each
    /// chunk folds with `scan` (which must itself break ties toward
    /// earlier candidates), and chunks merge in index order with
    /// strictly-greater comparison on the score extracted by `key` —
    /// chunk-for-chunk the discipline of the old scoped
    /// `par_scan_chunks`, so outputs are bit-identical to the serial
    /// traversal.
    pub(crate) fn scan_chunks<T, S, K>(&self, n: usize, scan: S, key: K) -> Option<T>
    where
        T: Send,
        S: Fn(usize, usize) -> Option<T> + Sync,
        K: Fn(&T) -> f64,
    {
        let per_chunk = self.run_chunked(n, &scan);
        match per_chunk {
            None => scan(0, n),
            Some(results) => {
                let mut best: Option<T> = None;
                for candidate in results.into_iter().flatten() {
                    if best.as_ref().is_none_or(|b| key(&candidate) > key(b)) {
                        best = Some(candidate);
                    }
                }
                best
            }
        }
    }

    /// Generic deterministic *fold* over the chunked range `0..n`: each
    /// chunk maps with `scan`, and the per-chunk results fold
    /// left-to-right in **index order** with `merge` — the shape needed
    /// when a scan also collects side state (e.g. the session's top-K
    /// candidate tables). `merge(a, b)` always receives `a` from earlier
    /// indices than `b`.
    pub(crate) fn fold_chunks<T, S, Me>(&self, n: usize, scan: S, merge: Me) -> T
    where
        T: Send,
        S: Fn(usize, usize) -> T + Sync,
        Me: Fn(T, T) -> T,
    {
        let per_chunk = self.run_chunked(n, &|lo, hi| Some(scan(lo, hi)));
        match per_chunk {
            None => scan(0, n),
            Some(results) => results
                .into_iter()
                .map(|r| r.expect("chunk produced a value"))
                .reduce(merge)
                .expect("at least one chunk"),
        }
    }

    /// Runs `scan` over the chunk grid for `n` candidates: `None` when
    /// the scan should run inline as one chunk, otherwise the per-chunk
    /// results in index order. Chunk 0 runs on the calling thread; the
    /// rest are executed by the persistent workers.
    fn run_chunked<T, S>(&self, n: usize, scan: &S) -> Option<Vec<Option<T>>>
    where
        T: Send,
        S: Fn(usize, usize) -> Option<T> + Sync,
    {
        let chunks = self.num_chunks(n);
        if chunks <= 1 || self.shared.is_none() {
            return None;
        }
        let chunk = n.div_ceil(chunks);
        let mut results: Vec<Option<T>> = Vec::new();
        results.resize_with(chunks, || None);
        {
            let (first, rest) = results.split_first_mut().expect("chunks >= 2");
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = rest
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let t = i + 1;
                    // Clamp *both* bounds: an over-provisioned chunk count
                    // (e.g. a forced pool exceeding n/chunk) would
                    // otherwise hand trailing chunks lo > n — fatal for
                    // slice-indexed scans.
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        *slot = scan((t * chunk).min(n), ((t + 1) * chunk).min(n))
                    });
                    task
                })
                .collect();
            self.run_tasks(tasks, || *first = scan(0, chunk.min(n)));
        }
        Some(results)
    }

    /// Fan-out/join entry point for *whole-task* jobs (the multi-tenant
    /// serving frontend's per-tenant flush+stabilize cycles, as opposed to
    /// the chunked candidate scans above): runs every job to completion
    /// before returning, with the first job on the calling thread and the
    /// rest distributed over the persistent workers under the same scoped
    /// latch/panic discipline as [`run_tasks`](Self::run_tasks). On a
    /// single-thread pool (no workers) the jobs run inline in order.
    ///
    /// Jobs must be *independent* — each touches disjoint state — and must
    /// not submit scans to this same pool (workers do not steal while a
    /// job blocks on the latch, so nested submission can deadlock).
    pub(crate) fn run_jobs<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let mut jobs = jobs;
        if self.shared.is_none() || jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let first = jobs.remove(0);
        self.run_tasks(jobs, first);
    }

    /// Scoped execution core: enqueues `tasks` onto the worker queue,
    /// runs `inline` (chunk 0) on the calling thread, then blocks until
    /// every task finished. A panicking task is caught on the worker,
    /// carried back, and resumed here — the pool itself survives.
    ///
    /// Safety: the job lifetimes are erased to `'static` for the queue;
    /// this is sound *only* because this function does not return until
    /// the latch counts every job done, so the borrows in `tasks` are
    /// live for as long as any worker can touch them.
    fn run_tasks<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
        inline: impl FnOnce(),
    ) {
        let shared = self.shared.as_ref().expect("run_tasks needs workers");
        let latch = Arc::new(ScanLatch {
            state: Mutex::new((tasks.len(), None)),
            done: Condvar::new(),
        });
        {
            let mut state = shared.state.lock().expect("pool state poisoned");
            for task in tasks {
                let latch = Arc::clone(&latch);
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    let mut st = latch.state.lock().expect("latch poisoned");
                    st.0 -= 1;
                    if let Err(payload) = outcome {
                        st.1.get_or_insert(payload);
                    }
                    drop(st);
                    latch.done.notify_all();
                });
                // Lifetime erasure — see the safety note above.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                state.queue.push_back(job);
            }
            drop(state);
            shared.work_ready.notify_all();
        }
        // Chunk 0 runs under `catch_unwind` too: unwinding out of this
        // function before the latch drains would free the scoped result
        // slots while workers can still write them. The panic is re-raised
        // only after every queued job has finished.
        let inline_outcome = catch_unwind(AssertUnwindSafe(inline));
        let mut st = latch.state.lock().expect("latch poisoned");
        while st.0 > 0 {
            st = latch.done.wait(st).expect("latch poisoned");
        }
        let worker_payload = st.1.take();
        drop(st);
        if let Err(payload) = inline_outcome {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool state poisoned");
            }
        };
        // Panics were caught inside the job wrapper; a raw panic here
        // would mean a bug in the pool itself, and is allowed to abort
        // the worker (subsequent scans would hang visibly rather than
        // silently corrupt).
        job();
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared
                .state
                .lock()
                .expect("pool state poisoned")
                .shutting_down = true;
            shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-chunk argmax with the lowest-index tie-break the real scans use.
    fn chunk_argmax(lo: usize, hi: usize, score: impl Fn(usize) -> f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for i in lo..hi {
            let s = score(i);
            if best.is_none_or(|(_, b)| s > b) {
                best = Some((i, s));
            }
        }
        best
    }

    #[test]
    fn explicit_pool_matches_inline_scan() {
        let pool = ScanPool::new(4);
        let score = |i: usize| ((i * 7919) % 1009) as f64;
        for n in [0usize, 1, 3, 7, 64, 1000] {
            let serial = chunk_argmax(0, n, score);
            let par = pool.scan_chunks(n, |lo, hi| chunk_argmax(lo, hi, score), |&(_, s)| s);
            assert_eq!(par, serial, "n = {n}");
        }
    }

    #[test]
    fn fold_chunks_preserves_index_order() {
        let pool = ScanPool::new(5);
        let n = 237;
        let folded: Vec<usize> = pool.fold_chunks(
            n,
            |lo, hi| (lo..hi).collect::<Vec<_>>(),
            |mut a, b| {
                // Order-sensitive merge: appending is only correct when
                // `a` really comes from earlier indices.
                a.extend(b);
                a
            },
        );
        assert_eq!(folded, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn overprovisioned_pool_clamps_chunks_to_work() {
        // 7 chunks over 3 candidates: trailing chunks must clamp to empty
        // ranges instead of scanning past the end.
        let pool = ScanPool::new(7);
        let best = pool.scan_chunks(3, |lo, hi| chunk_argmax(lo, hi, |i| i as f64), |&(_, s)| s);
        assert_eq!(best, Some((2, 2.0)));
    }

    #[test]
    fn pool_survives_a_panicking_scan() {
        let pool = ScanPool::new(3);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.scan_chunks::<(), _, _>(
                100,
                |lo, _| {
                    if lo > 0 {
                        panic!("chunk worker exploded");
                    }
                    None
                },
                |_| 0.0,
            )
        }));
        assert!(boom.is_err(), "panic must propagate to the caller");
        // The pool remains usable for later scans.
        let best = pool.scan_chunks(10, |lo, hi| chunk_argmax(lo, hi, |i| i as f64), |&(_, s)| s);
        assert_eq!(best, Some((9, 9.0)));
    }

    #[test]
    fn pool_survives_a_panicking_inline_chunk() {
        // Chunk 0 runs on the submitting thread; its panic must not
        // unwind past the latch while workers still borrow the scoped
        // result slots (use-after-free), and must still reach the caller.
        let pool = ScanPool::new(3);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.scan_chunks::<(), _, _>(
                100,
                |lo, _| {
                    if lo == 0 {
                        panic!("inline chunk exploded");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    None
                },
                |_| 0.0,
            )
        }));
        assert!(boom.is_err(), "inline panic must propagate to the caller");
        let best = pool.scan_chunks(10, |lo, hi| chunk_argmax(lo, hi, |i| i as f64), |&(_, s)| s);
        assert_eq!(best, Some((9, 9.0)));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ScanPool::new(1);
        assert_eq!(pool.threads(), 1);
        let best = pool.scan_chunks(5, |lo, hi| chunk_argmax(lo, hi, |i| i as f64), |&(_, s)| s);
        assert_eq!(best, Some((4, 4.0)));
    }
}
