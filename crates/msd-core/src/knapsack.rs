//! Knapsack-constrained diversification (experimental extension).
//!
//! The paper's conclusion asks: *"Can our results be extended to provide a
//! constant approximation for the diversification problem subject to a
//! knapsack constraint?"* and points to Sviridenko's partial-enumeration
//! greedy for submodular maximization under a knapsack.
//!
//! This module implements that recipe adapted to the diversification
//! potential: for every feasible seed set of size at most `enumeration_depth`
//! (Sviridenko uses 3), complete it greedily by *potential density*
//! `φ'_u(S) / cost(u)`, also tracking the best plain-potential completion,
//! and return the best solution found. For the pure submodular part this
//! matches Sviridenko's `(1 − 1/e)`-style machinery; for the full
//! objective **no approximation guarantee is claimed** — reflecting the
//! open question — but the solver is exact-tested on small instances and
//! behaves well empirically (see the `ablations` binary).

// Constraint-scan module (the dynamic session's knapsack policy funnels
// through `density_score`): no panicking shortcuts outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use msd_metric::Metric;
use msd_submodular::SetFunction;

use crate::problem::DiversificationProblem;
use crate::solution::SolutionState;
use crate::ElementId;

/// The density accept rule shared by [`knapsack_diversify`]'s greedy
/// completion and the dynamic session's knapsack-constrained scans:
/// potential per unit cost, with zero-cost elements dominating whenever
/// their potential is positive (and compared by raw potential otherwise,
/// so a zero-cost dud never outranks anything useful).
pub(crate) fn density_score(potential: f64, cost: f64) -> f64 {
    if cost == 0.0 {
        if potential > 0.0 {
            f64::INFINITY
        } else {
            potential
        }
    } else {
        potential / cost
    }
}

/// Configuration for the knapsack heuristic.
#[derive(Debug, Clone, Copy)]
pub struct KnapsackConfig {
    /// Maximum seed-set size enumerated (Sviridenko: 3; 2 is much faster
    /// and usually as good on diversification instances).
    pub enumeration_depth: usize,
}

impl Default for KnapsackConfig {
    fn default() -> Self {
        Self {
            enumeration_depth: 2,
        }
    }
}

/// Result of the knapsack solver.
#[derive(Debug, Clone)]
pub struct KnapsackResult {
    /// The selected set.
    pub set: Vec<ElementId>,
    /// Its objective value.
    pub objective: f64,
    /// Its total cost (`≤ budget`).
    pub cost: f64,
}

/// Maximizes `φ(S)` subject to `Σ_{u∈S} cost(u) ≤ budget` by
/// partial-enumeration greedy.
///
/// # Panics
///
/// Panics if `costs` does not cover the ground set, any cost is
/// negative/non-finite, or `budget` is negative/non-finite.
pub fn knapsack_diversify<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    costs: &[f64],
    budget: f64,
    config: KnapsackConfig,
) -> KnapsackResult {
    let n = problem.ground_size();
    assert_eq!(costs.len(), n, "one cost per element required");
    assert!(
        budget.is_finite() && budget >= 0.0,
        "budget must be finite and non-negative"
    );
    for (u, &c) in costs.iter().enumerate() {
        assert!(
            c.is_finite() && c >= 0.0,
            "cost of element {u} must be finite and non-negative"
        );
    }

    let mut best = KnapsackResult {
        set: Vec::new(),
        objective: 0.0,
        cost: 0.0,
    };
    let mut consider = |set: Vec<ElementId>, cost: f64, objective: f64| {
        if objective > best.objective {
            best = KnapsackResult {
                set,
                objective,
                cost,
            };
        }
    };

    // Depth-0 seed: the plain density greedy from ∅.
    complete_greedily(problem, costs, budget, &[], &mut consider);

    // Enumerated seeds of size 1..=depth.
    if config.enumeration_depth >= 1 {
        for a in 0..n as ElementId {
            if costs[a as usize] > budget {
                continue;
            }
            complete_greedily(problem, costs, budget, &[a], &mut consider);
            if config.enumeration_depth >= 2 {
                for b in (a + 1)..n as ElementId {
                    let c2 = costs[a as usize] + costs[b as usize];
                    if c2 > budget {
                        continue;
                    }
                    complete_greedily(problem, costs, budget, &[a, b], &mut consider);
                    if config.enumeration_depth >= 3 {
                        for c in (b + 1)..n as ElementId {
                            if c2 + costs[c as usize] > budget {
                                continue;
                            }
                            complete_greedily(problem, costs, budget, &[a, b, c], &mut consider);
                        }
                    }
                }
            }
        }
    }
    best
}

/// Greedy completion from `seed` under the budget; reports both the
/// density-greedy and plain-potential-greedy completions to `consider`.
fn complete_greedily<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    costs: &[f64],
    budget: f64,
    seed: &[ElementId],
    consider: &mut impl FnMut(Vec<ElementId>, f64, f64),
) {
    for density in [true, false] {
        let n = problem.ground_size();
        let metric = problem.metric();
        let quality = problem.quality();
        let lambda = problem.lambda();
        let mut state = SolutionState::empty(n);
        let mut cost = 0.0;
        for &s in seed {
            state.insert(metric, s);
            cost += costs[s as usize];
        }
        loop {
            let members = state.members().to_vec();
            let mut best: Option<(ElementId, f64)> = None;
            for u in 0..n as ElementId {
                if state.contains(u) || cost + costs[u as usize] > budget {
                    continue;
                }
                let potential =
                    0.5 * quality.marginal(u, &members) + lambda * state.distance_gain(u);
                let score = if density {
                    density_score(potential, costs[u as usize])
                } else {
                    potential
                };
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((u, score));
                }
            }
            match best {
                Some((u, _)) => {
                    cost += costs[u as usize];
                    state.insert(metric, u);
                }
                None => break,
            }
        }
        let set = state.into_members();
        let objective = problem.objective(&set);
        consider(set, cost, objective);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_metric::DistanceMatrix;
    use msd_submodular::ModularFunction;

    fn instance(seed: u64, n: usize) -> DiversificationProblem<DistanceMatrix, ModularFunction> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2)
    }

    /// Exact knapsack optimum by exhaustive enumeration.
    fn exact_knapsack(
        problem: &DiversificationProblem<DistanceMatrix, ModularFunction>,
        costs: &[f64],
        budget: f64,
    ) -> f64 {
        let n = problem.ground_size();
        let mut best = 0.0_f64;
        for mask in 0u32..(1 << n) {
            let set: Vec<ElementId> = (0..n as u32).filter(|&i| mask >> i & 1 == 1).collect();
            let cost: f64 = set.iter().map(|&u| costs[u as usize]).sum();
            if cost <= budget {
                best = best.max(problem.objective(&set));
            }
        }
        best
    }

    #[test]
    fn respects_the_budget() {
        let problem = instance(1, 12);
        let costs: Vec<f64> = (0..12).map(|i| 1.0 + (i % 3) as f64).collect();
        let r = knapsack_diversify(&problem, &costs, 6.0, KnapsackConfig::default());
        assert!(r.cost <= 6.0 + 1e-12);
        let recomputed: f64 = r.set.iter().map(|&u| costs[u as usize]).sum();
        assert!((recomputed - r.cost).abs() < 1e-12);
        assert!((problem.objective(&r.set) - r.objective).abs() < 1e-12);
    }

    #[test]
    fn near_optimal_on_small_instances() {
        for seed in 0..8u64 {
            let problem = instance(seed, 9);
            let costs: Vec<f64> = (0..9).map(|i| 0.5 + (i % 4) as f64 * 0.5).collect();
            let budget = 3.0;
            let r = knapsack_diversify(&problem, &costs, budget, KnapsackConfig::default());
            let opt = exact_knapsack(&problem, &costs, budget);
            assert!(
                r.objective >= 0.5 * opt - 1e-9,
                "seed {seed}: {} vs opt {opt}",
                r.objective
            );
        }
    }

    #[test]
    fn enumeration_depth_never_hurts() {
        let problem = instance(4, 10);
        let costs: Vec<f64> = (0..10).map(|i| 1.0 + (i as f64) / 10.0).collect();
        let budget = 4.0;
        let d1 = knapsack_diversify(
            &problem,
            &costs,
            budget,
            KnapsackConfig {
                enumeration_depth: 1,
            },
        );
        let d2 = knapsack_diversify(
            &problem,
            &costs,
            budget,
            KnapsackConfig {
                enumeration_depth: 2,
            },
        );
        let d3 = knapsack_diversify(
            &problem,
            &costs,
            budget,
            KnapsackConfig {
                enumeration_depth: 3,
            },
        );
        assert!(d2.objective >= d1.objective - 1e-12);
        assert!(d3.objective >= d2.objective - 1e-12);
    }

    #[test]
    fn uniform_costs_reduce_to_cardinality() {
        // cost 1 each, budget p → compare against the exact cardinality
        // optimum as a sanity bound.
        let problem = instance(7, 9);
        let costs = vec![1.0; 9];
        let r = knapsack_diversify(
            &problem,
            &costs,
            3.0,
            KnapsackConfig {
                enumeration_depth: 2,
            },
        );
        assert!(r.set.len() <= 3);
        let opt = crate::exact::enumerate_exact(&problem, 3);
        assert!(r.objective <= opt.objective + 1e-9);
        assert!(2.0 * r.objective >= opt.objective - 1e-9);
    }

    #[test]
    fn zero_budget_returns_only_free_elements() {
        let problem = instance(2, 6);
        let mut costs = vec![1.0; 6];
        costs[4] = 0.0;
        let r = knapsack_diversify(&problem, &costs, 0.0, KnapsackConfig::default());
        assert!(r.set.iter().all(|&u| costs[u as usize] == 0.0));
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn expensive_single_item_can_lose_to_cheap_pair() {
        // Element 0: weight 1.0, cost 2.0. Elements 1,2: weight 0.6 each,
        // cost 1.0 each, far apart. Budget 2: the pair wins.
        let mut m = DistanceMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 1.0);
        m.set(1, 2, 2.0);
        let problem =
            DiversificationProblem::new(m, ModularFunction::new(vec![1.0, 0.6, 0.6]), 1.0);
        let r = knapsack_diversify(&problem, &[2.0, 1.0, 1.0], 2.0, KnapsackConfig::default());
        let mut s = r.set.clone();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2], "pair value 3.2 beats singleton 1.0");
    }

    #[test]
    #[should_panic(expected = "one cost per element")]
    fn cost_length_mismatch_rejected() {
        let problem = instance(1, 4);
        let _ = knapsack_diversify(&problem, &[1.0], 1.0, KnapsackConfig::default());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let problem = instance(1, 2);
        let _ = knapsack_diversify(&problem, &[-1.0, 1.0], 1.0, KnapsackConfig::default());
    }
}
