//! Dynamic updates (Section 6, Theorems 3–6).
//!
//! Setting: a modular quality function (element weights) whose weights and
//! pairwise distances change over time. After each perturbation the
//! solution is repaired with the **oblivious single-element-swap update
//! rule**:
//!
//! ```text
//! find (u ∈ S, v ∉ S) maximizing φ_{v→u}(S) = φ(S − u + v) − φ(S)
//! if φ_{v→u}(S) ≤ 0: do nothing; otherwise swap u with v
//! ```
//!
//! The paper divides perturbations into four types and proves that a
//! 3-approximation is maintained with
//!
//! * **(I) weight increase** — a single update (Theorem 3),
//! * **(II) weight decrease by δ** — `⌈log_{(p−2)/(p−3)} w/(w−δ)⌉` updates,
//!   a single one when `δ ≤ w/(p−2)` (Theorem 4),
//! * **(III) distance increase** — a single update (Theorem 5),
//! * **(IV) distance decrease** — a single update (Theorem 6),
//!
//! and any perturbation at all when `p ≤ 3` (Corollary 3). Distance
//! perturbations must preserve the metric property — the caller is
//! responsible (the Figure 1 driver redraws from `[1, 2]`, which always
//! stays metric).

use msd_matroid::Matroid;
use msd_metric::{DistanceMatrix, Metric};
use msd_submodular::{ModularFunction, SetFunction};

use crate::potential::PotentialState;
use crate::problem::DiversificationProblem;
use crate::solution::SolutionState;
use crate::ElementId;

/// A single atomic change to the instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Set `w(u)` to `value` (type I when increasing, II when decreasing).
    SetWeight {
        /// The element whose weight changes.
        u: ElementId,
        /// The new weight.
        value: f64,
    },
    /// Set `d(u, v)` to `value` (type III when increasing, IV when
    /// decreasing).
    SetDistance {
        /// First endpoint.
        u: ElementId,
        /// Second endpoint.
        v: ElementId,
        /// The new distance.
        value: f64,
    },
}

/// The paper's four perturbation types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbationType {
    /// Type (I).
    WeightIncrease,
    /// Type (II).
    WeightDecrease,
    /// Type (III).
    DistanceIncrease,
    /// Type (IV).
    DistanceDecrease,
    /// The perturbation does not change the instance.
    Neutral,
}

/// Outcome of one application of the oblivious update rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// The swap performed: `(u_out, v_in)`; `None` when no positive-gain
    /// swap existed.
    pub swap: Option<(ElementId, ElementId)>,
    /// The objective improvement (0 when no swap).
    pub gain: f64,
}

/// A diversification instance under dynamic perturbations, maintaining a
/// current solution of fixed cardinality `p`.
#[derive(Debug, Clone)]
pub struct DynamicInstance {
    problem: DiversificationProblem<DistanceMatrix, ModularFunction>,
    state: SolutionState,
    p: usize,
}

impl DynamicInstance {
    /// Wraps an instance with an initial solution (typically Greedy B's
    /// output, a 2-approximation, as in Section 7.3).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty, has duplicates, or exceeds the ground
    /// set.
    pub fn new(
        problem: DiversificationProblem<DistanceMatrix, ModularFunction>,
        initial: &[ElementId],
    ) -> Self {
        let state = SolutionState::from_set(problem.metric(), initial);
        assert!(!initial.is_empty(), "initial solution must be non-empty");
        Self {
            p: initial.len(),
            state,
            problem,
        }
    }

    /// The current solution.
    pub fn solution(&self) -> &[ElementId] {
        self.state.members()
    }

    /// The solution cardinality `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The underlying problem (read access).
    pub fn problem(&self) -> &DiversificationProblem<DistanceMatrix, ModularFunction> {
        &self.problem
    }

    /// Current objective `φ(S)`.
    pub fn objective(&self) -> f64 {
        self.problem.quality().value(self.state.members())
            + self.problem.lambda() * self.state.dispersion()
    }

    /// Classifies a perturbation against the current instance.
    pub fn classify(&self, perturbation: Perturbation) -> PerturbationType {
        match perturbation {
            Perturbation::SetWeight { u, value } => {
                let old = self.problem.quality().weight(u);
                if value > old {
                    PerturbationType::WeightIncrease
                } else if value < old {
                    PerturbationType::WeightDecrease
                } else {
                    PerturbationType::Neutral
                }
            }
            Perturbation::SetDistance { u, v, value } => {
                let old = self.problem.metric().distance(u, v);
                if value > old {
                    PerturbationType::DistanceIncrease
                } else if value < old {
                    PerturbationType::DistanceDecrease
                } else {
                    PerturbationType::Neutral
                }
            }
        }
    }

    /// Applies a perturbation to the instance, keeping the solution set
    /// fixed but its cached state consistent. Returns the classification.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range elements, `u == v` for distance changes,
    /// negative weights, or negative distances.
    pub fn apply(&mut self, perturbation: Perturbation) -> PerturbationType {
        let kind = self.classify(perturbation);
        match perturbation {
            Perturbation::SetWeight { u, value } => {
                self.problem.quality_mut().set_weight(u, value);
            }
            Perturbation::SetDistance { u, v, value } => {
                assert!(
                    value.is_finite() && value >= 0.0,
                    "distance must be finite and non-negative, got {value}"
                );
                let old = self.problem.metric().distance(u, v);
                let delta = value - old;
                self.problem.metric_mut().set(u, v, value);
                // Incrementally repair the gain cache: gain[x] sums
                // distances to members, so only the endpoints' gains (and
                // the dispersion, when both are members) change.
                if delta != 0.0 {
                    self.state.apply_distance_delta(u, v, delta);
                }
            }
        }
        kind
    }

    /// One application of the oblivious (single element swap) update rule.
    ///
    /// Scans all `(u ∈ S, v ∉ S)` pairs for the maximum marginal gain
    /// `φ_{v→u}(S)`; swaps when positive.
    pub fn oblivious_update(&mut self) -> UpdateOutcome {
        match self.best_single_swap() {
            Some((u, v, gain)) => {
                self.state.swap(self.problem.metric(), v, u);
                UpdateOutcome {
                    swap: Some((u, v)),
                    gain,
                }
            }
            None => UpdateOutcome {
                swap: None,
                gain: 0.0,
            },
        }
    }

    /// One application of the *double-swap* update rule: the best
    /// simultaneous exchange of up to two members for up to two outside
    /// elements (a 1-swap is a special case, so this dominates
    /// [`DynamicInstance::oblivious_update`] per step at O(n²p²) cost).
    ///
    /// The paper's conclusion leaves open whether "larger cardinality
    /// swaps" can maintain a better ratio than 3; this rule is the
    /// experimental probe for that question (see the `ablations` binary).
    pub fn oblivious_update_double(&mut self) -> UpdateOutcome {
        let single = self.best_single_swap();
        let best_double = self.best_double_swap();
        self.commit_double(single, best_double)
    }

    /// Gain of the simultaneous exchange `S − {u1,u2} + {v1,v2}`: Δd from
    /// the gain cache plus pairwise corrections, Δf by plain modular weight
    /// arithmetic — no per-pair set materialization. The single expression
    /// shared by the serial and parallel double-swap scans, so both compute
    /// bit-identical candidate scores.
    #[inline]
    fn double_swap_gain(&self, u1: ElementId, u2: ElementId, v1: ElementId, v2: ElementId) -> f64 {
        let metric = self.problem.metric();
        let quality = self.problem.quality();
        let dd = self.state.distance_gain(v1) + self.state.distance_gain(v2)
            - self.state.distance_gain(u1)
            - self.state.distance_gain(u2)
            + metric.distance(u1, u2)
            + metric.distance(v1, v2)
            - metric.distance(v1, u1)
            - metric.distance(v1, u2)
            - metric.distance(v2, u1)
            - metric.distance(v2, u2);
        let df = quality.weight(v1) + quality.weight(v2) - quality.weight(u1) - quality.weight(u2);
        df + self.problem.lambda() * dd
    }

    /// Elements outside the current solution, in index order (the shared
    /// traversal order of the double-swap scans).
    fn outsiders(&self) -> Vec<ElementId> {
        (0..self.problem.ground_size() as ElementId)
            .filter(|&v| !self.state.contains(v))
            .collect()
    }

    /// Best positive double swap `({u1,u2} out, {v1,v2} in, gain)` without
    /// applying it — the O(n²p²) scan.
    fn best_double_swap(&self) -> Option<([ElementId; 2], [ElementId; 2], f64)> {
        let members = self.state.members();
        let outsiders = self.outsiders();
        let mut best: Option<([ElementId; 2], [ElementId; 2], f64)> = None;
        for (i, &u1) in members.iter().enumerate() {
            for &u2 in &members[i + 1..] {
                for (j, &v1) in outsiders.iter().enumerate() {
                    for &v2 in &outsiders[j + 1..] {
                        let gain = self.double_swap_gain(u1, u2, v1, v2);
                        if gain > best.map_or(0.0, |(_, _, g)| g) {
                            best = Some(([u1, u2], [v1, v2], gain));
                        }
                    }
                }
            }
        }
        best
    }

    /// Applies the better of the best single and best double swap (shared
    /// tail of the serial and parallel double-update entry points).
    fn commit_double(
        &mut self,
        single: Option<(ElementId, ElementId, f64)>,
        best_double: Option<([ElementId; 2], [ElementId; 2], f64)>,
    ) -> UpdateOutcome {
        let single_gain = single.map_or(0.0, |(_, _, g)| g);
        match best_double {
            Some((out, into, gain)) if gain > single_gain => {
                self.state.swap(self.problem.metric(), into[0], out[0]);
                self.state.swap(self.problem.metric(), into[1], out[1]);
                UpdateOutcome {
                    swap: Some((out[0], into[0])),
                    gain,
                }
            }
            _ => match single {
                Some((u, v, gain)) => {
                    self.state.swap(self.problem.metric(), v, u);
                    UpdateOutcome {
                        swap: Some((u, v)),
                        gain,
                    }
                }
                None => UpdateOutcome {
                    swap: None,
                    gain: 0.0,
                },
            },
        }
    }

    /// Best positive single swap `(u ∈ S, v ∉ S, gain)` without applying
    /// it.
    fn best_single_swap(&self) -> Option<(ElementId, ElementId, f64)> {
        let n = self.problem.ground_size();
        let members = self.state.members();
        let metric = self.problem.metric();
        let quality = self.problem.quality();
        let lambda = self.problem.lambda();
        scan_swap_chunk(
            0,
            n as ElementId,
            members,
            |v| !self.state.contains(v),
            |v, u| {
                quality.swap_gain(v, u, members)
                    + lambda * self.state.swap_dispersion_delta(metric, v, u)
            },
        )
    }

    /// Repeats the oblivious rule until no positive swap remains or
    /// `max_updates` is hit; returns the number of swaps performed.
    pub fn update_until_stable(&mut self, max_updates: usize) -> usize {
        let mut updates = 0;
        while updates < max_updates {
            if self.oblivious_update().swap.is_none() {
                break;
            }
            updates += 1;
        }
        updates
    }
}

/// Thread-parallel scans for the dynamic-update rules (`parallel`
/// feature). Chunking and merge discipline come from
/// `ScanPool::scan_chunks`; every candidate's gain is the
/// exact serial expression, so outputs are bit-identical to
/// [`DynamicInstance::oblivious_update`] /
/// [`DynamicInstance::oblivious_update_double`]. The plain variants run
/// on [`crate::pool::ScanPool::global`]; the `_in` variants take an
/// explicit pool (the env-free route tests and benches use to force a
/// chunk schedule).
#[cfg(feature = "parallel")]
impl DynamicInstance {
    /// Parallel [`DynamicInstance::oblivious_update`]: the O(n·p) swap
    /// scan runs chunked over the incoming candidate `v`.
    pub fn oblivious_update_parallel(&mut self) -> UpdateOutcome {
        self.oblivious_update_parallel_in(crate::pool::ScanPool::global())
    }

    /// [`DynamicInstance::oblivious_update_parallel`] on an explicit
    /// [`crate::pool::ScanPool`].
    pub fn oblivious_update_parallel_in(&mut self, pool: &crate::pool::ScanPool) -> UpdateOutcome {
        match self.best_single_swap_parallel(pool) {
            Some((u, v, gain)) => {
                self.state.swap(self.problem.metric(), v, u);
                UpdateOutcome {
                    swap: Some((u, v)),
                    gain,
                }
            }
            None => UpdateOutcome {
                swap: None,
                gain: 0.0,
            },
        }
    }

    /// Parallel [`DynamicInstance::oblivious_update_double`]: the O(n²p²)
    /// double-swap scan runs chunked over the outgoing member pair (each
    /// worker owns a contiguous run of `(u1, u2)` pairs in the serial
    /// traversal order and runs the full outsider-pair inner loops), and
    /// the baseline single-swap scan runs chunked over candidates.
    pub fn oblivious_update_double_parallel(&mut self) -> UpdateOutcome {
        self.oblivious_update_double_parallel_in(crate::pool::ScanPool::global())
    }

    /// [`DynamicInstance::oblivious_update_double_parallel`] on an
    /// explicit [`crate::pool::ScanPool`].
    pub fn oblivious_update_double_parallel_in(
        &mut self,
        pool: &crate::pool::ScanPool,
    ) -> UpdateOutcome {
        let single = self.best_single_swap_parallel(pool);
        let best_double = self.best_double_swap_parallel(pool);
        self.commit_double(single, best_double)
    }

    /// Parallel counterpart of `best_single_swap`, chunked over `v`.
    /// Falls back to the serial scan below the work floor where chunking
    /// does not amortize (identical result either way). The modular
    /// per-candidate evaluation is O(1) arithmetic — scan cost hint 1 —
    /// so the raw candidate count is the weighted work.
    fn best_single_swap_parallel(
        &self,
        pool: &crate::pool::ScanPool,
    ) -> Option<(ElementId, ElementId, f64)> {
        let n = self.problem.ground_size();
        if !pool.worthwhile(n.saturating_mul(self.state.len())) {
            return self.best_single_swap();
        }
        let members = self.state.members();
        let metric = self.problem.metric();
        let quality = self.problem.quality();
        let lambda = self.problem.lambda();
        let state = &self.state;
        pool.scan_chunks(
            n,
            |lo, hi| {
                scan_swap_chunk(
                    lo as ElementId,
                    hi as ElementId,
                    members,
                    |v| !state.contains(v),
                    |v, u| {
                        quality.swap_gain(v, u, members)
                            + lambda * state.swap_dispersion_delta(metric, v, u)
                    },
                )
            },
            |&(_, _, gain)| gain,
        )
    }

    /// Parallel counterpart of `best_double_swap`, chunked over the
    /// member-pair list (p(p−1)/2 units of O(n²) work each). Falls back
    /// to the serial scan below the work floor (identical result).
    fn best_double_swap_parallel(
        &self,
        pool: &crate::pool::ScanPool,
    ) -> Option<([ElementId; 2], [ElementId; 2], f64)> {
        let p = self.state.len();
        let out = self.problem.ground_size() - p;
        let ops = (p * p / 2).saturating_mul(out).saturating_mul(out) / 2;
        if !pool.worthwhile(ops) {
            return self.best_double_swap();
        }
        let members = self.state.members();
        let outsiders = self.outsiders();
        // Member pairs in the serial (i, i+1..) traversal order, so chunk
        // concatenation reproduces the serial scan sequence exactly.
        let pairs: Vec<(ElementId, ElementId)> = members
            .iter()
            .enumerate()
            .flat_map(|(i, &u1)| members[i + 1..].iter().map(move |&u2| (u1, u2)))
            .collect();
        let this = self;
        let outsiders = &outsiders;
        pool.scan_chunks(
            pairs.len(),
            |lo, hi| {
                let mut best: Option<([ElementId; 2], [ElementId; 2], f64)> = None;
                for &(u1, u2) in &pairs[lo..hi] {
                    for (j, &v1) in outsiders.iter().enumerate() {
                        for &v2 in &outsiders[j + 1..] {
                            let gain = this.double_swap_gain(u1, u2, v1, v2);
                            if gain > best.map_or(0.0, |(_, _, g)| g) {
                                best = Some(([u1, u2], [v1, v2], gain));
                            }
                        }
                    }
                }
                best
            },
            |&(_, _, gain)| gain,
        )
    }
}

/// One oblivious single-swap repair step for **any** quality function.
///
/// [`DynamicInstance`] is specialized to modular weights (the paper's
/// Section 6 setting, where weight perturbations are meaningful). When the
/// instance mutates externally — distance redraws over an owned
/// [`DistanceMatrix`], re-weighted coverage topics, refreshed facility
/// similarities — this free function repairs an existing solution against
/// the *current* problem: it rebuilds the fused [`PotentialState`] caches
/// for `solution` (O(n·p) plus oracle setup), scans all `(v ∉ S, u ∈ S)`
/// pairs through O(1)/O(touched) incremental reads, and applies the best
/// strictly-positive swap in place.
///
/// The swap mirrors [`SolutionState`]'s remove-then-push ordering so
/// repeated steps evolve `solution` exactly as a [`DynamicInstance`]
/// member list would. Returns the outcome; `solution` is untouched when no
/// positive swap exists.
pub fn oblivious_update_step<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    solution: &mut Vec<ElementId>,
) -> UpdateOutcome {
    let n = problem.ground_size();
    let state = PotentialState::from_set(problem, solution);
    let best = scan_swap_chunk(
        0,
        n as ElementId,
        state.members(),
        |v| !state.contains(v),
        |v, u| state.swap_gain(v, u),
    );
    apply_step_outcome(solution, best)
}

/// One chunk `lo..hi` of THE oblivious single-swap scan: incoming
/// candidates ascending, members in solution order, strict improvement
/// over the running best (seeded at 0, so only positive gains qualify).
/// Every serial, parallel-chunk and session scan funnels through this one
/// traversal, which makes the *tie-break discipline* a structural
/// property instead of a convention to re-check per call site. Agreement
/// of the scanned values themselves is up to the caller's `gain`
/// expression: serial vs parallel read the same caches and are exactly
/// bit-identical, while a session's delta-patched caches match a fresh
/// rebuild's sums up to floating-point accumulation order (only
/// near-exact gain ties can distinguish them — see the equivalence
/// suites). `eligible` filters candidates (membership, availability
/// masks); `gain` supplies the swap-gain expression of the caller's
/// caches.
pub(crate) fn scan_swap_chunk(
    lo: ElementId,
    hi: ElementId,
    members: &[ElementId],
    eligible: impl Fn(ElementId) -> bool,
    gain: impl Fn(ElementId, ElementId) -> f64,
) -> Option<(ElementId, ElementId, f64)> {
    let mut best: Option<(ElementId, ElementId, f64)> = None;
    for v in lo..hi {
        if !eligible(v) {
            continue;
        }
        for &u in members {
            let g = gain(v, u);
            if g > best.map_or(0.0, |(_, _, g)| g) {
                best = Some((u, v, g));
            }
        }
    }
    best
}

/// Applies a chosen `(u_out, v_in, gain)` swap to a raw solution vector
/// with [`SolutionState`]'s swap-remove-then-push ordering (shared by the
/// serial and parallel [`oblivious_update_step`] entry points).
pub(crate) fn apply_step_outcome(
    solution: &mut Vec<ElementId>,
    best: Option<(ElementId, ElementId, f64)>,
) -> UpdateOutcome {
    match best {
        Some((u, v, gain)) => {
            let idx = solution
                .iter()
                .position(|&x| x == u)
                .expect("chosen swap-out element must be in the solution");
            solution.swap_remove(idx);
            solution.push(v);
            UpdateOutcome {
                swap: Some((u, v)),
                gain,
            }
        }
        None => UpdateOutcome {
            swap: None,
            gain: 0.0,
        },
    }
}

/// [`oblivious_update_step`] under a matroid constraint: the scan visits
/// exactly the same `(v ∉ S, u ∈ S)` pairs in the same order, but a pair
/// only competes when the exchange `S − u + v` is independent
/// ([`Matroid::exchange_feasible`]). Applying the best strictly-positive
/// feasible swap keeps a feasible solution feasible, so repeated steps
/// walk the matroid's base-exchange graph.
///
/// This is the rebuild reference for `DynamicSession` matroid sessions:
/// it rebuilds all caches from scratch each call, which the session's
/// delta-patched scan must match swap-for-swap.
///
/// The caller is responsible for `solution` being independent in
/// `matroid`; infeasible inputs make the scan's filter meaningless rather
/// than erroring.
pub fn oblivious_update_step_matroid<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    matroid: &(impl Matroid + ?Sized),
    solution: &mut Vec<ElementId>,
) -> UpdateOutcome {
    let n = problem.ground_size();
    let state = PotentialState::from_set(problem, solution);
    let best = scan_swap_chunk(
        0,
        n as ElementId,
        state.members(),
        |v| !state.contains(v),
        |v, u| {
            if matroid.exchange_feasible(state.members(), u, v) {
                state.swap_gain(v, u)
            } else {
                f64::NEG_INFINITY
            }
        },
    );
    apply_step_outcome(solution, best)
}

/// [`oblivious_update_step`] under a knapsack constraint
/// `Σ cost(u) ≤ budget`: same pair enumeration, but a swap only competes
/// when it stays within budget AND strictly improves the objective, and
/// competing swaps are ranked by **gain per unit cost** of the incoming
/// element (`density_score`, mirroring [`knapsack_diversify`]'s greedy
/// accept rule — zero-cost improvements dominate). The applied swap's
/// reported gain is the true objective delta, not the density score.
///
/// This is the rebuild reference for `DynamicSession` knapsack sessions.
///
/// The caller is responsible for `solution` fitting the budget; `costs`
/// must cover the ground set (checked).
///
/// # Panics
///
/// Panics if `costs.len() != problem.ground_size()`.
///
/// [`knapsack_diversify`]: crate::knapsack::knapsack_diversify
pub fn oblivious_update_step_knapsack<M: Metric, F: SetFunction>(
    problem: &DiversificationProblem<M, F>,
    costs: &[f64],
    budget: f64,
    solution: &mut Vec<ElementId>,
) -> UpdateOutcome {
    let n = problem.ground_size();
    assert_eq!(costs.len(), n, "one cost per element required");
    let state = PotentialState::from_set(problem, solution);
    let load: f64 = state.members().iter().map(|&u| costs[u as usize]).sum();
    let best = scan_swap_chunk(
        0,
        n as ElementId,
        state.members(),
        |v| !state.contains(v),
        |v, u| {
            if load - costs[u as usize] + costs[v as usize] > budget {
                return f64::NEG_INFINITY;
            }
            let gain = state.swap_gain(v, u);
            if gain > 0.0 {
                crate::knapsack::density_score(gain, costs[v as usize])
            } else {
                f64::NEG_INFINITY
            }
        },
    );
    // `best.2` is a density score; report the true objective delta.
    let best = best.map(|(u, v, _)| (u, v, state.swap_gain(v, u)));
    apply_step_outcome(solution, best)
}

/// Theorem 4's bound on the number of updates needed after a weight
/// decrease of magnitude `delta`, where `w` is the solution's objective
/// value before the decrease: `⌈log_{(p−2)/(p−3)} w/(w−δ)⌉`.
///
/// Returns 1 for `p ≤ 3` (Corollary 3) and when `δ ≤ w/(p−2)`.
///
/// # Panics
///
/// Panics unless `0 ≤ delta < w`.
pub fn weight_decrease_update_bound(w: f64, delta: f64, p: usize) -> usize {
    assert!(
        delta >= 0.0 && delta < w,
        "need 0 <= delta < w, got delta={delta} w={w}"
    );
    if p <= 3 || delta <= w / (p as f64 - 2.0) {
        return 1;
    }
    let base = (p as f64 - 2.0) / (p as f64 - 3.0);
    let needed = (w / (w - delta)).ln() / base.ln();
    needed.ceil().max(1.0) as usize
}

impl SolutionState {
    /// Repairs the gain cache after `d(u, v)` changed by `delta`
    /// (the endpoints' gains shift by `delta` for each member endpoint;
    /// the dispersion shifts iff both are members).
    pub(crate) fn apply_distance_delta(&mut self, u: ElementId, v: ElementId, delta: f64) {
        let u_in = self.contains(u);
        let v_in = self.contains(v);
        if v_in {
            self.add_gain(u, delta);
        }
        if u_in {
            self.add_gain(v, delta);
        }
        if u_in && v_in {
            self.add_dispersion(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::enumerate_exact;
    use crate::greedy::{greedy_b, GreedyBConfig};

    fn instance(seed: u64, n: usize) -> DiversificationProblem<DistanceMatrix, ModularFunction> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let weights: Vec<f64> = (0..n).map(|_| next()).collect();
        let metric = DistanceMatrix::from_fn(n, |_, _| 1.0 + next());
        DiversificationProblem::new(metric, ModularFunction::new(weights), 0.2)
    }

    fn dynamic(seed: u64, n: usize, p: usize) -> DynamicInstance {
        let problem = instance(seed, n);
        let greedy = greedy_b(&problem, p, GreedyBConfig::default());
        DynamicInstance::new(problem, &greedy)
    }

    #[test]
    fn objective_matches_problem_objective() {
        let d = dynamic(1, 10, 4);
        let direct = d.problem().objective(d.solution());
        assert!((d.objective() - direct).abs() < 1e-12);
    }

    #[test]
    fn classification_matches_direction() {
        let d = dynamic(2, 6, 3);
        let w0 = d.problem().quality().weight(0);
        assert_eq!(
            d.classify(Perturbation::SetWeight {
                u: 0,
                value: w0 + 1.0
            }),
            PerturbationType::WeightIncrease
        );
        assert_eq!(
            d.classify(Perturbation::SetWeight {
                u: 0,
                value: w0 / 2.0
            }),
            PerturbationType::WeightDecrease
        );
        assert_eq!(
            d.classify(Perturbation::SetWeight { u: 0, value: w0 }),
            PerturbationType::Neutral
        );
        let d01 = d.problem().metric().distance(0, 1);
        assert_eq!(
            d.classify(Perturbation::SetDistance {
                u: 0,
                v: 1,
                value: d01 + 0.1
            }),
            PerturbationType::DistanceIncrease
        );
        assert_eq!(
            d.classify(Perturbation::SetDistance {
                u: 0,
                v: 1,
                value: d01 - 0.1
            }),
            PerturbationType::DistanceDecrease
        );
    }

    #[test]
    fn apply_keeps_cached_state_consistent() {
        let mut d = dynamic(3, 8, 4);
        // Perturb a distance inside the solution, outside, and mixed.
        let s0 = d.solution()[0];
        let s1 = d.solution()[1];
        let outside: ElementId = (0..8u32).find(|u| !d.solution().contains(u)).unwrap();
        for (u, v, val) in [(s0, s1, 1.7), (s0, outside, 1.9), (outside, s1, 1.1)] {
            d.apply(Perturbation::SetDistance { u, v, value: val });
            let expected = d.problem().objective(d.solution());
            assert!(
                (d.objective() - expected).abs() < 1e-9,
                "cache drifted after d({u},{v}) := {val}"
            );
        }
        d.apply(Perturbation::SetWeight { u: s0, value: 5.0 });
        let expected = d.problem().objective(d.solution());
        assert!((d.objective() - expected).abs() < 1e-9);
    }

    #[test]
    fn oblivious_update_takes_the_best_positive_swap() {
        let mut d = dynamic(4, 8, 3);
        // Make one outside element overwhelmingly attractive.
        let outside: ElementId = (0..8u32).find(|u| !d.solution().contains(u)).unwrap();
        d.apply(Perturbation::SetWeight {
            u: outside,
            value: 100.0,
        });
        let before = d.objective();
        let outcome = d.oblivious_update();
        let (swapped_out, swapped_in) = outcome.swap.expect("swap must happen");
        assert_eq!(swapped_in, outside);
        assert!(d.solution().contains(&outside));
        assert!(!d.solution().contains(&swapped_out));
        assert!((d.objective() - before - outcome.gain).abs() < 1e-9);
    }

    #[test]
    fn oblivious_update_is_a_no_op_at_local_optimum() {
        let mut d = dynamic(5, 8, 3);
        // Drive to a local optimum first.
        d.update_until_stable(100);
        let before = d.objective();
        let outcome = d.oblivious_update();
        assert_eq!(outcome.swap, None);
        assert_eq!(outcome.gain, 0.0);
        assert!((d.objective() - before).abs() < 1e-12);
    }

    #[test]
    fn single_update_maintains_ratio_3_under_each_perturbation_type() {
        // Empirical check of Theorems 3, 5, 6 (+ Theorem 4's single-update
        // case): start from a 2-approx greedy solution, apply a bounded
        // perturbation, one oblivious update, and compare to the new OPT.
        for seed in 0..10u64 {
            let n = 8;
            let p = 4;
            let mut d = dynamic(seed + 10, n, p);

            let kind = seed % 4;
            let perturbation = match kind {
                0 => Perturbation::SetWeight {
                    u: (seed % 8) as u32,
                    value: 0.95,
                },
                1 => {
                    // Weight decrease bounded by w/(p-2) to stay in the
                    // single-update regime.
                    let u = d.solution()[0];
                    let w = d.objective();
                    let old = d.problem().quality().weight(u);
                    let delta = (w / (p as f64 - 2.0)).min(old);
                    Perturbation::SetWeight {
                        u,
                        value: old - delta * 0.9,
                    }
                }
                2 => Perturbation::SetDistance {
                    u: (seed % 8) as u32,
                    v: ((seed + 3) % 8) as u32,
                    value: 2.0,
                },
                _ => Perturbation::SetDistance {
                    u: (seed % 8) as u32,
                    v: ((seed + 3) % 8) as u32,
                    value: 1.0,
                },
            };
            if let Perturbation::SetDistance { u, v, .. } = perturbation {
                if u == v {
                    continue;
                }
            }
            d.apply(perturbation);
            d.oblivious_update();
            let opt = enumerate_exact(d.problem(), p);
            assert!(
                3.0 * d.objective() >= opt.objective - 1e-9,
                "seed {seed}: ratio-3 violated ({} vs OPT {})",
                d.objective(),
                opt.objective
            );
        }
    }

    #[test]
    fn update_until_stable_reaches_local_optimum() {
        let mut d = dynamic(6, 10, 4);
        // Shake the instance.
        d.apply(Perturbation::SetWeight { u: 7, value: 3.0 });
        d.apply(Perturbation::SetDistance {
            u: 0,
            v: 7,
            value: 2.0,
        });
        let swaps = d.update_until_stable(1000);
        assert!(swaps < 1000);
        assert_eq!(d.oblivious_update().swap, None);
    }

    #[test]
    fn weight_decrease_bound_formula() {
        // p <= 3 → always 1 (Corollary 3).
        assert_eq!(weight_decrease_update_bound(10.0, 9.0, 3), 1);
        // Small decrease → 1 (Theorem 4's special case).
        assert_eq!(weight_decrease_update_bound(10.0, 1.0, 6), 1);
        // Large decrease: log_{(p-2)/(p-3)}(w/(w-δ)).
        // p = 5 → base = 3/2; w = 10, δ = 7.5 → log_1.5(4) ≈ 3.419 → 4.
        assert_eq!(weight_decrease_update_bound(10.0, 7.5, 5), 4);
        // Boundary δ = w/(p-2) exactly → 1.
        assert_eq!(weight_decrease_update_bound(9.0, 3.0, 5), 1);
    }

    #[test]
    fn theorem4_bound_suffices_empirically() {
        // After a large weight decrease, at most `bound` oblivious updates
        // restore a 3-approximation.
        for seed in 0..8u64 {
            let n = 8;
            let p = 5;
            let mut d = dynamic(seed + 30, n, p);
            let u = d.solution()[0];
            let w = d.objective();
            let old_weight = d.problem().quality().weight(u);
            let delta = old_weight * 0.99; // nearly zero out the weight
            d.apply(Perturbation::SetWeight {
                u,
                value: old_weight - delta,
            });
            let bound = weight_decrease_update_bound(w, delta.min(w * 0.99), p);
            for _ in 0..bound {
                d.oblivious_update();
            }
            let opt = enumerate_exact(d.problem(), p);
            assert!(
                3.0 * d.objective() >= opt.objective - 1e-9,
                "seed {seed}: {} vs {}",
                d.objective(),
                opt.objective
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_initial_solution_rejected() {
        let problem = instance(1, 4);
        let _ = DynamicInstance::new(problem, &[]);
    }

    #[test]
    #[should_panic(expected = "need 0 <= delta < w")]
    fn bound_rejects_delta_at_w() {
        let _ = weight_decrease_update_bound(5.0, 5.0, 6);
    }

    #[test]
    fn p_accessor() {
        let d = dynamic(1, 6, 3);
        assert_eq!(d.p(), 3);
        assert_eq!(d.solution().len(), 3);
    }

    #[test]
    fn double_swap_dominates_single_swap_per_step() {
        for seed in 0..6u64 {
            let mut d1 = dynamic(seed + 40, 10, 4);
            let mut d2 = d1.clone();
            // Shake the instance so swaps exist.
            d1.apply(Perturbation::SetWeight { u: 9, value: 2.0 });
            d2.apply(Perturbation::SetWeight { u: 9, value: 2.0 });
            let g1 = d1.oblivious_update().gain;
            let g2 = d2.oblivious_update_double().gain;
            assert!(
                g2 >= g1 - 1e-9,
                "seed {seed}: double {g2} below single {g1}"
            );
            // Cached state stays consistent after a double swap.
            let direct = d2.problem().objective(d2.solution());
            assert!((d2.objective() - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn double_swap_is_noop_at_double_optimum() {
        let mut d = dynamic(8, 8, 3);
        // Exhaust both rules.
        for _ in 0..50 {
            if d.oblivious_update_double().swap.is_none() {
                break;
            }
        }
        let out = d.oblivious_update_double();
        assert_eq!(out.swap, None);
        assert_eq!(d.solution().len(), 3);
    }

    #[test]
    fn double_swap_escapes_a_single_swap_optimum() {
        // Two tight pairs: singles are locked (any 1-swap loses the pair
        // bonus), but exchanging both members at once wins.
        // Weights: members {0,1} light; outsiders {2,3} heavy.
        // Distances: d(0,1) large keeps the pair attractive; crossing
        // distances small so replacing one member at a time is a loss.
        let mut m = DistanceMatrix::zeros(4);
        m.set(0, 1, 10.0);
        m.set(2, 3, 10.0);
        m.set(0, 2, 0.5);
        m.set(0, 3, 0.5);
        m.set(1, 2, 0.5);
        m.set(1, 3, 0.5);
        // Not a metric, but the update rule never requires one — the
        // paper's metric assumption is only used in the *analysis*.
        let problem =
            DiversificationProblem::new(m, ModularFunction::new(vec![0.0, 0.0, 1.0, 1.0]), 1.0);
        let mut d = DynamicInstance::new(problem, &[0, 1]);
        // Single swap: replacing 0 by 2 gives φ = 0 + 1 + d(1,2) = 1.5 < 10.
        assert_eq!(d.oblivious_update().swap, None);
        // Double swap: {2,3} gives φ = 2 + 10 = 12 > 10.
        let out = d.oblivious_update_double();
        assert!(out.swap.is_some());
        let mut s = d.solution().to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![2, 3]);
    }

    // ------------------------------------------------------------------
    // Degenerate-case coverage for the dynamic driver.
    // ------------------------------------------------------------------

    #[test]
    fn p_one_solution_swaps_to_the_best_singleton() {
        // With |S| = 1 and λ scaled down, the oblivious rule reduces to
        // "hold the best-weight element" — both rules and the generic
        // step must behave, and the double rule has no member pair to
        // scan.
        let metric = DistanceMatrix::from_fn(6, |_, _| 1.0);
        let weights = vec![0.1, 0.2, 0.3, 5.0, 0.4, 0.5];
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.0);
        let mut d = DynamicInstance::new(problem.clone(), &[0]);
        let out = d.oblivious_update();
        assert_eq!(out.swap, Some((0, 3)));
        assert_eq!(d.solution(), &[3]);
        assert_eq!(d.oblivious_update().swap, None, "already optimal");
        assert_eq!(
            d.oblivious_update_double().swap,
            None,
            "no member pair exists at p = 1"
        );

        let mut sol = vec![0];
        let step = oblivious_update_step(&problem, &mut sol);
        assert_eq!(step.swap, Some((0, 3)));
        assert_eq!(sol, vec![3]);
    }

    #[test]
    fn p_equals_n_has_no_outsiders_and_never_swaps() {
        let problem = instance(21, 7);
        let all: Vec<ElementId> = (0..7).collect();
        let mut d = DynamicInstance::new(problem.clone(), &all);
        // Shake the instance; with no element outside S, no swap exists.
        d.apply(Perturbation::SetWeight { u: 3, value: 9.0 });
        d.apply(Perturbation::SetDistance {
            u: 1,
            v: 5,
            value: 0.25,
        });
        let out = d.oblivious_update();
        assert_eq!(out.swap, None);
        assert_eq!(out.gain, 0.0);
        assert_eq!(d.oblivious_update_double().swap, None);
        assert_eq!(d.solution().len(), 7);

        let mut sol = all.clone();
        assert_eq!(oblivious_update_step(&problem, &mut sol).swap, None);
        assert_eq!(sol, all);
    }

    #[test]
    fn lambda_zero_reduces_to_pure_quality_repair() {
        // λ = 0: distances are irrelevant; one update must hold the
        // max-weight subset of the right size once an update is needed.
        let metric = DistanceMatrix::from_fn(5, |u, v| 1.0 + f64::from(u + v));
        let weights = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let problem = DiversificationProblem::new(metric, ModularFunction::new(weights), 0.0);
        let mut d = DynamicInstance::new(problem, &[4, 3]);
        assert_eq!(d.oblivious_update().swap, None, "top-2 already held");
        // Demote a held element below the field; exactly one swap repairs.
        d.apply(Perturbation::SetWeight { u: 4, value: 0.5 });
        let out = d.oblivious_update();
        assert_eq!(out.swap, Some((4, 2)));
        assert!((out.gain - 2.5).abs() < 1e-12);
        let mut s = d.solution().to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![2, 3]);
        assert_eq!(d.oblivious_update().swap, None);
    }

    #[test]
    fn zero_gain_perturbation_reports_no_swap() {
        // A perturbation that rewrites a weight/distance to its current
        // value is Neutral, and at a local optimum the follow-up update
        // must report no swap and leave every cached quantity untouched.
        let mut d = dynamic(17, 9, 4);
        d.update_until_stable(1000);
        let before = d.objective();
        let s0 = d.solution()[0];
        let w = d.problem().quality().weight(s0);
        assert_eq!(
            d.apply(Perturbation::SetWeight { u: s0, value: w }),
            PerturbationType::Neutral
        );
        let d01 = d.problem().metric().distance(0, 1);
        assert_eq!(
            d.apply(Perturbation::SetDistance {
                u: 0,
                v: 1,
                value: d01
            }),
            PerturbationType::Neutral
        );
        let out = d.oblivious_update();
        assert_eq!(out.swap, None);
        assert_eq!(out.gain, 0.0);
        assert_eq!(d.objective(), before);
        let direct = d.problem().objective(d.solution());
        assert!((d.objective() - direct).abs() < 1e-9);
    }

    #[test]
    fn generic_step_matches_dynamic_instance_on_modular() {
        // The generic rebuild-and-scan repair and DynamicInstance's cached
        // scan implement the same rule; on modular instances they must
        // pick identical swaps step for step.
        for seed in 0..5u64 {
            let problem = instance(seed + 70, 12);
            let init = greedy_b(&problem, 4, GreedyBConfig::default());
            let mut d = DynamicInstance::new(problem.clone(), &init);
            d.apply(Perturbation::SetWeight { u: 11, value: 7.0 });
            let mut perturbed = problem;
            perturbed.quality_mut().set_weight(11, 7.0);
            let mut sol = init.clone();
            loop {
                let a = d.oblivious_update();
                let b = oblivious_update_step(&perturbed, &mut sol);
                assert_eq!(a.swap, b.swap, "seed {seed}");
                assert_eq!(d.solution(), &sol[..], "seed {seed}");
                if a.swap.is_none() {
                    break;
                }
            }
        }
    }
}
