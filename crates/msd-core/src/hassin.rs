//! The Hassin–Rubinstein–Tamir algorithms for max-sum dispersion.
//!
//! Hassin, Rubinstein and Tamir (Oper. Res. Lett. 1997) gave two
//! algorithms for metric max-sum `p`-dispersion (Problem 1 of the paper):
//!
//! * [`hassin_edge_greedy`] — greedily add the farthest remaining *edge*
//!   (pair of vertices) ⌊p/2⌋ times; approximation ratio 2. This is the
//!   engine inside Greedy A.
//! * [`hassin_matching`] — pick a maximum-weight matching of ⌊p/2⌋ edges
//!   and take its endpoints; approximation ratio `2 − 1/⌈p/2⌉`. Our
//!   implementation finds the maximum-weight `⌊p/2⌋`-edge matching exactly
//!   by branch-and-bound over edges (exponential in the worst case, fine
//!   for the experiment sizes; the ratio claim is about the matching, not
//!   about how it is found).
//!
//! Both return one extra arbitrary vertex when `p` is odd, as in the
//! original paper.

use msd_metric::Metric;

use crate::ElementId;

/// Edge-greedy dispersion: ratio 2.
pub fn hassin_edge_greedy<M: Metric>(metric: &M, p: usize) -> Vec<ElementId> {
    let n = metric.len();
    let p = p.min(n);
    if p == 0 {
        return Vec::new();
    }
    let mut selected: Vec<ElementId> = Vec::with_capacity(p);
    let mut available = vec![true; n];
    for _ in 0..p / 2 {
        let mut best: Option<(ElementId, ElementId)> = None;
        let mut best_d = f64::NEG_INFINITY;
        for u in 0..n as ElementId {
            if !available[u as usize] {
                continue;
            }
            for v in (u + 1)..n as ElementId {
                if !available[v as usize] {
                    continue;
                }
                let d = metric.distance(u, v);
                if d > best_d {
                    best_d = d;
                    best = Some((u, v));
                }
            }
        }
        let (u, v) = best.expect("p <= n guarantees an available pair");
        available[u as usize] = false;
        available[v as usize] = false;
        selected.push(u);
        selected.push(v);
    }
    if p % 2 == 1 {
        let last = (0..n as ElementId)
            .find(|&u| available[u as usize])
            .expect("p <= n guarantees an available vertex");
        selected.push(last);
    }
    selected
}

/// Matching-based dispersion: ratio `2 − 1/⌈p/2⌉`.
///
/// Finds a maximum-weight matching with exactly `⌊p/2⌋` edges (by exact
/// search with pruning) and returns its endpoints, plus one arbitrary
/// vertex when `p` is odd.
pub fn hassin_matching<M: Metric>(metric: &M, p: usize) -> Vec<ElementId> {
    let n = metric.len();
    let p = p.min(n);
    if p == 0 {
        return Vec::new();
    }
    let k = p / 2;

    // All edges sorted by weight descending; DFS picks disjoint edges.
    let mut edges: Vec<(f64, ElementId, ElementId)> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as ElementId {
        for v in (u + 1)..n as ElementId {
            edges.push((metric.distance(u, v), u, v));
        }
    }
    // `total_cmp` keeps a NaN distance (a misbehaving metric oracle) from
    // panicking the sort; the ordering is total, so the search still
    // terminates with a well-defined matching.
    edges.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));

    /// DFS state for the exact `k`-edge matching search. The completion
    /// bound uses the next `need` edges' weights regardless of
    /// disjointness (edges are sorted descending, so this is optimistic).
    struct MatchSearch<'a> {
        edges: &'a [(f64, ElementId, ElementId)],
        k: usize,
        used: Vec<bool>,
        current: Vec<(ElementId, ElementId)>,
        best_weight: f64,
        best_matching: Vec<(ElementId, ElementId)>,
    }

    impl MatchSearch<'_> {
        fn dfs(&mut self, start: usize, weight: f64) {
            if self.current.len() == self.k {
                if weight > self.best_weight {
                    self.best_weight = weight;
                    self.best_matching = self.current.clone();
                }
                return;
            }
            let need = self.k - self.current.len();
            if self.edges.len() - start < need {
                return;
            }
            let optimistic: f64 = self.edges[start..start + need].iter().map(|e| e.0).sum();
            if weight + optimistic <= self.best_weight + 1e-15 {
                return;
            }
            let (w, u, v) = self.edges[start];
            if !self.used[u as usize] && !self.used[v as usize] {
                self.used[u as usize] = true;
                self.used[v as usize] = true;
                self.current.push((u, v));
                self.dfs(start + 1, weight + w);
                self.current.pop();
                self.used[u as usize] = false;
                self.used[v as usize] = false;
            }
            self.dfs(start + 1, weight);
        }
    }

    let mut search = MatchSearch {
        edges: &edges,
        k,
        used: vec![false; n],
        current: Vec::with_capacity(k),
        best_weight: f64::NEG_INFINITY,
        best_matching: Vec::new(),
    };
    if k > 0 {
        search.dfs(0, 0.0);
    }
    let best_matching = search.best_matching;

    let mut selected: Vec<ElementId> = Vec::with_capacity(p);
    let mut in_sel = vec![false; n];
    for (u, v) in best_matching {
        selected.push(u);
        selected.push(v);
        in_sel[u as usize] = true;
        in_sel[v as usize] = true;
    }
    if p % 2 == 1 {
        let last = (0..n as ElementId)
            .find(|&u| !in_sel[u as usize])
            .expect("p <= n guarantees an available vertex");
        selected.push(last);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_metric::DistanceMatrix;

    fn pseudo_random_metric(seed: u64, n: usize) -> DistanceMatrix {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DistanceMatrix::from_fn(n, |_, _| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            1.0 + (x >> 11) as f64 / (1u64 << 53) as f64
        })
    }

    /// Brute-force max-sum dispersion for ground truth.
    fn opt_dispersion(metric: &DistanceMatrix, p: usize) -> f64 {
        let n = metric.len();
        let mut best = f64::NEG_INFINITY;
        let masks = 1u32 << n;
        for mask in 0..masks {
            if mask.count_ones() as usize != p {
                continue;
            }
            let set: Vec<ElementId> = (0..n as ElementId)
                .filter(|&i| mask >> i & 1 == 1)
                .collect();
            best = best.max(metric.dispersion(&set));
        }
        best
    }

    #[test]
    fn edge_greedy_picks_farthest_pairs() {
        let pos = [0.0_f64, 1.0, 10.0, 11.0];
        let m = DistanceMatrix::from_points(&pos, |a, b| (a - b).abs());
        let mut s = hassin_edge_greedy(&m, 2);
        s.sort_unstable();
        assert_eq!(s, vec![0, 3]);
        // p = 4 takes both pairs.
        assert_eq!(hassin_edge_greedy(&m, 4).len(), 4);
    }

    #[test]
    fn edge_greedy_within_factor_two() {
        for seed in 0..10u64 {
            let m = pseudo_random_metric(seed, 10);
            for p in [2usize, 4, 6] {
                let s = hassin_edge_greedy(&m, p);
                let val = m.dispersion(&s);
                let opt = opt_dispersion(&m, p);
                assert!(2.0 * val >= opt - 1e-9, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn matching_within_its_tighter_ratio() {
        // 2 − 1/⌈p/2⌉ approximation for even p.
        for seed in 0..10u64 {
            let m = pseudo_random_metric(seed + 100, 10);
            for p in [2usize, 4, 6] {
                let s = hassin_matching(&m, p);
                assert_eq!(s.len(), p);
                let val = m.dispersion(&s);
                let opt = opt_dispersion(&m, p);
                let ratio = 2.0 - 1.0 / p.div_ceil(2) as f64;
                assert!(
                    ratio * val >= opt - 1e-9,
                    "seed {seed} p {p}: {val} vs opt {opt} (ratio {ratio})"
                );
            }
        }
    }

    #[test]
    fn matching_beats_or_matches_edge_greedy_weight() {
        // The exact matching's total matched weight is >= the greedy
        // matching's.
        for seed in 0..5u64 {
            let m = pseudo_random_metric(seed + 7, 9);
            let p = 6;
            let greedy = hassin_edge_greedy(&m, p);
            let matching = hassin_matching(&m, p);
            let pair_weight =
                |s: &[ElementId]| -> f64 { s.chunks(2).map(|c| m.distance(c[0], c[1])).sum() };
            assert!(pair_weight(&matching) >= pair_weight(&greedy) - 1e-9);
        }
    }

    #[test]
    fn p_one_returns_single_vertex() {
        let m = pseudo_random_metric(3, 5);
        assert_eq!(hassin_edge_greedy(&m, 1).len(), 1);
        assert_eq!(hassin_matching(&m, 1).len(), 1);
    }

    #[test]
    fn odd_p_adds_extra_vertex() {
        let m = pseudo_random_metric(4, 7);
        let s = hassin_edge_greedy(&m, 5);
        assert_eq!(s.len(), 5);
        let s = hassin_matching(&m, 5);
        assert_eq!(s.len(), 5);
        // no duplicates
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn degenerate_cases() {
        let m = pseudo_random_metric(9, 4);
        assert!(hassin_edge_greedy(&m, 0).is_empty());
        assert!(hassin_matching(&m, 0).is_empty());
        assert_eq!(hassin_edge_greedy(&m, 99).len(), 4);
        assert_eq!(hassin_matching(&m, 99).len(), 4);
    }

    #[test]
    fn nan_distance_does_not_panic() {
        // A distance oracle with one NaN pair — invalid per the Metric
        // contract, but the edge sort must not panic on it
        // (`partial_cmp().expect` used to; `total_cmp` is total).
        struct NanEdge(DistanceMatrix);
        impl Metric for NanEdge {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn distance(&self, u: ElementId, v: ElementId) -> f64 {
                if (u.min(v), u.max(v)) == (0, 1) {
                    f64::NAN
                } else {
                    self.0.distance(u, v)
                }
            }
        }
        let m = NanEdge(pseudo_random_metric(3, 6));
        assert_eq!(hassin_matching(&m, 4).len(), 4);
        assert_eq!(hassin_edge_greedy(&m, 4).len(), 4);
    }
}
